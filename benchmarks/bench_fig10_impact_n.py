"""Figure 10: query time of BASE / TRAN / QUAD / CUTTING versus ``n``.

The paper sweeps ``n`` from ``2^7`` to ``2^20`` on CORR, INDE, ANTI, and the
NBA dataset with ``d = 3`` and ``r = [0.36, 2.75]``.  The reproduced claims
are the relative orderings: TRAN is much faster than BASE (especially on
ANTI), and the index-based queries beat both by orders of magnitude; the
per-dataset cost ordering is CORR < INDE < ANTI.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import DEFAULT_RATIO, dataset_for, ratio_vector
from repro.core.baseline import eclipse_baseline_indices
from repro.core.transform import eclipse_transform_indices
from repro.experiments.harness import full_sweep_enabled
from repro.index.eclipse_index import EclipseIndex

DIMENSIONS = 3
SYNTHETIC_SIZES = [2**7, 2**10, 2**13] if not full_sweep_enabled() else [2**7, 2**10, 2**13, 2**17]
NBA_SIZES = [1000, 2000]
DATASETS = ("CORR", "INDE", "ANTI")

#: BASE is only run up to this size (its quadratic cost dominates beyond it).
BASELINE_CAP = 2**10


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("n", [s for s in SYNTHETIC_SIZES if s <= BASELINE_CAP])
def test_fig10_base(benchmark, dataset, n):
    data = dataset_for(dataset, n, DIMENSIONS)
    ratios = ratio_vector(DIMENSIONS)
    result = benchmark(lambda: eclipse_baseline_indices(data, ratios))
    assert result.size >= 1


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("n", SYNTHETIC_SIZES)
def test_fig10_tran(benchmark, dataset, n):
    data = dataset_for(dataset, n, DIMENSIONS)
    ratios = ratio_vector(DIMENSIONS)
    result = benchmark(lambda: eclipse_transform_indices(data, ratios))
    assert result.size >= 1


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("n", SYNTHETIC_SIZES)
@pytest.mark.parametrize("backend", ["quadtree", "cutting"])
def test_fig10_index_query(benchmark, dataset, n, backend):
    data = dataset_for(dataset, n, DIMENSIONS)
    ratios = ratio_vector(DIMENSIONS)
    index = EclipseIndex(backend=backend).build(data)
    result = benchmark(lambda: index.query_indices(ratios))
    assert result.size >= 1


@pytest.mark.parametrize("n", NBA_SIZES)
@pytest.mark.parametrize("algorithm", ["TRAN", "QUAD", "CUTTING"])
def test_fig10_nba(benchmark, n, algorithm):
    data = dataset_for("NBA", n, DIMENSIONS)
    ratios = ratio_vector(DIMENSIONS)
    if algorithm == "TRAN":
        run = lambda: eclipse_transform_indices(data, ratios)
    else:
        backend = "quadtree" if algorithm == "QUAD" else "cutting"
        index = EclipseIndex(backend=backend).build(data)
        run = lambda: index.query_indices(ratios)
    result = benchmark(run)
    assert result.size >= 1
