"""Figure 11: query time of the four algorithms versus the dimensionality ``d``.

The paper uses ``n = 2^10`` for the synthetic datasets, ``n = 1000`` for NBA,
``d ∈ {2, 3, 4, 5}``, and ``r = [0.36, 2.75]``.  Reproduced claims: TRAN beats
BASE everywhere, the index-based queries beat both, and QUAD's advantage over
CUTTING grows with ``d`` in the average case.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import dataset_for, ratio_vector
from repro.core.baseline import eclipse_baseline_indices
from repro.core.transform import eclipse_transform_indices
from repro.index.eclipse_index import EclipseIndex

N_SYNTHETIC = 2**10
N_NBA = 1000
DIMENSIONS = (2, 3, 4, 5)
DATASETS = ("CORR", "INDE", "ANTI", "NBA")


def _data(dataset: str, d: int):
    n = N_NBA if dataset == "NBA" else N_SYNTHETIC
    return dataset_for(dataset, n, d)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("d", DIMENSIONS)
def test_fig11_base(benchmark, dataset, d):
    data = _data(dataset, d)
    ratios = ratio_vector(d)
    result = benchmark(lambda: eclipse_baseline_indices(data, ratios))
    assert result.size >= 1


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("d", DIMENSIONS)
def test_fig11_tran(benchmark, dataset, d):
    data = _data(dataset, d)
    ratios = ratio_vector(d)
    result = benchmark(lambda: eclipse_transform_indices(data, ratios))
    assert result.size >= 1


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("d", DIMENSIONS)
@pytest.mark.parametrize("backend", ["quadtree", "cutting"])
def test_fig11_index_query(benchmark, dataset, d, backend):
    data = _data(dataset, d)
    ratios = ratio_vector(d)
    index = EclipseIndex(backend=backend).build(data)
    result = benchmark(lambda: index.query_indices(ratios))
    assert result.size >= 1
