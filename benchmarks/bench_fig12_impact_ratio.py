"""Figure 12: index-based query time versus the ratio range.

The paper queries the prebuilt indexes with the four ratio settings of
Table IV on all four datasets (``n = 2^10``, NBA ``n = 1000``, ``d = 3``).
Reproduced claim: wider ratio ranges cost more because more dual-space
intersections fall inside the query box.  The transformation-based
algorithms are insensitive to the range and are therefore not measured,
exactly as in the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import dataset_for, ratio_vector
from repro.index.eclipse_index import EclipseIndex

DIMENSIONS = 3
N_SYNTHETIC = 2**10
N_NBA = 1000
DATASETS = ("CORR", "INDE", "ANTI", "NBA")
RATIO_SETTINGS = ((0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19))

_INDEX_CACHE = {}


def _index(dataset: str, backend: str) -> EclipseIndex:
    """Build each (dataset, backend) index once and reuse it across ratios."""
    key = (dataset, backend)
    if key not in _INDEX_CACHE:
        n = N_NBA if dataset == "NBA" else N_SYNTHETIC
        data = dataset_for(dataset, n, DIMENSIONS)
        _INDEX_CACHE[key] = EclipseIndex(backend=backend).build(data)
    return _INDEX_CACHE[key]


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("ratio", RATIO_SETTINGS, ids=lambda r: f"{r[0]}-{r[1]}")
@pytest.mark.parametrize("backend", ["quadtree", "cutting"])
def test_fig12_index_query_by_ratio(benchmark, dataset, ratio, backend):
    index = _index(dataset, backend)
    ratios = ratio_vector(DIMENSIONS, ratio[0], ratio[1])
    result = benchmark(lambda: index.query_indices(ratios))
    assert result.size >= 1
