"""Figures 13 and 14: worst-case comparison of QUAD and CUTTING.

The worst case clusters every dual-space intersection into a tiny region
("all the lines almost lie in the same quadrant"), which degrades the
midpoint-splitting line quadtree while the sampling-based cutting tree stays
balanced.  Figure 13 sweeps the number of skyline points (``d = 3``);
Figure 14 sweeps the dimensionality (``n = 2^7``).  The reproduced claim is
that CUTTING beats QUAD on these inputs — the reverse of the average case.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import ratio_vector
from repro.data.worst_case import generate_worst_case
from repro.experiments.harness import full_sweep_enabled
from repro.index.eclipse_index import EclipseIndex

FIG13_SIZES = [2**7, 2**8, 2**9] + ([2**10] if full_sweep_enabled() else [])
FIG13_DIMENSIONS = 3
FIG14_N = 2**7
FIG14_DIMENSIONS = (3, 4, 5)

#: The paper uses a small leaf capacity so the index structure dominates.
CAPACITY = 8


def _index(n: int, d: int, backend: str) -> EclipseIndex:
    data = generate_worst_case(n, d, seed=0)
    return EclipseIndex(backend=backend, capacity=CAPACITY).build(data)


@pytest.mark.parametrize("n", FIG13_SIZES)
@pytest.mark.parametrize("backend", ["quadtree", "cutting"])
def test_fig13_worst_case_vs_n(benchmark, n, backend):
    index = _index(n, FIG13_DIMENSIONS, backend)
    ratios = ratio_vector(FIG13_DIMENSIONS)
    result = benchmark(lambda: index.query_indices(ratios))
    assert result.size >= 1


@pytest.mark.parametrize("d", FIG14_DIMENSIONS)
@pytest.mark.parametrize("backend", ["quadtree", "cutting"])
def test_fig14_worst_case_vs_d(benchmark, d, backend):
    index = _index(FIG14_N, d, backend)
    ratios = ratio_vector(d)
    result = benchmark(lambda: index.query_indices(ratios))
    assert result.size >= 1
