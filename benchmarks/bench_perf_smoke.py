"""Perf smoke benchmark: kernel-layer speedups over the seed implementations.

PR 1 workloads: times ``eclipse_transform`` and ``eclipse_baseline`` over an
n-sweep against faithful copies of the *seed* (pre-kernel, point-at-a-time)
implementations, verifies both return byte-identical indices, and writes the
results to ``BENCH_PR1.json`` at the repository root.

PR 2 workloads (appended to the trajectory as ``BENCH_PR2.json``; PR 1's
file is regenerated, never replaced):

* ``index_build`` — the kernelised array-native ``EclipseIndex.build``
  against a faithful copy of the seed build loop (per-point
  ``DualHyperplane`` objects, the ``O(u^2)`` Python pairwise-intersection
  loop of the two-dimensional arrangement, per-object array rebuilds).
* ``batched_queries`` — ``DatasetSession.run_batch`` over many ratio specs
  against the same specs answered by independent ``EclipseQuery`` runs.

PR 3 workloads (``BENCH_PR3.json``):

* ``tree_build`` — the flattened CSR tree engine (sorted-interval build for
  the one-dimensional dual domain, level-batched kernels otherwise) against
  faithful copies of the PR 2 *recursive* per-node builders, on the paper's
  worst-case ``d = 2`` workload (every point a skyline point, intersections
  clustered) and on high-dimensional ANTI data.  Queries are cross-checked
  for identical results.
* ``batched_probe`` — ``EclipseIndex.query_indices_many`` (one order-vector
  GEMM + one tree traversal per batch) against a per-query loop on the same
  built index.

PR 4 workloads (``BENCH_PR4.json``):

* ``incremental_update`` — ``DatasetSession.apply_updates`` (incremental
  skyline maintenance + appendable index arenas) against the full rebuild a
  static pipeline pays per update (fresh skyline + fresh index build),
  across update-batch sizes.
* ``stream_mixed`` — a 90/10 query/update stream against one long-lived
  dynamic session vs the same stream with every update invalidating all
  artifacts (rebuild-per-update).  Results are cross-checked per step.
* ``shrink_domain_build`` — the opt-in domain-shrinking quadtree root
  (PR 3's known gap) vs the default full-domain root at ``d >= 3``.

PR 5 workloads (``BENCH_PR5.json``):

* ``sustained_stream`` — a long mixed insert/delete/query stream through
  one dynamic session, timed per update batch, run twice: once on the
  capacity-doubling arena engine (geometric headroom, in-place compaction,
  delta-driven maintenance) and once in *legacy memory mode* — the same
  code with ``GROWTH_FACTOR`` pinned to 1.0 (every append reallocates
  exactly, i.e. the PR 4 re-concatenation cost shape) and compaction
  disabled (the dead-fraction trigger falls back to the PR 4 full-rebuild
  decision).  The arena engine's per-batch cost stays flat while the
  legacy curve grows linearly with the arena size; answers are
  cross-checked between the engines at every query step and against
  from-scratch sessions at periodic anchors.
* ``compact_vs_rebuild`` — ``EclipseIndex.compact()`` (one vectorised
  renumbering pass) vs the full skyline+index rebuild the dead-fraction
  trigger used to force, on the same retired-slot state.
* ``delta_patch`` — a membership-diff patch of a cached index after a
  from-scratch skyline recompute vs the PR 4 behaviour (drop the index,
  rebuild it on next access).

PR 6 workloads (``BENCH_PR6.json``):

* ``service_stream`` — one seeded mixed query/update stream through the
  fault-tolerant sharded service (worker processes, admission batching,
  WAL-first updates) vs the identical stream on one single-process
  session: the honest wall-clock cost of the robustness layer, with
  answers verified byte-identical.
* ``recovery_warm_vs_cold`` — a respawning worker's warm restart
  (checksummed snapshot with its warmed artifacts + WAL tail replay) vs
  the cold rebuild (base data + full WAL replay + first-query index
  rebuild) the same state demotes to when the snapshot is damaged.
* ``fault_harness`` — the acceptance gate: workers killed on every k-th
  acknowledged update batch (supervisor SIGKILL mid-batch and worker-side
  exits pinned to the WAL/apply/ack instants) with every answer compared
  byte-for-byte against the single-process reference.

PR 7 workloads (``BENCH_PR7.json``):

* ``thread_scaling`` — skyline build, cutting-index build, a batched query
  run, and a mixed update stream on ANTI data at ``d = 3`` and ``d = 4``,
  re-timed at 1/2/4/8 executor worker threads with every answer verified
  byte-identical to the serial (``threads=1``) path.  Scaling is bounded by
  the host's physical cores; ``os.cpu_count()`` is recorded alongside so
  the numbers are honest on any machine.
* ``float32_fast_path`` — the same screen-bound phases with
  ``dtype="float32"`` (single-precision comparisons, exact float64
  re-verification of rows tied in float32) vs the default float64 kernels,
  with the fast-path/fallback row counts reported.

PR 8 workloads (``BENCH_PR8.json``):

* ``hot_set_sweep`` — a skewed (80/20) access stream over many distinct
  index parameter sets with periodic update batches, replayed through
  four session configurations: unbounded caching, the budgeted advisor
  (build/keep/evict by benefit-per-byte under a byte budget sized to
  ~2.5 indexes), no caching at all, and a naive evict-everything-on-
  pressure policy.  Hard gates: the budgeted session's exact resident
  rollup stays under the budget at every measurement point, answers are
  byte-identical across all four configurations, and the advisor beats
  both the no-cache and the naive-eviction policies on wall time.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_smoke.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_perf_smoke.py --fast   # < 60 s

The acceptance workloads of PR 1 are always included:
``eclipse_transform`` at (n=50 000, d=4, ANTI, ratio (0.36, 2.75)) and
``eclipse_baseline`` at (n=5 000, d=4, ANTI).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, List

import numpy as np

from repro.core.baseline import eclipse_baseline_indices
from repro.core.transform import eclipse_transform_indices, map_to_corner_scores
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.data.worst_case import generate_worst_case
from repro.experiments.harness import time_batched_vs_independent
from repro.geometry.boxes import Box
from repro.geometry.dual import dual_hyperplanes
from repro.geometry.hyperplane import (
    pairwise_intersection_arrays,
    pairwise_intersections,
)
from repro.geometry.quadtree import LineQuadtree
from repro.index.eclipse_index import EclipseIndex
from repro.index.intersection import DEFAULT_MAX_RATIO
from repro.skyline.api import skyline_indices

RATIO = (0.36, 2.75)
DISTRIBUTION = "anti"
DIMENSIONS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"
OUTPUT_PR2 = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
OUTPUT_PR3 = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
OUTPUT_PR4 = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"
OUTPUT_PR5 = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"
OUTPUT_PR6 = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"
OUTPUT_PR7 = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"
OUTPUT_PR8 = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"
OUTPUT_PR9 = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"
OUTPUT_PR10 = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


# ----------------------------------------------------------------------
# Seed implementations (copied from the seed commit, point-at-a-time)
# ----------------------------------------------------------------------
def _seed_skyline_sfs_indices(data: np.ndarray) -> np.ndarray:
    sums = data.sum(axis=1)
    order = np.lexsort(
        tuple(data[:, j] for j in range(data.shape[1] - 1, -1, -1)) + (sums,)
    )
    skyline: List[int] = []
    skyline_rows: List[np.ndarray] = []
    for idx in order:
        candidate = data[idx]
        dominated = False
        for other in skyline_rows:
            if np.all(other <= candidate) and np.any(other < candidate):
                dominated = True
                break
        if not dominated:
            skyline.append(int(idx))
            skyline_rows.append(candidate)
    return np.array(sorted(skyline), dtype=np.intp)


def _seed_dominated_mask(candidates: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    if candidates.shape[0] == 0 or dominators.shape[0] == 0:
        return np.zeros(candidates.shape[0], dtype=bool)
    mask = np.zeros(candidates.shape[0], dtype=bool)
    for i in range(candidates.shape[0]):
        c = candidates[i]
        le = np.all(dominators <= c, axis=1)
        lt = np.any(dominators < c, axis=1)
        if np.any(le & lt):
            mask[i] = True
    return mask


def _seed_skyline_recursive(data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    n = indices.size
    if n <= 1:
        return indices
    if n <= 64 or data.shape[1] == 2:
        local = _seed_skyline_sfs_indices(data[indices])
        return indices[local]
    last = data[indices, -1]
    median = np.median(last)
    low_mask = last <= median
    if low_mask.all() or not low_mask.any():
        local = _seed_skyline_sfs_indices(data[indices])
        return indices[local]
    sky_low = _seed_skyline_recursive(data, indices[low_mask])
    sky_high = _seed_skyline_recursive(data, indices[~low_mask])
    dominated = _seed_dominated_mask(data[sky_high], data[sky_low])
    return np.concatenate([sky_low, sky_high[~dominated]])


def seed_eclipse_transform_indices(data: np.ndarray, ratios: RatioVector) -> np.ndarray:
    mapped = map_to_corner_scores(data, ratios)
    result = _seed_skyline_recursive(
        mapped, np.arange(mapped.shape[0], dtype=np.intp)
    )
    return np.sort(result)


def seed_eclipse_baseline_indices(data: np.ndarray, ratios: RatioVector) -> np.ndarray:
    corners = ratios.corner_weight_vectors()
    corner_scores = data @ corners.T
    eclipse: List[int] = []
    for i in range(data.shape[0]):
        le = np.all(corner_scores <= corner_scores[i], axis=1)
        lt = np.any(corner_scores < corner_scores[i], axis=1)
        dominated_by = le & lt
        dominated_by[i] = False
        if not dominated_by.any():
            eclipse.append(i)
    return np.array(eclipse, dtype=np.intp)


# ----------------------------------------------------------------------
# Seed index build (copied from the seed commit, object-at-a-time)
# ----------------------------------------------------------------------
def seed_build_eclipse_index(data: np.ndarray) -> None:
    """Faithful replica of the seed ``EclipseIndex.build`` work.

    The seed path materialised one ``DualHyperplane`` object per skyline
    point, enumerated the two-dimensional arrangement's intersections with
    an ``O(u^2)`` Python double loop over those objects (sorting and
    deduplicating the resulting objects in Python), recomputed per-object
    coefficient arrays in every structure, and filled the dense interval
    table one interval at a time.
    """
    sky_idx = skyline_indices(data)
    duals = dual_hyperplanes(data[sky_idx])
    coeffs = np.array([h.coefficients for h in duals], dtype=float)
    dual_dims = coeffs.shape[1] if len(duals) else 0

    if dual_dims == 1 and len(duals) <= 2048:
        # Seed Arrangement2D construction.
        inters = pairwise_intersections(duals, skip_degenerate=True)
        inters = sorted(inters, key=lambda inter: inter.x_coordinate())
        xs = [inter.x_coordinate() for inter in inters]
        distinct: List[float] = []
        for x in xs:
            if not distinct or x > distinct[-1]:
                distinct.append(x)
        edges = np.concatenate(([-np.inf], np.array(distinct), [np.inf]))
        if len(duals) <= 128:
            slopes = coeffs[:, 0]
            offsets = np.array([h.offset for h in duals], dtype=float)
            for i in range(edges.size - 1):
                start, end = float(edges[i]), float(edges[i + 1])
                if np.isinf(start) and np.isinf(end):
                    representative = 0.0
                elif np.isinf(start):
                    representative = end - max(1.0, abs(end) / 2.0)
                elif np.isinf(end):
                    representative = start + max(1.0, abs(start) / 2.0)
                else:
                    representative = start + (end - start) / 2.0
                values = slopes * representative - offsets
                sorted_values = np.sort(values)
                _ = values.size - np.searchsorted(sorted_values, values, side="right")

    # Seed IntersectionIndex construction (object list comprehensions).
    pairs, pair_coeffs, pair_rhs = pairwise_intersection_arrays(
        duals, skip_degenerate=True
    )
    if pairs.shape[0] == 0:
        return
    if dual_dims == 1:
        pair_xs = pair_rhs / pair_coeffs[:, 0]
        order = np.argsort(pair_xs, kind="stable")
        _ = pair_xs[order]
    else:
        domain = Box(
            lows=np.full(dual_dims, -DEFAULT_MAX_RATIO),
            highs=np.zeros(dual_dims),
        )
        LineQuadtree(pair_coeffs, pair_rhs, domain, capacity=None)


def run_index_build_workload(
    workload: str, data: np.ndarray, repeats: int
) -> dict:
    ratios = RatioVector.uniform(*RATIO, data.shape[1])
    index = EclipseIndex(backend="quadtree").build(data)
    # Cross-validate the kernelised build against an independent algorithm.
    identical = bool(
        np.array_equal(
            index.query_indices(ratios), eclipse_transform_indices(data, ratios)
        )
    )
    seed_seconds = _best_of(lambda: seed_build_eclipse_index(data), repeats)
    new_seconds = _best_of(
        lambda: EclipseIndex(backend="quadtree").build(data), repeats
    )
    entry = {
        "workload": workload,
        "n": int(data.shape[0]),
        "d": int(data.shape[1]),
        "num_skyline": int(index.num_skyline_points),
        "num_pairs": int(index.intersection_index.num_pairs),
        "indices_identical": identical,
        "seed_seconds": seed_seconds,
        "new_seconds": new_seconds,
        "speedup": seed_seconds / new_seconds if new_seconds > 0 else float("inf"),
    }
    print(
        f"{workload:<22} n={entry['n']:>7} d={entry['d']} u={entry['num_skyline']:>5}  "
        f"seed={seed_seconds:8.3f}s  new={new_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


def run_batched_workload(
    workload: str, n: int, d: int, num_queries: int, repeats: int, method: str
) -> dict:
    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    rng = np.random.default_rng(12)
    specs = []
    for _ in range(num_queries):
        low = float(rng.uniform(0.1, 1.0))
        specs.append(RatioVector.uniform(low, low + float(rng.uniform(0.2, 2.5)), d))
    timing = time_batched_vs_independent(data, specs, method=method, repeats=repeats)
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "num_queries": num_queries,
        "batch_method": timing.method,
        "indices_identical": timing.identical,
        "independent_seconds": timing.independent_seconds,
        "batched_seconds": timing.batched_seconds,
        "speedup": timing.speedup,
    }
    print(
        f"{workload:<22} n={n:>7} d={d} q={num_queries:>3}  "
        f"independent={timing.independent_seconds:8.3f}s  "
        f"batched={timing.batched_seconds:8.3f}s  "
        f"speedup={timing.speedup:7.1f}x  identical={timing.identical} "
        f"[{timing.method}]"
    )
    return entry


# ----------------------------------------------------------------------
# PR 3: recursive PR 2 tree builders (faithful copies) vs the flat engine
# ----------------------------------------------------------------------
class _RecursiveNode:
    __slots__ = ("box", "indices", "children", "depth")

    def __init__(self, box, indices, depth):
        self.box = box
        self.indices = indices
        self.children = None
        self.depth = depth


class RecursiveLineQuadtree:
    """Faithful copy of the PR 2 recursive quadtree builder (timing baseline)."""

    def __init__(self, coefficients, rhs, domain, capacity=None, max_depth=12,
                 max_nodes=4096):
        from repro.geometry.flattree import auto_capacity
        from repro.geometry.hyperplane import hyperplanes_intersect_box_mask

        self._mask = hyperplanes_intersect_box_mask
        self._coefficients = np.asarray(coefficients, dtype=float)
        self._rhs = np.asarray(rhs, dtype=float)
        self._capacity = (
            auto_capacity(self._coefficients.shape[0]) if capacity is None
            else capacity
        )
        self._max_depth = max_depth
        self._max_nodes = max_nodes
        self._nodes_created = 0
        all_indices = np.arange(self._coefficients.shape[0], dtype=np.intp)
        in_domain = self._mask(self._coefficients, self._rhs, domain)
        self._outside = all_indices[~in_domain]
        self._root = self._build(domain, all_indices[in_domain], 0)

    def _build(self, box, indices, depth):
        node = _RecursiveNode(box, indices, depth)
        self._nodes_created += 1
        if (
            indices.size <= self._capacity
            or depth >= self._max_depth
            or self._nodes_created + 2 ** box.dimensions > self._max_nodes
        ):
            return node
        child_boxes = box.split()
        child_sets = [
            indices[self._mask(self._coefficients[indices], self._rhs[indices], cb)]
            for cb in child_boxes
        ]
        if not any(cs.size < indices.size for cs in child_sets):
            return node
        node.children = [
            self._build(cb, cs, depth + 1) for cb, cs in zip(child_boxes, child_sets)
        ]
        node.indices = np.empty(0, dtype=np.intp)
        return node

    def node_count(self):
        return self._nodes_created

    def query(self, box):
        collected = [self._outside]
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects_box(box):
                continue
            if node.children is None:
                collected.append(node.indices)
            else:
                stack.extend(node.children)
        candidates = np.unique(np.concatenate(collected))
        if candidates.size == 0:
            return candidates.astype(np.intp)
        keep = self._mask(self._coefficients[candidates], self._rhs[candidates], box)
        return candidates[keep]


class RecursiveCuttingTree(RecursiveLineQuadtree):
    """Faithful copy of the PR 2 recursive cutting builder (timing baseline)."""

    def __init__(self, coefficients, rhs, domain, capacity=None, max_depth=32,
                 max_nodes=8192, seed=0):
        self._rng = np.random.default_rng(seed)
        super().__init__(coefficients, rhs, domain, capacity, max_depth, max_nodes)

    def _build(self, box, indices, depth):
        node = _RecursiveNode(box, indices, depth)
        self._nodes_created += 1
        if (
            indices.size <= self._capacity
            or depth >= self._max_depth
            or self._nodes_created + 2 > self._max_nodes
        ):
            return node
        split_dim = depth % box.dimensions
        split_value = self._sample_split_value(box, indices, split_dim)
        left_box, right_box = box.split_at(split_dim, split_value)
        if left_box.widths[split_dim] <= 0 or right_box.widths[split_dim] <= 0:
            return node
        child_sets = [
            indices[self._mask(self._coefficients[indices], self._rhs[indices], cb)]
            for cb in (left_box, right_box)
        ]
        if all(cs.size == indices.size for cs in child_sets):
            return node
        node.children = [
            self._build(cb, cs, depth + 1)
            for cb, cs in zip((left_box, right_box), child_sets)
        ]
        node.indices = np.empty(0, dtype=np.intp)
        return node

    def _sample_split_value(self, box, indices, split_dim):
        midpoint = float(box.center[split_dim])
        sample_size = min(indices.size, 64)
        if sample_size == 0:
            return midpoint
        sampled = self._rng.choice(indices, size=sample_size, replace=False)
        coeffs = self._coefficients[sampled]
        rhs = self._rhs[sampled]
        center = box.center
        axis_coeff = coeffs[:, split_dim]
        usable = np.abs(axis_coeff) > 1e-12
        if not np.any(usable):
            return midpoint
        rest = rhs[usable] - (
            coeffs[usable] @ center - axis_coeff[usable] * center[split_dim]
        )
        crossings = rest / axis_coeff[usable]
        crossings = crossings[
            (crossings > box.lows[split_dim]) & (crossings < box.highs[split_dim])
        ]
        if crossings.size == 0:
            return midpoint
        return float(np.median(crossings))


def _worst_case_pair_arrays(u: int):
    from repro.geometry.dual import dual_coefficient_arrays
    from repro.geometry.hyperplane import pairwise_intersection_arrays_from

    data = generate_worst_case(u, 2, seed=0)
    coeffs, offsets = dual_coefficient_arrays(data)
    return pairwise_intersection_arrays_from(coeffs, offsets)


def _anti_pair_arrays(n: int, d: int):
    from repro.geometry.dual import dual_coefficient_arrays
    from repro.geometry.hyperplane import pairwise_intersection_arrays_from

    data = generate_dataset(DISTRIBUTION, n, d, seed=2)
    sky = skyline_indices(data)
    coeffs, offsets = dual_coefficient_arrays(data[sky])
    return pairwise_intersection_arrays_from(coeffs, offsets)


def run_tree_build_workload(
    workload: str, pair_coeffs, pair_rhs, repeats: int, flavor: str
) -> dict:
    from repro.geometry.cutting import CuttingTree
    from repro.geometry.quadtree import LineQuadtree

    k = pair_coeffs.shape[1]
    dom = Box(lows=np.full(k, -DEFAULT_MAX_RATIO), highs=np.zeros(k))
    if flavor == "quadtree":
        recursive_fn = lambda: RecursiveLineQuadtree(pair_coeffs, pair_rhs, dom)
        flat_fn = lambda: LineQuadtree(pair_coeffs, pair_rhs, dom)
    else:
        recursive_fn = lambda: RecursiveCuttingTree(pair_coeffs, pair_rhs, dom, seed=0)
        flat_fn = lambda: CuttingTree(pair_coeffs, pair_rhs, dom, seed=0)

    recursive_tree = recursive_fn()
    flat_tree = flat_fn()
    identical = True
    for lo, hi in ((-3.0, -0.2), (-9.0, -0.01), (-1.0, -0.9)):
        probe = Box(np.full(k, lo), np.full(k, hi))
        identical &= bool(
            np.array_equal(
                np.sort(recursive_tree.query(probe)), np.sort(flat_tree.query(probe))
            )
        )
    recursive_seconds = _best_of(recursive_fn, repeats)
    flat_seconds = _best_of(flat_fn, repeats)
    entry = {
        "workload": workload,
        "flavor": flavor,
        "num_hyperplanes": int(pair_coeffs.shape[0]),
        "dual_dims": int(k),
        "flat_nodes": int(flat_tree.node_count()),
        "queries_identical": identical,
        "recursive_seconds": recursive_seconds,
        "flat_seconds": flat_seconds,
        "speedup": recursive_seconds / flat_seconds if flat_seconds > 0 else float("inf"),
    }
    print(
        f"{workload:<24} m={entry['num_hyperplanes']:>7} k={k}  "
        f"recursive={recursive_seconds:8.3f}s  flat={flat_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


def run_batched_probe_workload(
    workload: str, n: int, d: int, backend: str, num_queries: int, repeats: int
) -> dict:
    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    index = EclipseIndex(backend=backend).build(data)
    rng = np.random.default_rng(12)
    specs = []
    for _ in range(num_queries):
        low = float(rng.uniform(0.1, 1.0))
        specs.append(RatioVector.uniform(low, low + float(rng.uniform(0.2, 2.5)), d))
    per_query = lambda: [index.query_indices(spec) for spec in specs]
    batched = lambda: index.query_indices_many(specs)
    identical = all(
        np.array_equal(a, b) for a, b in zip(per_query(), batched())
    )
    per_query_seconds = _best_of(per_query, repeats)
    batched_seconds = _best_of(batched, repeats)
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "backend": index.backend,
        "num_queries": num_queries,
        "indices_identical": identical,
        "per_query_seconds": per_query_seconds,
        "batched_seconds": batched_seconds,
        "speedup": (
            per_query_seconds / batched_seconds if batched_seconds > 0 else float("inf")
        ),
    }
    print(
        f"{workload:<24} n={n:>6} d={d} q={num_queries:>3} [{index.backend}]  "
        f"per-query={per_query_seconds:8.3f}s  batched={batched_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


# ----------------------------------------------------------------------
# PR 4: dynamic dataset core — incremental updates vs full rebuilds
# ----------------------------------------------------------------------
def _stream_specs(rng, count: int, d: int):
    specs = []
    for _ in range(count):
        low = float(rng.uniform(0.1, 1.0))
        specs.append(RatioVector.uniform(low, low + float(rng.uniform(0.2, 2.5)), d))
    return specs


def run_incremental_update_workload(
    workload: str, n: int, d: int, batch: int, repeats: int
) -> dict:
    """One update batch absorbed in place vs the static pipeline's rebuild."""
    from repro.core.session import DatasetSession

    data = generate_dataset("inde", n, d, seed=0)
    warm_specs = _stream_specs(np.random.default_rng(4), 8, d)
    rng = np.random.default_rng(batch)
    inserts = rng.uniform(data.min(axis=0), data.max(axis=0), size=(batch // 2, d))
    deletes = rng.choice(n, size=batch // 2, replace=False)

    incremental_seconds = float("inf")
    session = None
    for _ in range(repeats):
        session = DatasetSession(data)
        session.run_batch(warm_specs, method="cutting")  # warm the artifacts
        start = time.perf_counter()
        report = session.apply_updates(inserts=inserts, deletes=deletes)
        incremental_seconds = min(
            incremental_seconds, time.perf_counter() - start
        )
    new_data = session.data

    def rebuild():
        sky = skyline_indices(new_data)
        EclipseIndex(backend="cutting").build(new_data, skyline_idx=sky)

    rebuild_seconds = _best_of(rebuild, repeats)
    fresh = DatasetSession(new_data.copy())
    identical = all(
        np.array_equal(a.indices, b.indices)
        for a, b in zip(
            session.run_batch(warm_specs, method="cutting"),
            fresh.run_batch(warm_specs, method="cutting"),
        )
    )
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "batch": batch,
        "skyline_strategy": report.skyline_plan.strategy,
        "index_strategies": [plan.strategy for plan in report.index_plans],
        "indices_identical": identical,
        "rebuild_seconds": rebuild_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": (
            rebuild_seconds / incremental_seconds
            if incremental_seconds > 0
            else float("inf")
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} b={batch:>5}  "
        f"rebuild={rebuild_seconds:8.3f}s  "
        f"incremental={incremental_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


def run_stream_workload_pr4(
    workload: str,
    n: int,
    d: int,
    steps: int,
    update_fraction: float,
    batch: int,
    update_size: int,
    repeats: int,
) -> dict:
    """90/10 query/update stream: dynamic session vs rebuild-per-update.

    Both strategies replay the identical op sequence (same seed, and the
    dataset sizes stay in lockstep, so the drawn delete positions match);
    the rebuild side constructs a fresh session after every update batch,
    which is exactly what the static pipeline's memoisation forced.  The
    initial session warm-up (first skyline + first index build) is paid
    identically by both strategies and excluded from the timing — the
    stream measures the steady state.
    """
    from repro.core.session import DatasetSession

    data = generate_dataset("inde", n, d, seed=0)
    lows, highs = data.min(axis=0), data.max(axis=0)
    warm_specs = _stream_specs(np.random.default_rng(4), batch, d)

    def warm_session():
        session = DatasetSession(data)
        session.run_batch(warm_specs, method="cutting")
        return session

    def stream(session, rebuild_per_update: bool):
        rng = np.random.default_rng(7)
        answers = []
        updates = 0
        for _ in range(steps):
            if rng.uniform() < update_fraction:
                updates += 1
                half = max(1, update_size // 2)
                inserts = lows + rng.uniform(size=(half, d)) * (highs - lows)
                num_deletes = min(half, session.num_points - 1)
                deletes = rng.choice(
                    session.num_points, size=num_deletes, replace=False
                )
                if rebuild_per_update:
                    new_data = np.vstack(
                        [np.delete(session.data, deletes, axis=0), inserts]
                    )
                    session = DatasetSession(new_data)
                else:
                    session.apply_updates(inserts=inserts, deletes=deletes)
            else:
                specs = _stream_specs(rng, batch, d)
                answers.append(
                    [r.indices for r in session.run_batch(specs, method="cutting")]
                )
        return answers, updates

    incremental_answers, num_updates = stream(warm_session(), False)
    rebuild_answers, _ = stream(warm_session(), True)
    identical = all(
        np.array_equal(a, b)
        for step_a, step_b in zip(incremental_answers, rebuild_answers)
        for a, b in zip(step_a, step_b)
    )
    incremental_seconds = float("inf")
    rebuild_seconds = float("inf")
    for _ in range(repeats):
        session = warm_session()
        start = time.perf_counter()
        stream(session, False)
        incremental_seconds = min(incremental_seconds, time.perf_counter() - start)
        session = warm_session()
        start = time.perf_counter()
        stream(session, True)
        rebuild_seconds = min(rebuild_seconds, time.perf_counter() - start)
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "steps": steps,
        "update_fraction": update_fraction,
        "update_batches": num_updates,
        "queries_per_step": batch,
        "indices_identical": identical,
        "rebuild_per_update_seconds": rebuild_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": (
            rebuild_seconds / incremental_seconds
            if incremental_seconds > 0
            else float("inf")
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} steps={steps:>4} "
        f"({num_updates} updates)  rebuild/upd={rebuild_seconds:8.3f}s  "
        f"incremental={incremental_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


def run_shrink_domain_workload(
    workload: str, n: int, d: int, repeats: int
) -> dict:
    """Opt-in domain-shrinking quadtree root vs the default full domain."""
    from repro.geometry.quadtree import LineQuadtree as Quad

    pairs, pair_coeffs, pair_rhs = _anti_pair_arrays(n, d)
    k = pair_coeffs.shape[1]
    dom = Box(lows=np.full(k, -DEFAULT_MAX_RATIO), highs=np.zeros(k))
    full_fn = lambda: Quad(pair_coeffs, pair_rhs, dom)
    fitted_fn = lambda: Quad(pair_coeffs, pair_rhs, dom, shrink_domain=True)
    full_tree = full_fn()
    fitted_tree = fitted_fn()
    identical = True
    for lo, hi in ((-3.0, -0.2), (-9.0, -0.01), (-1.0, -0.9)):
        probe = Box(np.full(k, lo), np.full(k, hi))
        identical &= bool(
            np.array_equal(
                np.sort(full_tree.query(probe)), np.sort(fitted_tree.query(probe))
            )
        )
    full_seconds = _best_of(full_fn, repeats)
    fitted_seconds = _best_of(fitted_fn, repeats)
    entry = {
        "workload": workload,
        "num_hyperplanes": int(pair_coeffs.shape[0]),
        "dual_dims": int(k),
        "full_max_leaf_load": int(full_tree.max_leaf_load()),
        "fitted_max_leaf_load": int(fitted_tree.max_leaf_load()),
        "queries_identical": identical,
        "full_domain_seconds": full_seconds,
        "fitted_seconds": fitted_seconds,
        "speedup": (
            full_seconds / fitted_seconds if fitted_seconds > 0 else float("inf")
        ),
    }
    print(
        f"{workload:<26} m={entry['num_hyperplanes']:>7} k={k}  "
        f"full={full_seconds:8.3f}s  fitted={fitted_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  "
        f"leaf-load {entry['full_max_leaf_load']}->"
        f"{entry['fitted_max_leaf_load']}  identical={identical}"
    )
    return entry


# ----------------------------------------------------------------------
# PR 5: amortised dynamic-core memory engine vs the PR 4 cost shape
# ----------------------------------------------------------------------
from contextlib import contextmanager


@contextmanager
def _legacy_memory_mode():
    """Reproduce the PR 4 memory cost shape on the current code.

    ``GROWTH_FACTOR = 1.0`` makes every arena append an exact-fit
    reallocation (the old ``np.concatenate``/``np.insert`` behaviour:
    every untouched row is copied per batch), and an infinite
    ``COMPACT_FACTOR`` makes the dead-fraction trigger fall back to the
    PR 4 full-rebuild decision.  Everything else — kernels, structures,
    results — is identical, so the comparison isolates the memory engine.
    """
    import repro.core.plan as plan_mod
    import repro.perf.arena as arena_mod

    growth, compact = arena_mod.GROWTH_FACTOR, plan_mod.COMPACT_FACTOR
    arena_mod.GROWTH_FACTOR = 1.0
    plan_mod.COMPACT_FACTOR = float("inf")
    try:
        yield
    finally:
        arena_mod.GROWTH_FACTOR = growth
        plan_mod.COMPACT_FACTOR = compact


def _decile_stats(times: List[float]) -> dict:
    """Per-decile means and medians of a per-batch time series.

    Medians are the flatness statistic: the arena engine's cost is flat
    with rare amortised bursts (a subtree rebuild, one compaction per
    ~u/joins batches), so a decile mean can be dominated by a single burst
    while the typical per-batch cost is unchanged.  The legacy path's
    re-concatenation tax inflates *every* batch, so its growth shows up in
    means and medians alike.
    """
    chunks = np.array_split(np.asarray(times, dtype=float), 10)
    return {
        "means": [float(chunk.mean()) for chunk in chunks if chunk.size],
        "medians": [float(np.median(chunk)) for chunk in chunks if chunk.size],
    }


def run_sustained_stream_workload(
    workload: str,
    n: int,
    d: int,
    batches: int,
    joins_per_batch: int,
    deletes_per_batch: int,
    query_every: int,
    anchor_every: int,
) -> dict:
    """Per-update-batch cost over a long replacement stream, both engines.

    The stream keeps the skyline size roughly constant (each arrival is a
    near-duplicate of a current skyline row scaled slightly down, so it
    joins the skyline and demotes its source) while the arenas keep
    growing — appended alive x new pairs plus the demoted slots' dead rows.
    That is exactly the regime the ROADMAP flagged: the PR 4 path re-copies
    the whole (growing) arena every batch, so its per-batch cost climbs
    linearly until the dead-fraction rebuild resets it, while the arena
    engine appends into spare capacity and amortises the occasional
    in-place compaction — flat per batch.
    """
    from repro.core.session import DatasetSession

    base = generate_dataset(DISTRIBUTION, n, d, seed=0)
    warm_specs = _stream_specs(np.random.default_rng(4), 4, d)
    anchor_specs = _stream_specs(np.random.default_rng(41), 3, d)

    def run_stream():
        rng = np.random.default_rng(5)
        session = DatasetSession(base)
        session.run_batch(warm_specs, method="cutting")  # warm skyline+index
        stream_start = time.perf_counter()
        batch_seconds = []
        answers = []
        anchors_identical = True
        for t in range(batches):
            sky = session.skyline()
            picks = rng.choice(sky, size=joins_per_batch, replace=False)
            inserts = session.data[picks] * rng.uniform(
                0.995, 0.9999, size=(joins_per_batch, d)
            )
            deletes = rng.choice(
                session.num_points, size=deletes_per_batch, replace=False
            )
            start = time.perf_counter()
            session.apply_updates(inserts=inserts, deletes=deletes)
            batch_seconds.append(time.perf_counter() - start)
            if (t + 1) % query_every == 0:
                specs = _stream_specs(rng, 4, d)
                answers.append(
                    [r.indices for r in session.run_batch(specs, method="cutting")]
                )
            if (t + 1) % anchor_every == 0:
                fresh = DatasetSession(session.data.copy())
                for got, want in zip(
                    session.run_batch(anchor_specs, method="cutting"),
                    fresh.run_batch(anchor_specs, method="cutting"),
                ):
                    anchors_identical &= bool(
                        np.array_equal(got.indices, want.indices)
                    )
        total = time.perf_counter() - stream_start
        return batch_seconds, total, answers, anchors_identical, session.stats

    (
        arena_seconds,
        arena_total,
        arena_answers,
        arena_anchors_ok,
        arena_stats,
    ) = run_stream()
    with _legacy_memory_mode():
        (
            legacy_seconds,
            legacy_total,
            legacy_answers,
            legacy_anchors_ok,
            _,
        ) = run_stream()

    engines_identical = len(arena_answers) == len(legacy_answers) and all(
        np.array_equal(a, b)
        for step_a, step_b in zip(arena_answers, legacy_answers)
        for a, b in zip(step_a, step_b)
    )
    arena_deciles = _decile_stats(arena_seconds)
    legacy_deciles = _decile_stats(legacy_seconds)
    arena_flatness = arena_deciles["medians"][-1] / arena_deciles["medians"][0]
    legacy_flatness = legacy_deciles["medians"][-1] / legacy_deciles["medians"][0]
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "batches": batches,
        "joins_per_batch": joins_per_batch,
        "deletes_per_batch": deletes_per_batch,
        "arena_decile_means_s": arena_deciles["means"],
        "arena_decile_medians_s": arena_deciles["medians"],
        "legacy_decile_means_s": legacy_deciles["means"],
        "legacy_decile_medians_s": legacy_deciles["medians"],
        "arena_first_to_last_decile": arena_flatness,
        "legacy_first_to_last_decile": legacy_flatness,
        "arena_total_update_seconds": float(np.sum(arena_seconds)),
        "legacy_total_update_seconds": float(np.sum(legacy_seconds)),
        "arena_stream_seconds": float(arena_total),
        "legacy_stream_seconds": float(legacy_total),
        "update_speedup": float(np.sum(legacy_seconds) / np.sum(arena_seconds)),
        "speedup": float(legacy_total / arena_total),
        "arena_grows": arena_stats.arena_grows,
        "compactions": arena_stats.compactions,
        "indices_identical": bool(
            engines_identical and arena_anchors_ok and legacy_anchors_ok
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} batches={batches:>4}  "
        f"arena {arena_deciles['medians'][0] * 1e3:6.2f}->"
        f"{arena_deciles['medians'][-1] * 1e3:6.2f} ms/batch "
        f"({arena_flatness:.2f}x)  "
        f"legacy {legacy_deciles['medians'][0] * 1e3:6.2f}->"
        f"{legacy_deciles['medians'][-1] * 1e3:6.2f} ms "
        f"({legacy_flatness:.2f}x)  "
        f"stream-speedup={entry['speedup']:5.1f}x  "
        f"compactions={entry['compactions']}  "
        f"identical={entry['indices_identical']}"
    )
    return entry


def run_compact_vs_rebuild_workload(
    workload: str, n: int, d: int, repeats: int
) -> dict:
    """One in-place compaction vs the full rebuild it replaces."""
    import repro.skyline.incremental as inc

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    sky = skyline_indices(data)
    rng = np.random.default_rng(2)
    victims = np.sort(rng.choice(sky, size=sky.size // 2, replace=False))
    new_data, delta = inc.apply_updates(data, sky, None, victims)
    remap = inc.remap_after_delete(n, victims)

    def dead_index():
        index = EclipseIndex(backend="cutting").build(data, skyline_idx=sky)
        index.delete_points(remap, delta.removed_old)
        index.insert_points(new_data, delta.added)
        return index

    compact_seconds = float("inf")
    index = None
    for _ in range(repeats):
        index = dead_index()
        num_rows = index.intersection_index.num_pairs
        start = time.perf_counter()
        index.compact()
        compact_seconds = min(compact_seconds, time.perf_counter() - start)

    def rebuild():
        fresh_sky = skyline_indices(new_data)
        return EclipseIndex(backend="cutting").build(new_data, skyline_idx=fresh_sky)

    rebuild_seconds = _best_of(rebuild, repeats)
    fresh = rebuild()
    specs = _stream_specs(np.random.default_rng(7), 5, d)
    identical = all(
        np.array_equal(index.query_indices(spec), fresh.query_indices(spec))
        for spec in specs
    )
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "num_arena_rows": int(num_rows),
        "num_alive_skyline": int(index.num_skyline_points),
        "indices_identical": identical,
        "rebuild_seconds": rebuild_seconds,
        "compact_seconds": compact_seconds,
        "speedup": (
            rebuild_seconds / compact_seconds if compact_seconds > 0 else float("inf")
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} rows={num_rows:>8}  "
        f"rebuild={rebuild_seconds:8.3f}s  compact={compact_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


def run_delta_patch_workload(workload: str, n: int, d: int, repeats: int) -> dict:
    """Membership-diff index patching vs the PR 4 drop-and-rebuild."""
    from repro.core.session import DatasetSession

    data = generate_dataset("inde", n, d, seed=0)
    warm_specs = _stream_specs(np.random.default_rng(4), 6, d)
    rng = np.random.default_rng(9)
    deletes = rng.choice(n, size=n // 2, replace=False)

    patch_seconds = float("inf")
    session = None
    for _ in range(repeats):
        session = DatasetSession(data)
        session.run_batch(warm_specs, method="cutting")
        start = time.perf_counter()
        report = session.apply_updates(deletes=deletes)
        patch_seconds = min(patch_seconds, time.perf_counter() - start)
    assert report.skyline_plan is not None
    new_data = session.data

    def drop_and_rebuild():
        # What PR 4 paid after this batch: the index was dropped, so the
        # next access recomputed the skyline and rebuilt from scratch.
        fresh_sky = skyline_indices(new_data)
        EclipseIndex(backend="cutting").build(new_data, skyline_idx=fresh_sky)

    rebuild_seconds = _best_of(drop_and_rebuild, repeats)
    fresh = DatasetSession(new_data.copy())
    identical = all(
        np.array_equal(a.indices, b.indices)
        for a, b in zip(
            session.run_batch(warm_specs, method="cutting"),
            fresh.run_batch(warm_specs, method="cutting"),
        )
    )
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": "INDE",
        "deletes": int(deletes.size),
        "skyline_strategy": report.skyline_plan.strategy,
        "delta_patched_indexes": report.index_delta_patches,
        "indices_identical": identical,
        "drop_and_rebuild_seconds": rebuild_seconds,
        "delta_patch_seconds": patch_seconds,
        "speedup": (
            rebuild_seconds / patch_seconds if patch_seconds > 0 else float("inf")
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} dels={entry['deletes']:>6}  "
        f"drop+rebuild={rebuild_seconds:8.3f}s  patch={patch_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  "
        f"patched={entry['delta_patched_indexes']}  identical={identical}"
    )
    return entry


# ----------------------------------------------------------------------
# PR 6: fault-tolerant concurrent query service
# ----------------------------------------------------------------------
def run_service_throughput_workload(
    workload: str,
    n: int,
    d: int,
    steps: int,
    update_fraction: float,
    batch: int,
    update_size: int,
    num_shards: int,
) -> dict:
    """One seeded mixed stream through the sharded service vs one session.

    Both sides replay the identical op sequence (the single-process side is
    the harness's reference).  The service pays per-request IPC and an
    exact merge per query on top of sharded parallelism, so this entry is
    the honest cost/benefit statement of the robustness layer, not a pure
    speedup claim; answers are verified byte-identical throughout.
    """
    from repro.core.session import DatasetSession
    from repro.service.faults import run_fault_injection
    from repro.service.supervisor import ServiceConfig

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    lows, highs = data.min(axis=0), data.max(axis=0)

    def single_process_stream():
        rng = np.random.default_rng(43)
        session = DatasetSession(data)
        for _ in range(steps):
            if rng.uniform() < update_fraction:
                half = max(1, update_size // 2)
                inserts = lows + rng.uniform(size=(half, d)) * (highs - lows)
                num_deletes = min(half, session.num_points - 1)
                deletes = rng.choice(
                    session.num_points, size=num_deletes, replace=False
                )
                session.apply_updates(inserts=inserts, deletes=deletes)
            else:
                session.run_batch(_stream_specs(rng, batch, d))

    start = time.perf_counter()
    single_process_stream()
    single_seconds = time.perf_counter() - start

    config = ServiceConfig(num_shards=num_shards)
    start = time.perf_counter()
    report = run_fault_injection(
        data=data,
        steps=steps,
        update_fraction=update_fraction,
        batch=batch,
        update_size=update_size,
        config=config,
        seed=42,
        verify=False,
    )
    service_seconds = time.perf_counter() - start
    verified = run_fault_injection(
        data=data,
        steps=max(10, steps // 4),
        update_fraction=update_fraction,
        batch=batch,
        update_size=update_size,
        config=config,
        seed=42,
        verify=True,
    )
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "steps": steps,
        "num_shards": num_shards,
        "queries": report.queries,
        "update_batches": report.update_batches,
        "query_windows": report.service_stats["query_windows"],
        "coalesced_queries": report.service_stats["coalesced_queries"],
        "answers_identical": verified.ok,
        "single_process_seconds": single_seconds,
        "service_seconds": service_seconds,
        "service_vs_single_ratio": (
            service_seconds / single_seconds if single_seconds > 0 else float("inf")
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} steps={steps:>4} shards={num_shards}  "
        f"single={single_seconds:8.3f}s  service={service_seconds:8.3f}s  "
        f"ratio={entry['service_vs_single_ratio']:5.2f}x  "
        f"identical={verified.ok}"
    )
    return entry


def run_recovery_workload(
    workload: str, n: int, d: int, update_batches: int, repeats: int
) -> dict:
    """Warm restart (snapshot + WAL tail) vs cold rebuild (base + full WAL).

    Builds one shard's durable state — ``update_batches`` acknowledged WAL
    records and a snapshot holding the fully-applied session with its
    warmed skyline/index artifacts — then times the two recovery paths a
    respawning worker can take, each followed by one query (the cold path
    defers its index rebuild to that first answer, so recovery time without
    the query would flatter it).
    """
    import os
    import tempfile

    from repro.core.session import DatasetSession
    from repro.service.wal import WriteAheadLog
    from repro.service.worker import ShardState, recover_shard

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    lows, highs = data.min(axis=0), data.max(axis=0)
    spec = RatioVector.uniform(*RATIO, d)
    rng = np.random.default_rng(3)
    with tempfile.TemporaryDirectory(prefix="repro-bench-pr6-") as scratch:
        wal_path = os.path.join(scratch, "shard.wal")
        snapshot_path = os.path.join(scratch, "shard.snapshot")
        wal = WriteAheadLog(wal_path)
        state = ShardState(
            DatasetSession(data), np.arange(n, dtype=np.intp), last_seq=0
        )
        state.session.run_batch([spec], method="cutting")  # warm the index
        half = 8
        for seq in range(1, update_batches + 1):
            inserts = lows + rng.uniform(size=(half, d)) * (highs - lows)
            positions = rng.choice(state.gids.size, size=half, replace=False)
            record = {
                "seq": seq,
                "insert_points": inserts,
                "insert_gids": np.arange(
                    n + (seq - 1) * half, n + seq * half, dtype=np.intp
                ),
                "delete_gids": state.gids[positions],
            }
            wal.append(record)
            state.apply_record(record)
        wal.close()
        state.session.run_batch([spec], method="cutting")  # re-warm post-stream
        state.session.save_snapshot(snapshot_path, extra=state.extra_state())
        want = state.session.run(ratios=spec, method="cutting")

        def recover(path: str):
            recovery_wal = WriteAheadLog(wal_path)
            recovered, info = recover_shard(
                data, np.arange(n, dtype=np.intp), path, recovery_wal
            )
            got = recovered.session.run(ratios=spec, method="cutting")
            return recovered, info, got

        warm_state, warm_info, warm_got = recover(snapshot_path)
        cold_state, cold_info, cold_got = recover(
            os.path.join(scratch, "missing.snapshot")
        )
        identical = (
            warm_info["mode"] == "warm"
            and cold_info["mode"] == "cold"
            and np.array_equal(warm_state.gids, cold_state.gids)
            and np.array_equal(warm_got.indices, want.indices)
            and warm_got.points.tobytes() == want.points.tobytes()
            and np.array_equal(cold_got.indices, want.indices)
            and cold_got.points.tobytes() == want.points.tobytes()
        )
        warm_seconds = _best_of(lambda: recover(snapshot_path), repeats)
        cold_seconds = _best_of(
            lambda: recover(os.path.join(scratch, "missing.snapshot")), repeats
        )
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "update_batches": update_batches,
        "wal_records_replayed_cold": int(cold_info["replayed"]),
        "wal_records_replayed_warm": int(warm_info["replayed"]),
        "state_identical": bool(identical),
        "cold_rebuild_seconds": cold_seconds,
        "warm_restart_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} wal={update_batches:>3}  "
        f"cold={cold_seconds:8.3f}s  warm={warm_seconds:8.3f}s  "
        f"speedup={entry['speedup']:7.1f}x  identical={identical}"
    )
    return entry


def run_fault_harness_workload(
    workload: str, n: int, d: int, steps: int, kill_every: int, kill_mode: str
) -> dict:
    """The acceptance gate: byte-identical answers with workers dying."""
    from repro.service.faults import FaultPlan, run_fault_injection
    from repro.service.supervisor import ServiceConfig

    plan = FaultPlan(kill_every=kill_every, kill_mode=kill_mode, seed=19)
    config = ServiceConfig(
        num_shards=2, backoff_base=0.01, backoff_cap=0.05, snapshot_every=4
    )
    start = time.perf_counter()
    report = run_fault_injection(
        dataset=DISTRIBUTION.upper(),
        n=n,
        dimensions=d,
        steps=steps,
        update_fraction=0.5,
        batch=3,
        update_size=12,
        plan=plan,
        config=config,
        seed=23,
    )
    seconds = time.perf_counter() - start
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "steps": steps,
        "kill_every": kill_every,
        "kill_mode": kill_mode,
        "kills_injected": report.injector["kills_injected"],
        "worker_respawns": report.service_stats["worker_respawns"],
        "warm_restarts": report.service_stats["warm_restarts"],
        "cold_rebuilds": report.service_stats["cold_rebuilds"],
        "wal_records_replayed": report.service_stats["wal_records_replayed"],
        "answers_identical": report.ok,
        "seconds": seconds,
    }
    print(
        f"{workload:<26} n={n:>6} d={d} steps={steps:>4}  "
        f"kills={entry['kills_injected']} respawns={entry['worker_respawns']} "
        f"(warm={entry['warm_restarts']} cold={entry['cold_rebuilds']})  "
        f"{seconds:6.2f}s  identical={report.ok}"
    )
    return entry


# ----------------------------------------------------------------------
# PR 7: multi-core kernel executor + float32 fast path
# ----------------------------------------------------------------------
def run_thread_scaling_workload(
    workload: str,
    n: int,
    d: int,
    num_queries: int,
    update_batches: int,
    threads_list,
    repeats: int,
) -> dict:
    """Skyline build / index build / query batch / update stream per thread count.

    Every phase is re-timed for each worker count on fresh sessions, and
    every answer is compared byte-for-byte against the ``threads=1`` (exact
    serial path) reference.  On a host with fewer physical cores than the
    requested worker count the extra threads just time-slice one core, so
    the recorded scaling is the *honest* number for this machine — the
    acceptance block records ``os.cpu_count()`` alongside for that reason.
    """
    import os

    from repro.core.session import DatasetSession

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    specs = _stream_specs(np.random.default_rng(17), num_queries, d)
    rng = np.random.default_rng(19)
    lows, highs = data.min(axis=0), data.max(axis=0)
    update_inserts = [
        lows + rng.uniform(size=(16, d)) * (highs - lows)
        for _ in range(update_batches)
    ]
    update_deletes = [
        rng.choice(n - 32, size=8, replace=False) for _ in range(update_batches)
    ]
    stream_spec = [specs[0]]

    reference = None
    per_thread = {}
    identical = True
    for threads in threads_list:
        skyline_seconds = float("inf")
        for _ in range(repeats):
            session = DatasetSession(data, threads=threads)
            start = time.perf_counter()
            skyline = session.skyline()
            skyline_seconds = min(skyline_seconds, time.perf_counter() - start)

        index_seconds = float("inf")
        for _ in range(repeats):
            session = DatasetSession(data, threads=threads)
            session.skyline()  # the build being timed is the index alone
            start = time.perf_counter()
            session.index_for("cutting")
            index_seconds = min(index_seconds, time.perf_counter() - start)

        query_session = DatasetSession(data, threads=threads)
        query_session.run_batch(specs[:1], method="cutting")  # warm index
        batch_seconds = float("inf")
        answers = None
        for _ in range(repeats):
            start = time.perf_counter()
            results = query_session.run_batch(specs, method="cutting")
            batch_seconds = min(batch_seconds, time.perf_counter() - start)
            answers = [r.indices for r in results]

        stream_session = DatasetSession(data, threads=threads)
        stream_session.run_batch(stream_spec, method="cutting")
        start = time.perf_counter()
        stream_answers = []
        for inserts, deletes in zip(update_inserts, update_deletes):
            stream_session.apply_updates(inserts=inserts, deletes=deletes)
            stream_answers.extend(
                r.indices
                for r in stream_session.run_batch(stream_spec, method="cutting")
            )
        stream_seconds = time.perf_counter() - start

        record = {
            "threads": threads,
            "skyline_build_seconds": skyline_seconds,
            "index_build_seconds": index_seconds,
            "query_batch_seconds": batch_seconds,
            "update_stream_seconds": stream_seconds,
        }
        if reference is None:
            reference = (skyline, answers, stream_answers, record)
        else:
            ref_sky, ref_answers, ref_stream, base = reference
            identical = identical and bool(np.array_equal(ref_sky, skyline))
            identical = identical and all(
                np.array_equal(a, b) for a, b in zip(ref_answers, answers)
            )
            identical = identical and all(
                np.array_equal(a, b) for a, b in zip(ref_stream, stream_answers)
            )
            for key in (
                "skyline_build_seconds",
                "index_build_seconds",
                "query_batch_seconds",
                "update_stream_seconds",
            ):
                speed_key = key.replace("_seconds", "_speedup")
                record[speed_key] = (
                    base[key] / record[key] if record[key] > 0 else float("inf")
                )
        per_thread[str(threads)] = record
        print(
            f"{workload:<26} n={n:>6} d={d} threads={threads}  "
            f"skyline={skyline_seconds:7.3f}s  index={index_seconds:7.3f}s  "
            f"batch[{num_queries}]={batch_seconds:7.3f}s  "
            f"stream={stream_seconds:7.3f}s"
        )
    return {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "num_queries": num_queries,
        "update_batches": update_batches,
        "cpu_count": os.cpu_count(),
        "answers_identical": identical,
        "per_thread": per_thread,
    }


def run_float32_workload(workload: str, n: int, d: int, repeats: int) -> dict:
    """float32 fast path (exact fallback on f32 ties) vs the float64 kernels.

    Times the dominance-screen-bound phases (skyline build and a batched
    query run) in both compute dtypes, verifies byte-identical answers, and
    reports the fast-path/fallback row counts so the fallback rate on real
    tie-free data is visible.
    """
    from repro.core.session import DatasetSession

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    specs = _stream_specs(np.random.default_rng(23), 20, d)

    timings = {}
    answers = {}
    stats = {}
    for dtype in ("float64", "float32"):
        sky_seconds = float("inf")
        session = None
        for _ in range(repeats):
            session = DatasetSession(data, dtype=dtype)
            start = time.perf_counter()
            session.skyline()
            sky_seconds = min(sky_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        results = session.run_batch(specs, method="transform")
        batch_seconds = time.perf_counter() - start
        timings[dtype] = {
            "skyline_build_seconds": sky_seconds,
            "transform_batch_seconds": batch_seconds,
        }
        answers[dtype] = (session.skyline(), [r.indices for r in results])
        stats[dtype] = {
            "float32_fastpath_hits": session.stats.float32_fastpath_hits,
            "float32_exact_fallbacks": session.stats.float32_exact_fallbacks,
        }
    identical = bool(
        np.array_equal(answers["float64"][0], answers["float32"][0])
    ) and all(
        np.array_equal(a, b)
        for a, b in zip(answers["float64"][1], answers["float32"][1])
    )
    skyline_speedup = (
        timings["float64"]["skyline_build_seconds"]
        / timings["float32"]["skyline_build_seconds"]
        if timings["float32"]["skyline_build_seconds"] > 0
        else float("inf")
    )
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "answers_identical": identical,
        "float64": timings["float64"],
        "float32": timings["float32"],
        "skyline_build_speedup": skyline_speedup,
        "fastpath_rows": stats["float32"]["float32_fastpath_hits"],
        "fallback_rows": stats["float32"]["float32_exact_fallbacks"],
    }
    print(
        f"{workload:<26} n={n:>6} d={d}  "
        f"f64={timings['float64']['skyline_build_seconds']:7.3f}s  "
        f"f32={timings['float32']['skyline_build_seconds']:7.3f}s  "
        f"speedup={skyline_speedup:5.2f}x  "
        f"fastpath={entry['fastpath_rows']} fallback={entry['fallback_rows']}  "
        f"identical={identical}"
    )
    return entry


def run_hot_set_workload(
    workload: str,
    n: int,
    d: int,
    steps: int,
    num_param_sets: int,
    hot_count: int,
    update_every: int,
) -> dict:
    """Budgeted index advisor vs unbounded / no-cache / naive eviction.

    One skewed access stream over ``num_param_sets`` distinct index
    parameter sets (distinct cache keys via ``seed`` overrides): 80 % of
    steps hit the ``hot_count`` hot sets, the rest spread over the cold
    tail, with a small insert/delete batch every ``update_every`` steps.
    The identical stream is replayed through four session configurations:

    * ``unbounded`` — every built index stays cached (the pre-PR 8 shape:
      fastest, but resident bytes grow with the number of parameter sets).
    * ``budgeted`` — the advisor holds resident bytes under a budget sized
      to ~2.5 hot indexes, evicting by benefit-per-byte.
    * ``no_cache`` — the cache is dropped after every step; every access
      pays a full rebuild.
    * ``naive`` — evict-*all*-on-pressure: whenever resident bytes exceed
      the same budget, the whole cache is cleared, hot sets included.

    Answers are compared byte-for-byte across all four configurations at
    every step, and the budgeted session's exact resident rollup
    (headroom included) is asserted ``<= budget`` at every measurement
    point — both are hard acceptance gates.
    """
    from repro.core.session import DatasetSession

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    # Size the budget from a probe build: room for the hot set (whose
    # arenas grow ~1.3x under updates) but never for a cold index on top
    # of it, so every cold access puts the policy under pressure: naive
    # throws the whole hot set away, the advisor sheds only the cold
    # newcomer (lowest benefit-per-byte).
    probe = DatasetSession(data)
    budget = int((hot_count + 1.0) * probe.index_for("quadtree", seed=0).nbytes())
    del probe

    rng = np.random.default_rng(23)
    access = [
        int(rng.integers(0, hot_count))
        if rng.random() < 0.8
        else int(rng.integers(hot_count, num_param_sets))
        for _ in range(steps)
    ]
    step_specs = [_stream_specs(rng, 4, d) for _ in range(steps)]
    update_rng = np.random.default_rng(29)

    sessions = {
        "unbounded": DatasetSession(data),
        "budgeted": DatasetSession(data, index_budget_bytes=budget),
        "no_cache": DatasetSession(data),
        "naive": DatasetSession(data),
    }
    times = {name: 0.0 for name in sessions}
    answers_identical = True
    resident_max = 0
    resident_within_budget = True
    rebuilds = {name: 0 for name in sessions}

    for step, (param, specs) in enumerate(zip(access, step_specs)):
        step_answers = {}
        for name, session in sessions.items():
            start = time.perf_counter()
            index = session.index_for("quadtree", seed=param)
            step_answers[name] = index.query_indices_many(specs)
            if name == "no_cache":
                session._indexes.clear()
            elif name == "naive" and session.index_cache_nbytes() > budget:
                session._indexes.clear()
            times[name] += time.perf_counter() - start
            rebuilds[name] = session.stats.index_builds
        reference = step_answers["unbounded"]
        for name, got in step_answers.items():
            answers_identical = answers_identical and all(
                np.array_equal(g, r) for g, r in zip(got, reference)
            )
        resident = sessions["budgeted"].index_cache_nbytes()
        resident_max = max(resident_max, resident)
        resident_within_budget = resident_within_budget and resident <= budget
        if update_every and (step + 1) % update_every == 0:
            lows, highs = data.min(axis=0), data.max(axis=0)
            inserts = lows + update_rng.uniform(size=(8, d)) * (highs - lows)
            deletes = update_rng.choice(
                sessions["unbounded"].num_points, size=4, replace=False
            )
            for name, session in sessions.items():
                start = time.perf_counter()
                session.apply_updates(inserts=inserts, deletes=deletes)
                times[name] += time.perf_counter() - start
            resident = sessions["budgeted"].index_cache_nbytes()
            resident_max = max(resident_max, resident)
            resident_within_budget = (
                resident_within_budget and resident <= budget
            )

    budgeted_stats = sessions["budgeted"].stats
    entry = {
        "workload": workload,
        "n": n,
        "dimensions": d,
        "steps": steps,
        "num_param_sets": num_param_sets,
        "hot_count": hot_count,
        "budget_bytes": budget,
        "times_s": {k: round(v, 6) for k, v in times.items()},
        "index_builds": rebuilds,
        "vs_no_cache_speedup": times["no_cache"] / times["budgeted"],
        "vs_naive_speedup": times["naive"] / times["budgeted"],
        "vs_unbounded_ratio": times["budgeted"] / times["unbounded"],
        "resident_max_bytes": resident_max,
        "resident_within_budget": resident_within_budget,
        "unbounded_resident_bytes": sessions["unbounded"].index_cache_nbytes(),
        "evictions": int(budgeted_stats.index_evictions),
        "answers_identical": bool(answers_identical),
    }
    print(
        f"{workload:32s} n={n:6d} budget={budget / 1e6:6.2f}MB  "
        f"vs_no_cache={entry['vs_no_cache_speedup']:5.2f}x  "
        f"vs_naive={entry['vs_naive_speedup']:5.2f}x  "
        f"within_budget={resident_within_budget}  "
        f"identical={answers_identical}"
    )
    return entry


def run_backend_sweep_workload(
    workload: str,
    n: int,
    d: int,
    num_queries: int,
    backends,
    threads_list,
    repeats: int,
) -> dict:
    """Kernel backend x worker count sweep over the kernel-bound phases.

    Every ``(backend, threads)`` cell re-times the skyline build, the
    cutting-index build, and a cutting-method query batch on fresh
    sessions, and compares all answers byte-for-byte against the first
    cell — so ``backends`` and ``threads_list`` should lead with the
    exact references ``"serial"`` and ``1``.  The dominance screens are
    block-bounded and sit under the process backend's dispatch gate
    (``MIN_PROCESS_DISPATCH_BYTES``) at any ``n``; the index build's
    pairwise-intersection fill scales with the *skyline* size squared and
    is what actually ships across the process boundary here.  The
    recorded ``process_dispatches`` / ``shm_peak_bytes`` counters and
    ``cpu_count`` make the gate and the host's core count visible — on a
    single-core host the honest headline is byte parity at bounded
    overhead, not speedup.
    """
    import os

    from repro.core.session import DatasetSession
    from repro.perf.executor import shutdown_process_pools
    from repro.perf.shm import reset_global_pool

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    specs = _stream_specs(np.random.default_rng(31), num_queries, d)

    reference = None
    cells = []
    identical = True
    for backend in backends:
        for threads in threads_list:
            dispatches = chunks = 0
            shm_peak = 0

            def drain(session):
                nonlocal dispatches, chunks, shm_peak
                dispatches += int(session.stats.process_dispatches)
                chunks += int(session.stats.process_chunks)
                shm_peak = max(shm_peak, int(session.stats.shm_peak_bytes))

            sky_seconds = float("inf")
            skyline = None
            for _ in range(repeats):
                session = DatasetSession(data, threads=threads, backend=backend)
                start = time.perf_counter()
                skyline = session.skyline()
                sky_seconds = min(sky_seconds, time.perf_counter() - start)
                drain(session)

            index_seconds = float("inf")
            for _ in range(repeats):
                session = DatasetSession(data, threads=threads, backend=backend)
                session.skyline()  # the build being timed is the index alone
                start = time.perf_counter()
                session.index_for("cutting")
                index_seconds = min(index_seconds, time.perf_counter() - start)
                drain(session)

            query_session = DatasetSession(data, threads=threads, backend=backend)
            query_session.run_batch(specs[:1], method="cutting")  # warm index
            start = time.perf_counter()
            results = query_session.run_batch(specs, method="cutting")
            batch_seconds = time.perf_counter() - start
            answers = [r.indices for r in results]
            drain(query_session)

            if reference is None:
                reference = (skyline, answers)
            else:
                ref_sky, ref_answers = reference
                identical = identical and bool(np.array_equal(ref_sky, skyline))
                identical = identical and all(
                    np.array_equal(a, b) for a, b in zip(ref_answers, answers)
                )
            cells.append(
                {
                    "backend": backend,
                    "threads": threads,
                    "skyline_build_seconds": sky_seconds,
                    "index_build_seconds": index_seconds,
                    "query_batch_seconds": batch_seconds,
                    "process_dispatches": dispatches,
                    "process_chunks": chunks,
                    "shm_peak_bytes": shm_peak,
                }
            )
            print(
                f"{workload:<26} n={n:>6} d={d} backend={backend:<7} "
                f"threads={threads}  skyline={sky_seconds:7.3f}s  "
                f"index={index_seconds:7.3f}s  "
                f"batch[{num_queries}]={batch_seconds:7.3f}s  "
                f"dispatches={dispatches}"
            )
    # Leave nothing behind for the later sections: drop the cached worker
    # processes and unlink every pooled /dev/shm segment.
    shutdown_process_pools()
    reset_global_pool()
    return {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "num_queries": num_queries,
        "cpu_count": os.cpu_count(),
        "answers_identical": identical,
        "cells": cells,
    }


def run_net_workload(
    workload: str,
    n: int,
    d: int,
    steps: int,
    update_fraction: float,
    batch: int,
    update_size: int,
    num_shards: int,
) -> dict:
    """TCP round-trip overhead of the network front end vs the in-process API.

    Two identical sharded services replay the same seeded mixed stream —
    one driven through :class:`EclipseService` directly, the other through
    ``EclipseClient`` -> TCP -> ``EclipseNetServer`` on loopback.  Every
    answer pair (query gids + points, update acks) is byte-compared, so
    the overhead ratio is measured on provably identical work: the delta
    is pure wire cost (framing, pickling, loopback round trips, the
    asyncio hop into the worker thread pool).
    """
    from repro.service.netclient import ClientConfig, EclipseClient
    from repro.service.netserver import NetServerConfig, start_in_thread
    from repro.service.supervisor import EclipseService, ServiceConfig

    data = generate_dataset(DISTRIBUTION, n, d, seed=0)
    lows, highs = data.min(axis=0), data.max(axis=0)
    config = ServiceConfig(num_shards=num_shards)

    def drive(call_query, call_update):
        """Replay the seeded stream; returns (answers, ops) for parity."""
        rng = np.random.default_rng(47)
        gid_pool = np.arange(n, dtype=np.int64)
        answers = []
        queries = update_batches = 0
        for _ in range(steps):
            if rng.uniform() < update_fraction:
                half = max(1, update_size // 2)
                inserts = lows + rng.uniform(size=(half, d)) * (highs - lows)
                num_deletes = int(min(half, gid_pool.size - 1))
                deletes = rng.choice(
                    gid_pool, size=num_deletes, replace=False
                )
                ack = call_update(inserts, deletes)
                insert_gids = np.asarray(ack.insert_gids, dtype=np.int64)
                gid_pool = np.concatenate(
                    [np.setdiff1d(gid_pool, deletes), insert_gids]
                )
                answers.append(
                    (
                        "update",
                        int(ack.seq),
                        insert_gids.tobytes(),
                        int(ack.rows_deleted),
                    )
                )
                update_batches += 1
            else:
                for res in call_query(_stream_specs(rng, batch, d)):
                    answers.append(
                        (
                            "query",
                            np.asarray(res.gids).tobytes(),
                            np.asarray(res.points).tobytes(),
                        )
                    )
                queries += batch
        return answers, queries, update_batches

    inproc = EclipseService(data, config=config)
    try:
        start = time.perf_counter()
        inproc_answers, queries, update_batches = drive(
            inproc.query_batch,
            lambda ins, dels: inproc.apply_updates(
                inserts=ins, delete_gids=dels
            ),
        )
        inproc_seconds = time.perf_counter() - start
    finally:
        inproc.close()

    served = EclipseService(data, config=config)
    handle = start_in_thread(
        served, NetServerConfig(port=0, max_connections=8)
    )
    try:
        client = EclipseClient(
            handle.host,
            handle.port,
            ClientConfig(response_timeout=max(60.0, config.deadline)),
        )
        try:
            start = time.perf_counter()
            tcp_answers, _, _ = drive(
                client.query_batch,
                lambda ins, dels: client.apply_updates(
                    inserts=ins, delete_gids=dels
                ),
            )
            tcp_seconds = time.perf_counter() - start
        finally:
            client.close()
    finally:
        handle.shutdown()
        served.close()

    identical = inproc_answers == tcp_answers
    requests = queries // batch + update_batches if batch else update_batches
    entry = {
        "workload": workload,
        "n": n,
        "d": d,
        "distribution": DISTRIBUTION.upper(),
        "steps": steps,
        "num_shards": num_shards,
        "queries": queries,
        "update_batches": update_batches,
        "answers_identical": identical,
        "inproc_seconds": inproc_seconds,
        "tcp_seconds": tcp_seconds,
        "tcp_overhead_ratio": (
            tcp_seconds / inproc_seconds if inproc_seconds > 0 else float("inf")
        ),
        "tcp_ms_per_request": (
            1e3 * (tcp_seconds - inproc_seconds) / requests
            if requests
            else 0.0
        ),
    }
    print(
        f"{workload:<26} n={n:>6} d={d} steps={steps:>4} shards={num_shards}  "
        f"inproc={inproc_seconds:8.3f}s  tcp={tcp_seconds:8.3f}s  "
        f"ratio={entry['tcp_overhead_ratio']:5.2f}x  "
        f"wire={entry['tcp_ms_per_request']:6.2f}ms/req  "
        f"identical={identical}"
    )
    return entry


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], np.ndarray], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_workload(
    workload: str,
    n: int,
    repeats: int,
    seed_fn: Callable[[np.ndarray, RatioVector], np.ndarray],
    new_fn: Callable[[np.ndarray, RatioVector], np.ndarray],
) -> dict:
    data = generate_dataset(DISTRIBUTION, n, DIMENSIONS, seed=0)
    ratios = RatioVector.uniform(*RATIO, DIMENSIONS)
    seed_indices = seed_fn(data, ratios)
    new_indices = new_fn(data, ratios)
    identical = bool(np.array_equal(seed_indices, new_indices))
    seed_seconds = _best_of(lambda: seed_fn(data, ratios), repeats)
    new_seconds = _best_of(lambda: new_fn(data, ratios), repeats)
    entry = {
        "workload": workload,
        "n": n,
        "d": DIMENSIONS,
        "distribution": DISTRIBUTION.upper(),
        "ratio": list(RATIO),
        "result_size": int(new_indices.size),
        "indices_identical": identical,
        "seed_seconds": seed_seconds,
        "new_seconds": new_seconds,
        "speedup": seed_seconds / new_seconds if new_seconds > 0 else float("inf"),
    }
    print(
        f"{workload:<18} n={n:>7}  seed={seed_seconds:8.3f}s  "
        f"new={new_seconds:8.3f}s  speedup={entry['speedup']:7.1f}x  "
        f"identical={identical}"
    )
    return entry


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="acceptance workloads only, one repetition (finishes in < 60 s)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT,
        help=f"where to write the JSON results (default: {OUTPUT})",
    )
    parser.add_argument(
        "--output-pr2",
        type=Path,
        default=OUTPUT_PR2,
        help=f"where to write the PR 2 JSON results (default: {OUTPUT_PR2})",
    )
    parser.add_argument(
        "--output-pr3",
        type=Path,
        default=OUTPUT_PR3,
        help=f"where to write the PR 3 JSON results (default: {OUTPUT_PR3})",
    )
    parser.add_argument(
        "--output-pr4",
        type=Path,
        default=OUTPUT_PR4,
        help=f"where to write the PR 4 JSON results (default: {OUTPUT_PR4})",
    )
    parser.add_argument(
        "--output-pr5",
        type=Path,
        default=OUTPUT_PR5,
        help=f"where to write the PR 5 JSON results (default: {OUTPUT_PR5})",
    )
    parser.add_argument(
        "--output-pr6",
        type=Path,
        default=OUTPUT_PR6,
        help=f"where to write the PR 6 JSON results (default: {OUTPUT_PR6})",
    )
    parser.add_argument(
        "--output-pr7",
        type=Path,
        default=OUTPUT_PR7,
        help=f"where to write the PR 7 JSON results (default: {OUTPUT_PR7})",
    )
    parser.add_argument(
        "--output-pr8",
        type=Path,
        default=OUTPUT_PR8,
        help=f"where to write the PR 8 JSON results (default: {OUTPUT_PR8})",
    )
    parser.add_argument(
        "--output-pr9",
        type=Path,
        default=OUTPUT_PR9,
        help=f"where to write the PR 9 JSON results (default: {OUTPUT_PR9})",
    )
    parser.add_argument(
        "--output-pr10",
        type=Path,
        default=OUTPUT_PR10,
        help=f"where to write the PR 10 JSON results (default: {OUTPUT_PR10})",
    )
    args = parser.parse_args(argv)

    if args.fast:
        transform_sweep = [5_000, 50_000]
        baseline_sweep = [1_000, 5_000]
        build_2d_sweep = [1_200]
        build_4d_sweep = [2_000]
        batch_sweep = [(5_000, 3, 50, "transform"), (5_000, 3, 50, "auto")]
        tree_2d_sweep = [1_200]
        tree_4d_sweep = [400]
        probe_sweep = [(5_000, 3, "cutting", 100)]
        update_sweep = [(50_000, 3, 200)]
        stream_sweep = [(50_000, 3, 40, 0.1, 8, 8)]
        shrink_sweep = [(400, 4)]
        # (n, d, batches, joins, deletes, query_every, anchor_every)
        sustained_sweep = [(20_000, 3, 150, 3, 2, 15, 50)]
        compact_sweep = [(20_000, 3)]
        delta_sweep = [(20_000, 3)]
        # (n, d, steps, update_fraction, batch, update_size, shards)
        service_sweep = [(5_000, 3, 30, 0.3, 4, 16, 2)]
        recovery_sweep = [(20_000, 3, 12)]
        harness_sweep = [(2_000, 3, 16, 2, "after_apply")]
        # (n, d, num_queries, update_batches, threads_list)
        scaling_sweep = [(10_000, 3, 50, 4, (1, 2))]
        float32_sweep = [(10_000, 3)]
        # (n, d, steps, num_param_sets, hot_count, update_every)
        hot_set_sweep = [(4_000, 3, 60, 12, 3, 15)]
        # (n, d, num_queries, backends, threads_list) — n sized so the
        # dominance-screen payload clears MIN_PROCESS_DISPATCH_BYTES and
        # the process cells really cross the process boundary.
        backend_sweep = [
            (50_000, 3, 20, ("serial", "thread", "process"), (1, 2)),
        ]
        # (n, d, steps, update_fraction, batch, update_size, shards)
        net_sweep = [(5_000, 3, 30, 0.3, 4, 16, 2)]
        repeats = 1
    else:
        transform_sweep = [2_000, 10_000, 50_000, 100_000]
        baseline_sweep = [1_000, 2_000, 5_000, 10_000]
        build_2d_sweep = [600, 1_200, 2_000]
        build_4d_sweep = [2_000, 5_000]
        batch_sweep = [
            (5_000, 3, 50, "transform"),
            (5_000, 3, 50, "auto"),
            (20_000, 3, 50, "transform"),
            (20_000, 3, 200, "auto"),
        ]
        tree_2d_sweep = [600, 1_200, 2_000]
        tree_4d_sweep = [400, 1_000]
        probe_sweep = [
            (5_000, 3, "cutting", 100),
            (20_000, 3, "cutting", 200),
            (3_000, 2, "quadtree", 200),
        ]
        update_sweep = [(50_000, 3, 20), (50_000, 3, 200), (50_000, 3, 2_000)]
        stream_sweep = [(50_000, 3, 100, 0.1, 8, 8)]
        shrink_sweep = [(400, 4), (1_000, 4)]
        # (n, d, batches, joins, deletes, query_every, anchor_every)
        sustained_sweep = [
            (50_000, 3, 320, 3, 2, 16, 40),
            # d=4: the pair arena starts at ~3.9M rows, so the legacy
            # exact-fit path pays a ~150-240 ms full-arena copy per batch
            # (climbing with the arena) where the arena engine stays at a
            # flat ~10 ms; no dead-fraction reset occurs in 80 batches, so
            # the legacy curve is cleanly monotone.
            (20_000, 4, 80, 3, 2, 20, 80),
        ]
        compact_sweep = [(20_000, 3), (8_000, 4)]
        delta_sweep = [(50_000, 3)]
        # (n, d, steps, update_fraction, batch, update_size, shards)
        service_sweep = [
            (5_000, 3, 60, 0.3, 4, 16, 2),
            (20_000, 3, 60, 0.3, 8, 16, 4),
        ]
        recovery_sweep = [(20_000, 3, 12), (50_000, 3, 24)]
        harness_sweep = [
            (3_000, 3, 24, 2, "kill"),
            (3_000, 3, 24, 2, "after_apply"),
        ]
        # (n, d, num_queries, update_batches, threads_list)
        scaling_sweep = [
            (50_000, 3, 50, 8, (1, 2, 4, 8)),
            (10_000, 4, 50, 4, (1, 2, 4, 8)),
        ]
        float32_sweep = [(50_000, 3), (10_000, 4)]
        # (n, d, steps, num_param_sets, hot_count, update_every)
        hot_set_sweep = [
            (4_000, 3, 120, 12, 3, 20),
            (8_000, 3, 120, 12, 3, 24),
        ]
        # (n, d, num_queries, backends, threads_list) — n sized so the
        # dominance-screen payload clears MIN_PROCESS_DISPATCH_BYTES and
        # the process cells really cross the process boundary.
        backend_sweep = [
            (50_000, 3, 50, ("serial", "thread", "process"), (1, 2, 4)),
            (100_000, 3, 30, ("serial", "thread", "process"), (1, 2)),
        ]
        # (n, d, steps, update_fraction, batch, update_size, shards)
        net_sweep = [
            (5_000, 3, 60, 0.3, 4, 16, 2),
            (20_000, 3, 60, 0.3, 8, 16, 4),
        ]
        repeats = 3

    entries = []
    for n in transform_sweep:
        entries.append(
            run_workload(
                "eclipse_transform",
                n,
                repeats,
                seed_eclipse_transform_indices,
                lambda d, r: eclipse_transform_indices(d, r),
            )
        )
    for n in baseline_sweep:
        entries.append(
            run_workload(
                "eclipse_baseline",
                n,
                repeats,
                seed_eclipse_baseline_indices,
                lambda d, r: eclipse_baseline_indices(d, r),
            )
        )

    acceptance = {
        "transform_speedup_at_50k": next(
            e["speedup"]
            for e in entries
            if e["workload"] == "eclipse_transform" and e["n"] == 50_000
        ),
        "baseline_speedup_at_5k": next(
            e["speedup"]
            for e in entries
            if e["workload"] == "eclipse_baseline" and e["n"] == 5_000
        ),
        "all_indices_identical": all(e["indices_identical"] for e in entries),
    }
    payload = {
        "pr": 1,
        "description": (
            "Vectorised dominance-kernel engine vs. seed point-at-a-time "
            "implementations (ANTI, d=4, ratio (0.36, 2.75), best-of timings)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": acceptance,
        "results": entries,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}\n")

    # ------------------------------------------------------------------
    # PR 2: kernelised index builds and batched ratio queries
    # ------------------------------------------------------------------
    pr2_entries = []
    for n in build_2d_sweep:
        # Worst-case data: every point is a skyline point, so the whole
        # two-dimensional arrangement (the seed's O(u^2) Python pair loop)
        # is exercised at u = n.
        data = generate_worst_case(n, 2, seed=0)
        pr2_entries.append(run_index_build_workload("index_build_2d", data, repeats))
    for n in build_4d_sweep:
        data = generate_dataset(DISTRIBUTION, n, DIMENSIONS, seed=0)
        pr2_entries.append(run_index_build_workload("index_build_4d", data, repeats))
    for n, d, num_queries, method in batch_sweep:
        pr2_entries.append(
            run_batched_workload(
                f"batched_queries[{method}]", n, d, num_queries, repeats, method
            )
        )

    build_speedups = [
        e["speedup"] for e in pr2_entries if e["workload"].startswith("index_build")
    ]
    batch_speedups = [
        e["speedup"]
        for e in pr2_entries
        if e["workload"].startswith("batched_queries")
    ]
    pr2_acceptance = {
        "index_build_speedup_2d": next(
            e["speedup"] for e in pr2_entries if e["workload"] == "index_build_2d"
        ),
        "best_index_build_speedup": max(build_speedups),
        "batched_vs_independent_speedup": max(batch_speedups),
        "all_indices_identical": all(e["indices_identical"] for e in pr2_entries),
    }
    pr2_payload = {
        "pr": 2,
        "description": (
            "Planner/executor query stack: kernelised array-native index "
            "builds vs. the seed object-at-a-time build loop, and "
            "DatasetSession.run_batch vs. independent EclipseQuery runs "
            "(best-of timings)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr2_acceptance,
        "results": pr2_entries,
    }
    args.output_pr2.write_text(json.dumps(pr2_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr2}")

    # ------------------------------------------------------------------
    # PR 3: flattened CSR tree engine and batched index probes
    # ------------------------------------------------------------------
    pr3_entries = []
    for u in tree_2d_sweep:
        # Worst-case d=2: every point is a skyline point and the pairwise
        # intersections cluster tightly — the workload where midpoint splits
        # separate worst (Figures 13/14).
        pairs, pair_coeffs, pair_rhs = _worst_case_pair_arrays(u)
        pr3_entries.append(
            run_tree_build_workload(
                f"tree_build_quad_2d[u={u}]", pair_coeffs, pair_rhs, repeats, "quadtree"
            )
        )
        pr3_entries.append(
            run_tree_build_workload(
                f"tree_build_cut_2d[u={u}]", pair_coeffs, pair_rhs, repeats, "cutting"
            )
        )
    for n in tree_4d_sweep:
        pairs, pair_coeffs, pair_rhs = _anti_pair_arrays(n, DIMENSIONS)
        pr3_entries.append(
            run_tree_build_workload(
                f"tree_build_cut_4d[n={n}]", pair_coeffs, pair_rhs, repeats, "cutting"
            )
        )
        if not args.fast:
            # Honesty entry: the quadtree keeps the seed splitting rule for
            # structural parity, so its high-d build on the huge default
            # domain stays incidence-bound (speedup can be < 1 here; the
            # planner prefers the cutting build at d >= 3 for this reason).
            pr3_entries.append(
                run_tree_build_workload(
                    f"tree_build_quad_4d[n={n}]",
                    pair_coeffs,
                    pair_rhs,
                    repeats,
                    "quadtree",
                )
            )
    for n, d, backend, num_queries in probe_sweep:
        pr3_entries.append(
            run_batched_probe_workload(
                f"batched_probe[{backend}]", n, d, backend, num_queries, repeats
            )
        )

    quad_2d_at_1200 = next(
        e["speedup"]
        for e in pr3_entries
        if e["workload"] == "tree_build_quad_2d[u=1200]"
    )
    pr3_acceptance = {
        "tree_build_speedup_quad_2d_u1200": quad_2d_at_1200,
        "best_tree_build_speedup": max(
            e["speedup"] for e in pr3_entries if e["workload"].startswith("tree_build")
        ),
        "batched_probe_speedup": max(
            e["speedup"]
            for e in pr3_entries
            if e["workload"].startswith("batched_probe")
        ),
        "all_identical": all(
            e.get("queries_identical", e.get("indices_identical", False))
            for e in pr3_entries
        ),
    }
    pr3_payload = {
        "pr": 3,
        "description": (
            "Flattened CSR spatial-tree engine (level-order array-native "
            "builds, sorted-interval 1-D fast path) vs the PR 2 recursive "
            "per-node builders, plus batched index probes "
            "(query_indices_many) vs per-query loops (best-of timings)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr3_acceptance,
        "results": pr3_entries,
    }
    args.output_pr3.write_text(json.dumps(pr3_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr3}")

    # ------------------------------------------------------------------
    # PR 4: dynamic dataset core — incremental maintenance vs rebuilds
    # ------------------------------------------------------------------
    pr4_entries = []
    for n, d, batch in update_sweep:
        pr4_entries.append(
            run_incremental_update_workload(
                f"incremental_update[b={batch}]", n, d, batch, repeats
            )
        )
    for n, d, steps, fraction, batch, update_size in stream_sweep:
        pr4_entries.append(
            run_stream_workload_pr4(
                "stream_mixed[90/10]",
                n,
                d,
                steps,
                fraction,
                batch,
                update_size,
                repeats,
            )
        )
    for n, d in shrink_sweep:
        pr4_entries.append(
            run_shrink_domain_workload(
                f"shrink_domain_build[n={n}]", n, d, repeats
            )
        )

    stream_speedup = next(
        e["speedup"] for e in pr4_entries if e["workload"].startswith("stream_mixed")
    )
    pr4_acceptance = {
        "stream_mixed_speedup": stream_speedup,
        "best_incremental_update_speedup": max(
            e["speedup"]
            for e in pr4_entries
            if e["workload"].startswith("incremental_update")
        ),
        "shrink_domain_build_speedup": max(
            e["speedup"]
            for e in pr4_entries
            if e["workload"].startswith("shrink_domain")
        ),
        "all_identical": all(
            e.get("indices_identical", e.get("queries_identical", False))
            for e in pr4_entries
        ),
    }
    pr4_payload = {
        "pr": 4,
        "description": (
            "Dynamic dataset core: incremental skyline + eclipse-index "
            "maintenance (DatasetSession.apply_updates, appendable "
            "hyperplane arenas, per-leaf overflow buffers) vs full "
            "rebuild-per-update, plus the opt-in domain-shrinking quadtree "
            "root (best-of timings)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr4_acceptance,
        "results": pr4_entries,
    }
    args.output_pr4.write_text(json.dumps(pr4_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr4}")

    # ------------------------------------------------------------------
    # PR 5: amortised dynamic-core memory engine
    # ------------------------------------------------------------------
    pr5_entries = []
    for n, d, num_batches, joins, dels, q_every, a_every in sustained_sweep:
        pr5_entries.append(
            run_sustained_stream_workload(
                f"sustained_stream[{num_batches}b]",
                n,
                d,
                num_batches,
                joins,
                dels,
                q_every,
                a_every,
            )
        )
    for n, d in compact_sweep:
        pr5_entries.append(
            run_compact_vs_rebuild_workload(
                f"compact_vs_rebuild[d={d}]", n, d, repeats
            )
        )
    for n, d in delta_sweep:
        pr5_entries.append(
            run_delta_patch_workload(f"delta_patch[n={n}]", n, d, repeats)
        )

    stream_entry = next(
        e for e in pr5_entries if e["workload"].startswith("sustained_stream")
    )
    pr5_acceptance = {
        "stream_arena_first_to_last_decile": stream_entry[
            "arena_first_to_last_decile"
        ],
        "stream_legacy_first_to_last_decile": stream_entry[
            "legacy_first_to_last_decile"
        ],
        "stream_update_speedup": max(
            e["update_speedup"]
            for e in pr5_entries
            if e["workload"].startswith("sustained_stream")
        ),
        "compact_vs_rebuild_speedup": max(
            e["speedup"]
            for e in pr5_entries
            if e["workload"].startswith("compact_vs_rebuild")
        ),
        "delta_patch_speedup": max(
            e["speedup"]
            for e in pr5_entries
            if e["workload"].startswith("delta_patch")
        ),
        "all_identical": all(e["indices_identical"] for e in pr5_entries),
    }
    pr5_payload = {
        "pr": 5,
        "description": (
            "Amortised dynamic-core memory engine: capacity-doubling "
            "arenas + in-place compaction + delta-driven index maintenance "
            "vs the PR 4 cost shape (exact-fit reallocation per batch, "
            "rebuild on dead-fraction, drop-all on skyline recompute)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr5_acceptance,
        "results": pr5_entries,
    }
    args.output_pr5.write_text(json.dumps(pr5_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr5}")

    # ------------------------------------------------------------------
    # PR 6: fault-tolerant concurrent query service
    # ------------------------------------------------------------------
    pr6_entries = []
    for n, d, steps, fraction, batch, update_size, shards in service_sweep:
        pr6_entries.append(
            run_service_throughput_workload(
                f"service_stream[s={shards}]",
                n,
                d,
                steps,
                fraction,
                batch,
                update_size,
                shards,
            )
        )
    for n, d, num_batches in recovery_sweep:
        pr6_entries.append(
            run_recovery_workload(
                f"recovery_warm_vs_cold[n={n}]", n, d, num_batches, repeats
            )
        )
    for n, d, steps, kill_every, kill_mode in harness_sweep:
        pr6_entries.append(
            run_fault_harness_workload(
                f"fault_harness[{kill_mode}]", n, d, steps, kill_every, kill_mode
            )
        )

    pr6_acceptance = {
        "warm_restart_speedup": max(
            e["speedup"]
            for e in pr6_entries
            if e["workload"].startswith("recovery_warm_vs_cold")
        ),
        "service_vs_single_ratio": min(
            e["service_vs_single_ratio"]
            for e in pr6_entries
            if e["workload"].startswith("service_stream")
        ),
        "harness_kills_injected": sum(
            e["kills_injected"]
            for e in pr6_entries
            if e["workload"].startswith("fault_harness")
        ),
        "all_identical": all(
            e.get(
                "answers_identical", e.get("state_identical", False)
            )
            for e in pr6_entries
        ),
    }
    pr6_payload = {
        "pr": 6,
        "description": (
            "Fault-tolerant concurrent query service: sharded worker "
            "processes with admission batching vs one single-process "
            "session on the same stream, warm restart (checksummed "
            "snapshot + WAL tail) vs cold rebuild (base data + full WAL "
            "replay), and the fault-injection harness (workers killed "
            "mid-batch, byte-identical answers required)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr6_acceptance,
        "results": pr6_entries,
    }
    args.output_pr6.write_text(json.dumps(pr6_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr6}")

    # ------------------------------------------------------------------
    # PR 7: multi-core kernel executor + float32 fast path
    # ------------------------------------------------------------------
    import os as _os

    pr7_entries = []
    for n, d, num_queries, update_batches, threads_list in scaling_sweep:
        pr7_entries.append(
            run_thread_scaling_workload(
                f"thread_scaling[d={d}]",
                n,
                d,
                num_queries,
                update_batches,
                threads_list,
                repeats,
            )
        )
    for n, d in float32_sweep:
        pr7_entries.append(
            run_float32_workload(f"float32_fast_path[d={d}]", n, d, repeats)
        )

    scaling_entries = [
        e for e in pr7_entries if e["workload"].startswith("thread_scaling")
    ]
    f32_entries = [
        e for e in pr7_entries if e["workload"].startswith("float32_fast_path")
    ]
    biggest = max(scaling_entries, key=lambda e: e["n"])
    probe = biggest["per_thread"].get("4") or biggest["per_thread"][
        str(max(int(t) for t in biggest["per_thread"]))
    ]
    speedups_at_4 = {
        phase: probe.get(f"{phase}_speedup", 1.0)
        for phase in ("skyline_build", "index_build", "query_batch")
    }
    pr7_acceptance = {
        "cpu_count": _os.cpu_count(),
        "threads_probed": int(probe["threads"]),
        "speedups_at_probe": speedups_at_4,
        # The >= 2x-at-4-threads target needs >= 4 physical cores; the
        # recorded numbers are this host's honest scaling either way.
        "phases_at_2x": sum(1 for v in speedups_at_4.values() if v >= 2.0),
        "meets_2x_target_on_this_host": sum(
            1 for v in speedups_at_4.values() if v >= 2.0
        )
        >= 2,
        "float32_best_speedup": max(
            e["skyline_build_speedup"] for e in f32_entries
        ),
        "float32_fallback_rows": sum(e["fallback_rows"] for e in f32_entries),
        "all_identical": all(e["answers_identical"] for e in pr7_entries),
    }
    pr7_payload = {
        "pr": 7,
        "description": (
            "Multi-core kernel executor (shared worker-thread pool over the "
            "memory-capped block kernels; budget divided across workers) "
            "and the opt-in float32 compute path with exact float64 "
            "fallback on single-precision ties.  Thread scaling is bounded "
            "by the host's physical cores (recorded as cpu_count); answers "
            "are byte-identical across every thread count and dtype."
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr7_acceptance,
        "results": pr7_entries,
    }
    args.output_pr7.write_text(json.dumps(pr7_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr7}")

    # ------------------------------------------------------------------
    # PR 8: workload-adaptive index advisor under a byte budget
    # ------------------------------------------------------------------
    pr8_entries = []
    for n, d, steps, num_sets, hot, upd_every in hot_set_sweep:
        pr8_entries.append(
            run_hot_set_workload(
                f"hot_set_sweep[n={n}]", n, d, steps, num_sets, hot, upd_every
            )
        )

    pr8_acceptance = {
        "vs_no_cache_speedup": max(
            e["vs_no_cache_speedup"] for e in pr8_entries
        ),
        "vs_naive_speedup": max(e["vs_naive_speedup"] for e in pr8_entries),
        "resident_within_budget": all(
            e["resident_within_budget"] for e in pr8_entries
        ),
        "evictions": sum(e["evictions"] for e in pr8_entries),
        "all_identical": all(e["answers_identical"] for e in pr8_entries),
    }
    pr8_payload = {
        "pr": 8,
        "description": (
            "Workload-adaptive index advisor: budgeted build/keep/evict "
            "for the session index cache (benefit-per-byte eviction, "
            "Extend-style gated admission, memoised what-if costing) vs "
            "unbounded caching, no caching, and naive "
            "evict-all-on-pressure on a skewed hot-set stream with "
            "periodic updates.  Resident bytes are the exact arena "
            "rollups (headroom included); answers are byte-identical "
            "across every configuration."
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr8_acceptance,
        "results": pr8_entries,
    }
    args.output_pr8.write_text(json.dumps(pr8_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr8}")

    # ------------------------------------------------------------------
    # PR 9: shared-memory process-pool kernel backend
    # ------------------------------------------------------------------
    pr9_entries = []
    for n, d, num_queries, backends, threads_list in backend_sweep:
        pr9_entries.append(
            run_backend_sweep_workload(
                f"backend_sweep[n={n}]",
                n,
                d,
                num_queries,
                backends,
                threads_list,
                repeats,
            )
        )

    process_cells = [
        c
        for e in pr9_entries
        for c in e["cells"]
        if c["backend"] == "process"
    ]
    pr9_acceptance = {
        "cpu_count": _os.cpu_count(),
        "process_dispatches_total": sum(
            c["process_dispatches"] for c in process_cells
        ),
        # The backend must actually cross the process boundary somewhere
        # in the sweep — a gate that inlines everything proves nothing.
        "process_backend_engaged": any(
            c["process_dispatches"] > 0 for c in process_cells
        ),
        "shm_peak_bytes_max": max(
            (c["shm_peak_bytes"] for c in process_cells), default=0
        ),
        "all_identical": all(e["answers_identical"] for e in pr9_entries),
    }
    pr9_payload = {
        "pr": 9,
        "description": (
            "Shared-memory process-pool kernel backend: a cached "
            "forkserver worker pool attaches input blocks zero-copy via "
            "multiprocessing.shared_memory and returns per-task results, "
            "behind the same run_tasks/map_blocks dispatch as the thread "
            "backend.  The sweep re-times the dominance-bound phases for "
            "every backend x worker-count cell; speedup is bounded by the "
            "host's physical cores (recorded as cpu_count) and the hard "
            "gate is byte-identical answers plus a process backend that "
            "demonstrably crossed the process boundary."
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr9_acceptance,
        "results": pr9_entries,
    }
    args.output_pr9.write_text(json.dumps(pr9_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr9}")

    # ------------------------------------------------------------------
    # PR 10: async TCP front end
    # ------------------------------------------------------------------
    pr10_entries = []
    for n, d, steps, update_fraction, batch, update_size, shards in net_sweep:
        pr10_entries.append(
            run_net_workload(
                f"net_front_end[n={n}]",
                n,
                d,
                steps,
                update_fraction,
                batch,
                update_size,
                shards,
            )
        )

    pr10_acceptance = {
        "tcp_overhead_ratio_max": max(
            e["tcp_overhead_ratio"] for e in pr10_entries
        ),
        "tcp_ms_per_request_max": max(
            e["tcp_ms_per_request"] for e in pr10_entries
        ),
        "all_identical": all(e["answers_identical"] for e in pr10_entries),
    }
    pr10_payload = {
        "pr": 10,
        "description": (
            "Async TCP front end: the same seeded mixed stream is replayed "
            "against two identical sharded services, one through the "
            "in-process EclipseService API and one through EclipseClient "
            "-> TCP -> EclipseNetServer on loopback.  The ratio is the "
            "pure wire cost of the network layer (framing, pickling, "
            "loopback round trips); the hard gate is byte-identical "
            "answers between the two sides for every query result and "
            "update acknowledgement."
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": pr10_acceptance,
        "results": pr10_entries,
    }
    args.output_pr10.write_text(json.dumps(pr10_payload, indent=2) + "\n")
    print(f"\nwrote {args.output_pr10}")

    print(
        f"acceptance PR1: transform {acceptance['transform_speedup_at_50k']:.1f}x "
        f"(target >= 10x), baseline {acceptance['baseline_speedup_at_5k']:.1f}x "
        f"(target >= 5x), identical={acceptance['all_indices_identical']}"
    )
    print(
        f"acceptance PR2: index build "
        f"{pr2_acceptance['index_build_speedup_2d']:.1f}x at d=2 "
        f"(target >= 2x), batched "
        f"{pr2_acceptance['batched_vs_independent_speedup']:.1f}x "
        f"(target >= 2x), identical={pr2_acceptance['all_indices_identical']}"
    )
    print(
        f"acceptance PR3: flattened tree build "
        f"{pr3_acceptance['tree_build_speedup_quad_2d_u1200']:.1f}x on the "
        f"worst-case d=2 quadtree at u=1200 (target >= 5x), batched probe "
        f"{pr3_acceptance['batched_probe_speedup']:.1f}x, "
        f"identical={pr3_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR4: mixed 90/10 stream "
        f"{pr4_acceptance['stream_mixed_speedup']:.1f}x vs rebuild-per-update "
        f"at n=50k (target >= 5x), best incremental update "
        f"{pr4_acceptance['best_incremental_update_speedup']:.1f}x, "
        f"shrunk-root quadtree build "
        f"{pr4_acceptance['shrink_domain_build_speedup']:.1f}x, "
        f"identical={pr4_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR5: sustained stream per-batch "
        f"{pr5_acceptance['stream_arena_first_to_last_decile']:.2f}x first->last "
        f"decile on the arena engine (target <= 2x) vs "
        f"{pr5_acceptance['stream_legacy_first_to_last_decile']:.2f}x on the "
        f"legacy path, update path up to "
        f"{pr5_acceptance['stream_update_speedup']:.1f}x, compaction "
        f"{pr5_acceptance['compact_vs_rebuild_speedup']:.1f}x vs rebuild "
        f"(target >= 5x), delta patch "
        f"{pr5_acceptance['delta_patch_speedup']:.1f}x vs drop-and-rebuild, "
        f"identical={pr5_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR6: warm restart "
        f"{pr6_acceptance['warm_restart_speedup']:.1f}x vs cold rebuild "
        f"(target > 1x), service stream at "
        f"{pr6_acceptance['service_vs_single_ratio']:.2f}x the "
        f"single-process wall time, "
        f"{pr6_acceptance['harness_kills_injected']} kills injected, "
        f"identical={pr6_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR7: {pr7_acceptance['phases_at_2x']}/3 phases >= 2x at "
        f"{pr7_acceptance['threads_probed']} threads on a "
        f"{pr7_acceptance['cpu_count']}-core host "
        f"(skyline {speedups_at_4['skyline_build']:.2f}x, index "
        f"{speedups_at_4['index_build']:.2f}x, batch "
        f"{speedups_at_4['query_batch']:.2f}x), float32 "
        f"{pr7_acceptance['float32_best_speedup']:.2f}x with "
        f"{pr7_acceptance['float32_fallback_rows']} fallback rows, "
        f"identical={pr7_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR8: budgeted advisor "
        f"{pr8_acceptance['vs_no_cache_speedup']:.1f}x vs no-cache and "
        f"{pr8_acceptance['vs_naive_speedup']:.1f}x vs naive "
        f"evict-all-on-pressure (targets > 1x), "
        f"{pr8_acceptance['evictions']} evictions, "
        f"within_budget={pr8_acceptance['resident_within_budget']}, "
        f"identical={pr8_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR9: process backend dispatched "
        f"{pr9_acceptance['process_dispatches_total']} block groups "
        f"(engaged={pr9_acceptance['process_backend_engaged']}) with "
        f"shm peak {pr9_acceptance['shm_peak_bytes_max'] / 1e6:.1f}MB on a "
        f"{pr9_acceptance['cpu_count']}-core host, "
        f"identical={pr9_acceptance['all_identical']}"
    )
    print(
        f"acceptance PR10: TCP front end at "
        f"{pr10_acceptance['tcp_overhead_ratio_max']:.2f}x the in-process "
        f"wall time (wire cost "
        f"{pr10_acceptance['tcp_ms_per_request_max']:.2f}ms/request max), "
        f"identical={pr10_acceptance['all_identical']}"
    )
    ok = (
        acceptance["transform_speedup_at_50k"] >= 10
        and acceptance["baseline_speedup_at_5k"] >= 5
        and acceptance["all_indices_identical"]
        and pr2_acceptance["index_build_speedup_2d"] >= 2
        and pr2_acceptance["batched_vs_independent_speedup"] >= 2
        and pr2_acceptance["all_indices_identical"]
        and pr3_acceptance["tree_build_speedup_quad_2d_u1200"] >= 5
        and pr3_acceptance["all_identical"]
        and pr4_acceptance["stream_mixed_speedup"] >= 5
        and pr4_acceptance["all_identical"]
        and pr5_acceptance["stream_arena_first_to_last_decile"] <= 2.0
        and pr5_acceptance["compact_vs_rebuild_speedup"] >= 5
        and pr5_acceptance["all_identical"]
        and pr6_acceptance["warm_restart_speedup"] > 1.0
        and pr6_acceptance["harness_kills_injected"] >= 1
        and pr6_acceptance["all_identical"]
        # The 2x-at-4-threads target is core-count-bound, so the hard gate
        # here is correctness: byte-identical answers across the whole
        # threads x dtype matrix and a float32 fallback path that fired.
        and pr7_acceptance["all_identical"]
        and pr8_acceptance["vs_no_cache_speedup"] > 1.0
        and pr8_acceptance["vs_naive_speedup"] > 1.0
        and pr8_acceptance["resident_within_budget"]
        and pr8_acceptance["all_identical"]
        # Process-backend speedup is core-count-bound like PR 7, so the
        # hard gates are byte parity across every backend x threads cell
        # and a dispatch gate that provably let work cross the boundary.
        and pr9_acceptance["process_backend_engaged"]
        and pr9_acceptance["all_identical"]
        # TCP overhead is workload-dependent (bigger batches amortise the
        # wire cost), so the hard gate is byte parity between the wire
        # path and the in-process path on the full mixed stream.
        and pr10_acceptance["all_identical"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
