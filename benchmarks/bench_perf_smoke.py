"""Perf smoke benchmark: kernel-layer speedups over the seed implementations.

Times ``eclipse_transform`` and ``eclipse_baseline`` over an n-sweep against
faithful copies of the *seed* (pre-kernel, point-at-a-time) implementations,
verifies both return byte-identical indices, and writes the results to
``BENCH_PR1.json`` at the repository root — a machine-readable perf
trajectory for future PRs to compare against.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_smoke.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_perf_smoke.py --fast   # < 60 s

The acceptance workloads of PR 1 are always included:
``eclipse_transform`` at (n=50 000, d=4, ANTI, ratio (0.36, 2.75)) and
``eclipse_baseline`` at (n=5 000, d=4, ANTI).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable, List

import numpy as np

from repro.core.baseline import eclipse_baseline_indices
from repro.core.transform import eclipse_transform_indices, map_to_corner_scores
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset

RATIO = (0.36, 2.75)
DISTRIBUTION = "anti"
DIMENSIONS = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"


# ----------------------------------------------------------------------
# Seed implementations (copied from the seed commit, point-at-a-time)
# ----------------------------------------------------------------------
def _seed_skyline_sfs_indices(data: np.ndarray) -> np.ndarray:
    sums = data.sum(axis=1)
    order = np.lexsort(
        tuple(data[:, j] for j in range(data.shape[1] - 1, -1, -1)) + (sums,)
    )
    skyline: List[int] = []
    skyline_rows: List[np.ndarray] = []
    for idx in order:
        candidate = data[idx]
        dominated = False
        for other in skyline_rows:
            if np.all(other <= candidate) and np.any(other < candidate):
                dominated = True
                break
        if not dominated:
            skyline.append(int(idx))
            skyline_rows.append(candidate)
    return np.array(sorted(skyline), dtype=np.intp)


def _seed_dominated_mask(candidates: np.ndarray, dominators: np.ndarray) -> np.ndarray:
    if candidates.shape[0] == 0 or dominators.shape[0] == 0:
        return np.zeros(candidates.shape[0], dtype=bool)
    mask = np.zeros(candidates.shape[0], dtype=bool)
    for i in range(candidates.shape[0]):
        c = candidates[i]
        le = np.all(dominators <= c, axis=1)
        lt = np.any(dominators < c, axis=1)
        if np.any(le & lt):
            mask[i] = True
    return mask


def _seed_skyline_recursive(data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    n = indices.size
    if n <= 1:
        return indices
    if n <= 64 or data.shape[1] == 2:
        local = _seed_skyline_sfs_indices(data[indices])
        return indices[local]
    last = data[indices, -1]
    median = np.median(last)
    low_mask = last <= median
    if low_mask.all() or not low_mask.any():
        local = _seed_skyline_sfs_indices(data[indices])
        return indices[local]
    sky_low = _seed_skyline_recursive(data, indices[low_mask])
    sky_high = _seed_skyline_recursive(data, indices[~low_mask])
    dominated = _seed_dominated_mask(data[sky_high], data[sky_low])
    return np.concatenate([sky_low, sky_high[~dominated]])


def seed_eclipse_transform_indices(data: np.ndarray, ratios: RatioVector) -> np.ndarray:
    mapped = map_to_corner_scores(data, ratios)
    result = _seed_skyline_recursive(
        mapped, np.arange(mapped.shape[0], dtype=np.intp)
    )
    return np.sort(result)


def seed_eclipse_baseline_indices(data: np.ndarray, ratios: RatioVector) -> np.ndarray:
    corners = ratios.corner_weight_vectors()
    corner_scores = data @ corners.T
    eclipse: List[int] = []
    for i in range(data.shape[0]):
        le = np.all(corner_scores <= corner_scores[i], axis=1)
        lt = np.any(corner_scores < corner_scores[i], axis=1)
        dominated_by = le & lt
        dominated_by[i] = False
        if not dominated_by.any():
            eclipse.append(i)
    return np.array(eclipse, dtype=np.intp)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _best_of(fn: Callable[[], np.ndarray], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_workload(
    workload: str,
    n: int,
    repeats: int,
    seed_fn: Callable[[np.ndarray, RatioVector], np.ndarray],
    new_fn: Callable[[np.ndarray, RatioVector], np.ndarray],
) -> dict:
    data = generate_dataset(DISTRIBUTION, n, DIMENSIONS, seed=0)
    ratios = RatioVector.uniform(*RATIO, DIMENSIONS)
    seed_indices = seed_fn(data, ratios)
    new_indices = new_fn(data, ratios)
    identical = bool(np.array_equal(seed_indices, new_indices))
    seed_seconds = _best_of(lambda: seed_fn(data, ratios), repeats)
    new_seconds = _best_of(lambda: new_fn(data, ratios), repeats)
    entry = {
        "workload": workload,
        "n": n,
        "d": DIMENSIONS,
        "distribution": DISTRIBUTION.upper(),
        "ratio": list(RATIO),
        "result_size": int(new_indices.size),
        "indices_identical": identical,
        "seed_seconds": seed_seconds,
        "new_seconds": new_seconds,
        "speedup": seed_seconds / new_seconds if new_seconds > 0 else float("inf"),
    }
    print(
        f"{workload:<18} n={n:>7}  seed={seed_seconds:8.3f}s  "
        f"new={new_seconds:8.3f}s  speedup={entry['speedup']:7.1f}x  "
        f"identical={identical}"
    )
    return entry


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="acceptance workloads only, one repetition (finishes in < 60 s)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=OUTPUT,
        help=f"where to write the JSON results (default: {OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.fast:
        transform_sweep = [5_000, 50_000]
        baseline_sweep = [1_000, 5_000]
        repeats = 1
    else:
        transform_sweep = [2_000, 10_000, 50_000, 100_000]
        baseline_sweep = [1_000, 2_000, 5_000, 10_000]
        repeats = 3

    entries = []
    for n in transform_sweep:
        entries.append(
            run_workload(
                "eclipse_transform",
                n,
                repeats,
                seed_eclipse_transform_indices,
                lambda d, r: eclipse_transform_indices(d, r),
            )
        )
    for n in baseline_sweep:
        entries.append(
            run_workload(
                "eclipse_baseline",
                n,
                repeats,
                seed_eclipse_baseline_indices,
                lambda d, r: eclipse_baseline_indices(d, r),
            )
        )

    acceptance = {
        "transform_speedup_at_50k": next(
            e["speedup"]
            for e in entries
            if e["workload"] == "eclipse_transform" and e["n"] == 50_000
        ),
        "baseline_speedup_at_5k": next(
            e["speedup"]
            for e in entries
            if e["workload"] == "eclipse_baseline" and e["n"] == 5_000
        ),
        "all_indices_identical": all(e["indices_identical"] for e in entries),
    }
    payload = {
        "pr": 1,
        "description": (
            "Vectorised dominance-kernel engine vs. seed point-at-a-time "
            "implementations (ANTI, d=4, ratio (0.36, 2.75), best-of timings)"
        ),
        "generated_unix_time": time.time(),
        "fast_mode": bool(args.fast),
        "acceptance": acceptance,
        "results": entries,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    print(
        f"acceptance: transform {acceptance['transform_speedup_at_50k']:.1f}x "
        f"(target >= 10x), baseline {acceptance['baseline_speedup_at_5k']:.1f}x "
        f"(target >= 5x), identical={acceptance['all_indices_identical']}"
    )
    ok = (
        acceptance["transform_speedup_at_50k"] >= 10
        and acceptance["baseline_speedup_at_5k"] >= 5
        and acceptance["all_indices_identical"]
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
