"""Table V: the case-study answer counts (simulated user study).

The benchmark measures the end-to-end cost of the five query front-ends the
respondents compared (skyline, top-k, eclipse-ratio, eclipse-weight,
eclipse-category) on the hotel scenario, plus the respondent simulation
itself, and asserts the qualitative outcome of Table V: the eclipse-category
system receives the plurality of answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import EclipseQuery
from repro.core.weights import (
    ImportanceCategory,
    RatioVector,
    weight_interval_to_ratio_range,
)
from repro.data.generators import generate_independent
from repro.experiments.user_study import run_user_study
from repro.knn.linear import knn_indices
from repro.skyline.api import skyline_indices

#: A realistic hotel corpus for the five front-ends (distance, price).
HOTELS = generate_independent(500, 2, seed=42)


def test_table5_user_study_simulation(benchmark):
    result = benchmark(lambda: run_user_study(respondents=61, seed=17))
    assert sum(result.counts.values()) == 61
    assert result.preferred_system == "eclipse-category"


def test_table5_skyline_system(benchmark):
    result = benchmark(lambda: skyline_indices(HOTELS))
    assert result.size >= 1


def test_table5_topk_system(benchmark):
    result = benchmark(lambda: knn_indices(HOTELS, [0.4, 0.6], k=10))
    assert result.size == 10


def test_table5_eclipse_ratio_system(benchmark):
    query = EclipseQuery(HOTELS)
    result = benchmark(lambda: query.run(ratios=(0.3, 0.5)))
    assert len(result) >= 1


def test_table5_eclipse_weight_system(benchmark):
    query = EclipseQuery(HOTELS)
    ratio = weight_interval_to_ratio_range(0.3, 0.5)
    result = benchmark(lambda: query.run(ratios=ratio))
    assert len(result) >= 1


def test_table5_eclipse_category_system(benchmark):
    query = EclipseQuery(HOTELS)
    ratios = RatioVector.from_categories([ImportanceCategory.IMPORTANT])
    result = benchmark(lambda: query.run(ratios=ratios))
    assert len(result) >= 1
