"""Tables VI, VII, VIII: expected number of eclipse points.

The benchmark times the Monte-Carlo estimator at each sweep point of the
three count tables and asserts the paper's qualitative trends:

* Table VI — the count barely moves with ``n``;
* Table VII — the count grows quickly with ``d``;
* Table VIII — wider ratio ranges return more points.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import expected_eclipse_points
from repro.experiments.harness import full_sweep_enabled

TABLE6_SIZES = [2**7, 2**10, 2**13] + ([2**17] if full_sweep_enabled() else [])
TABLE7_DIMENSIONS = (2, 3, 4, 5)
TABLE8_RATIOS = ((0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19))
TRIALS = 5


@pytest.mark.parametrize("n", TABLE6_SIZES)
def test_table6_count_vs_n(benchmark, n):
    estimate = benchmark(
        lambda: expected_eclipse_points(n, 3, 0.36, 2.75, trials=TRIALS, seed=0)
    )
    # Table VI: the expected count stays in the low single digits for d = 3.
    assert 1.0 <= estimate.mean <= 20.0


@pytest.mark.parametrize("d", TABLE7_DIMENSIONS)
def test_table7_count_vs_d(benchmark, d):
    estimate = benchmark(
        lambda: expected_eclipse_points(2**10, d, 0.36, 2.75, trials=TRIALS, seed=0)
    )
    assert estimate.mean >= 1.0


def test_table7_trend_increasing_in_d(benchmark):
    def run():
        return [
            expected_eclipse_points(2**9, d, 0.36, 2.75, trials=3, seed=0).mean
            for d in (2, 3, 4)
        ]

    counts = benchmark(run)
    assert counts[0] <= counts[1] <= counts[2] * 1.5


@pytest.mark.parametrize("ratio", TABLE8_RATIOS, ids=lambda r: f"{r[0]}-{r[1]}")
def test_table8_count_vs_ratio(benchmark, ratio):
    estimate = benchmark(
        lambda: expected_eclipse_points(
            2**10, 3, ratio[0], ratio[1], trials=TRIALS, seed=0
        )
    )
    assert estimate.mean >= 1.0


def test_table8_trend_wider_range_more_points(benchmark):
    def run():
        wide = expected_eclipse_points(2**9, 3, 0.18, 5.67, trials=3, seed=1).mean
        narrow = expected_eclipse_points(2**9, 3, 0.84, 1.19, trials=3, seed=1).mean
        return wide, narrow

    wide, narrow = benchmark(run)
    assert wide >= narrow
