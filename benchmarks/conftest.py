"""Pytest configuration for the benchmark suite.

The benchmark modules are named ``bench_*.py`` (one per table/figure of the
paper); the ``python_files`` setting in ``pyproject.toml`` registers that
pattern so ``pytest benchmarks/ --benchmark-only`` collects them.
"""
