"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section V).  The default parameters are laptop-sized so the whole suite
finishes in minutes; set ``REPRO_FULL_SWEEP=1`` to use the paper's full
parameter ranges where they are feasible in pure Python.

Benchmarks print the reproduced rows/series (via ``capsys``-independent
stdout) in addition to the pytest-benchmark timings, so running::

    pytest benchmarks/ --benchmark-only -s

shows the same numbers recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.data.nba import nba_minimization_points

#: Default ratio range of the evaluation (bold column of Table IV).
DEFAULT_RATIO = (0.36, 2.75)


def dataset_for(name: str, n: int, dimensions: int, seed: int = 0) -> np.ndarray:
    """Materialise one of the four evaluation datasets."""
    if name.upper() == "NBA":
        return nba_minimization_points(n=n, dimensions=dimensions)
    return generate_dataset(name, n, dimensions, seed=seed)


def ratio_vector(dimensions: int, low: float = DEFAULT_RATIO[0], high: float = DEFAULT_RATIO[1]):
    return RatioVector.uniform(low, high, dimensions)


@pytest.fixture(scope="session")
def default_ratio():
    return DEFAULT_RATIO
