"""Side-by-side comparison of the four eclipse algorithms (mini Figure 10/11).

Generates correlated, independent, and anti-correlated datasets, runs BASE,
TRAN, QUAD, and CUTTING on each, verifies that all algorithms return the same
eclipse set, and prints a timing table — a laptop-sized rendition of the
average-case experiments in Section V-D of the paper.

Run with::

    python examples/algorithm_comparison.py [n] [d]
"""

from __future__ import annotations

import sys
import time

from repro.core.baseline import eclipse_baseline_indices
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.index.eclipse_index import EclipseIndex


def run_once(distribution: str, n: int, dimensions: int) -> dict:
    """Time each algorithm on one dataset and check the results agree."""
    data = generate_dataset(distribution, n, dimensions, seed=29)
    ratios = RatioVector.uniform(0.36, 2.75, dimensions)

    timings = {}

    start = time.perf_counter()
    base = eclipse_baseline_indices(data, ratios)
    timings["BASE"] = time.perf_counter() - start

    start = time.perf_counter()
    tran = eclipse_transform_indices(data, ratios)
    timings["TRAN"] = time.perf_counter() - start

    index_times = {}
    results = {"BASE": base, "TRAN": tran}
    for name, backend in (("QUAD", "quadtree"), ("CUTTING", "cutting")):
        start = time.perf_counter()
        index = EclipseIndex(backend=backend).build(data)
        build_seconds = time.perf_counter() - start
        start = time.perf_counter()
        results[name] = index.query_indices(ratios)
        timings[name] = time.perf_counter() - start
        index_times[name] = build_seconds

    reference = base.tolist()
    agree = all(results[name].tolist() == reference for name in results)
    return {
        "distribution": distribution,
        "eclipse_size": len(reference),
        "agree": agree,
        "timings": timings,
        "build": index_times,
    }


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    dimensions = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    print(f"Comparing algorithms on n={n}, d={dimensions}, r=[0.36, 2.75]\n")

    header = f"{'dataset':<8} {'|E|':>5} {'agree':>6} " + "".join(
        f"{name:>12}" for name in ("BASE", "TRAN", "QUAD", "CUTTING")
    )
    print(header)
    print("-" * len(header))
    for distribution in ("CORR", "INDE", "ANTI"):
        row = run_once(distribution, n, dimensions)
        cells = "".join(
            f"{row['timings'][name] * 1000:>10.2f}ms"
            for name in ("BASE", "TRAN", "QUAD", "CUTTING")
        )
        print(
            f"{distribution:<8} {row['eclipse_size']:>5} {str(row['agree']):>6} {cells}"
        )
        builds = ", ".join(
            f"{name} build {seconds * 1000:.1f}ms" for name, seconds in row["build"].items()
        )
        print(f"{'':<8} index build cost: {builds}")
    print()
    print(
        "Expected shape (as in the paper): query times BASE > TRAN >> QUAD/CUTTING,\n"
        "and CORR < INDE < ANTI within each algorithm (more eclipse points on ANTI)."
    )


if __name__ == "__main__":
    main()
