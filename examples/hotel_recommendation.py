"""Conference hotel recommendation — the motivating scenario of the paper.

A conference organiser must shortlist hotels for participants whose exact
price/distance trade-offs are unknown but roughly characterisable ("price
matters more to students", "speakers care mostly about distance").  The
script builds a realistic hotel corpus, then contrasts what each query
operator returns and how the five eclipse front-ends of the case study
(Table V) are expressed with the library's API.

Run with::

    python examples/hotel_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro import EclipseQuery, ImportanceCategory, RatioVector
from repro.core.weights import weight_interval_to_ratio_range
from repro.data.dataset import Dataset
from repro.knn.linear import knn_indices
from repro.skyline.api import skyline_indices


def build_hotel_corpus(num_hotels: int = 300, seed: int = 21) -> Dataset:
    """Generate a plausible hotel corpus: distance (km) and nightly price ($).

    Prices loosely anti-correlate with distance from the venue (downtown
    hotels cost more), which keeps the skyline moderately large — the
    situation in which eclipse is most useful.
    """
    rng = np.random.default_rng(seed)
    distance = rng.gamma(shape=2.0, scale=2.5, size=num_hotels)  # km
    base_price = 260.0 - 14.0 * distance
    price = np.clip(base_price + rng.normal(scale=35.0, size=num_hotels), 45.0, None)
    values = np.column_stack([distance, price])
    labels = [f"hotel_{i:03d}" for i in range(num_hotels)]
    return Dataset(
        values=values,
        attribute_names=["distance_km", "price_usd"],
        larger_is_better=[False, False],
        labels=labels,
        name="conference-hotels",
    )


def describe(selection, dataset: Dataset, title: str) -> None:
    print(f"{title} ({len(selection)} hotels)")
    for index in list(selection)[:8]:
        distance, price = dataset.values[int(index)]
        print(f"  {dataset.label_of(int(index))}: {distance:.1f} km, ${price:.0f}/night")
    if len(selection) > 8:
        print(f"  ... and {len(selection) - 8} more")
    print()


def main() -> None:
    hotels = build_hotel_corpus()
    print(hotels.describe())
    print()

    data = hotels.normalized()
    query = EclipseQuery(data)

    # --- Classic operators ---------------------------------------------------
    describe(skyline_indices(data), hotels, "Skyline (no preference information)")
    describe(
        knn_indices(data, [0.5, 0.5], k=5),
        hotels,
        "Top-5 with fixed weights <0.5, 0.5>",
    )

    # --- The five systems of the case study (Table V) -------------------------
    # 1. eclipse-ratio: "distance/price importance ratio is between 0.3 and 0.5"
    describe(
        query.run(ratios=(0.3, 0.5)).indices,
        hotels,
        "Eclipse-ratio system, r in [0.3, 0.5]",
    )

    # 2. eclipse-weight: "w_distance in [0.3, 0.5] with w_price = 1 - w_distance"
    ratio_range = weight_interval_to_ratio_range(0.3, 0.5)
    describe(
        query.run(ratios=ratio_range).indices,
        hotels,
        f"Eclipse-weight system, w1 in [0.3, 0.5] (ratio {ratio_range[0]:.2f}..{ratio_range[1]:.2f})",
    )

    # 3. eclipse-category: "distance is unimportant compared to price"
    describe(
        query.run(
            ratios=RatioVector.from_categories([ImportanceCategory.UNIMPORTANT])
        ).indices,
        hotels,
        "Eclipse-category system, distance 'unimportant' vs price",
    )

    # --- Audience-specific shortlists ----------------------------------------
    # Students: price matters more than distance (ratio < 1), per the paper.
    students = query.run(ratios=(0.0, 1.0))
    describe(students.indices, hotels, "Student shortlist, r in [0, 1)")

    # Speakers: distance dominates.
    speakers = query.run(ratios=(2.0, 8.0))
    describe(speakers.indices, hotels, "Speaker shortlist, r in [2, 8]")

    # Index reuse: one index serves every audience's query.
    index = query.build_index("quad")
    sizes = {
        label: index.query_indices(RatioVector.uniform(low, high, 2)).size
        for label, (low, high) in {
            "students": (0.01, 1.0),
            "everyone": (0.25, 4.0),
            "speakers": (2.0, 8.0),
        }.items()
    }
    print("Result sizes served from one prebuilt index:", sizes)


if __name__ == "__main__":
    main()
