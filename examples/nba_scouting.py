"""NBA player scouting with eclipse queries (the paper's real-data scenario).

The paper evaluates on a dataset of 2384 NBA players with five career
statistics (PTS, REB, AST, STL, BLK).  This example uses the synthetic
stand-in dataset and walks through a scouting workflow:

1. find the all-around greats (skyline — every player nobody strictly beats);
2. find the best player for one exact weighting (1NN);
3. find shortlists for *rough* positional profiles with eclipse — e.g. "a
   scorer first, but rebounds matter too" — and show how the result size
   sits between 1NN and skyline;
4. use the result-size estimator to choose a ratio range that returns a
   shortlist of a desired size;
5. reuse one prebuilt index across all scouting profiles.

Run with::

    python examples/nba_scouting.py
"""

from __future__ import annotations

import numpy as np

from repro import EclipseQuery, RatioVector
from repro.core.estimator import ratio_range_for_target_size
from repro.data.nba import NBA_ATTRIBUTES, generate_nba_dataset
from repro.knn.linear import nearest_neighbor_index
from repro.skyline.api import skyline_indices


def main() -> None:
    dataset = generate_nba_dataset()
    print(dataset.describe())
    print()

    # Three attributes (PTS, REB, AST), converted to "smaller is better" and
    # normalised, exactly like the paper's default d = 3 setting.
    dimensions = 3
    data = dataset.normalized()[:, :dimensions]
    attributes = list(NBA_ATTRIBUTES[:dimensions])
    query = EclipseQuery(data)

    def show(indices, title):
        print(f"{title} ({len(indices)} players)")
        for index in list(indices)[:6]:
            raw = dataset.values[int(index), :dimensions]
            stats = ", ".join(
                f"{name}={int(value)}" for name, value in zip(attributes, raw)
            )
            print(f"  {dataset.label_of(int(index))}: {stats}")
        if len(indices) > 6:
            print(f"  ... and {len(indices) - 6} more")
        print()

    # 1. The all-around greats: the skyline.
    show(skyline_indices(data), "Skyline (all-around greats)")

    # 2. The single best player under one exact weighting.
    nn = nearest_neighbor_index(data, [1.0, 1.0, 1.0])
    show([nn], "1NN for weights <1, 1, 1>")

    # 3. Rough scouting profiles as eclipse queries.
    profiles = {
        "balanced contributors (ratios in [0.36, 2.75])": (0.36, 2.75),
        "scorers first (PTS/AST ratio in [2, 6])": (2.0, 6.0),
        "playmakers first (ratios in [0.1, 0.6])": (0.1, 0.6),
    }
    for title, (low, high) in profiles.items():
        result = query.run(ratios=RatioVector.uniform(low, high, dimensions))
        show(result.indices, f"Eclipse shortlist — {title}")

    # 4. Pick a ratio range for a target shortlist size.
    target = 8
    low, high = ratio_range_for_target_size(
        n=data.shape[0], dimensions=dimensions, target=target, trials=3
    )
    result = query.run(ratios=RatioVector.uniform(low, high, dimensions))
    print(
        f"Ratio range [{low:.2f}, {high:.2f}] chosen for a target of ~{target} "
        f"players; the query returned {len(result)}."
    )
    show(result.indices, "Target-sized shortlist")

    # 5. One index, many scouting profiles.
    index = query.build_index("quad")
    print("Prebuilt index statistics:")
    print(f"  indexed players      : {index.num_points}")
    print(f"  skyline players kept : {index.num_skyline_points}")
    for title, (low, high) in profiles.items():
        size = index.query_indices(RatioVector.uniform(low, high, dimensions)).size
        print(f"  {title:<55}: {size} players")


if __name__ == "__main__":
    main()
