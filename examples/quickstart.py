"""Quickstart: the hotel example from the paper's introduction.

Runs the 1NN, skyline, and eclipse queries of Figures 1–3 on the
four-hotel dataset and prints what each returns, then shows the three other
ways of specifying an eclipse preference (exact weights, weight interval,
categories).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import EclipseQuery, ImportanceCategory, RatioVector
from repro.knn import nearest_neighbor_index
from repro.skyline import skyline_indices

#: The running example: (distance in miles, price in $100) per hotel.
HOTELS = np.array(
    [
        [1.0, 6.0],  # p1
        [4.0, 4.0],  # p2
        [6.0, 1.0],  # p3
        [8.0, 5.0],  # p4
    ]
)
HOTEL_NAMES = ["p1", "p2", "p3", "p4"]


def names(indices) -> str:
    """Render a list of hotel indices as the paper's point names."""
    return ", ".join(HOTEL_NAMES[int(i)] for i in indices)


def main() -> None:
    print("Hotel dataset (distance, price):")
    for name, row in zip(HOTEL_NAMES, HOTELS):
        print(f"  {name}: distance={row[0]:g} miles, price=${row[1] * 100:g}")
    print()

    # --- 1NN (Figure 1): distance twice as important as price -------------
    nn = nearest_neighbor_index(HOTELS, weights=[2.0, 1.0])
    print(f"1NN with weights <2, 1>           : {HOTEL_NAMES[nn]}")

    # --- Skyline (Figure 2): no preference information ---------------------
    sky = skyline_indices(HOTELS)
    print(f"Skyline                            : {names(sky)}")

    # --- Eclipse (Figure 3): distance comparable to price ------------------
    query = EclipseQuery(HOTELS)
    result = query.run(ratios=(0.25, 2.0))
    print(f"Eclipse with ratio range [1/4, 2]  : {names(result.indices)}")
    print()

    # --- The same query, specified in the other supported ways -------------
    exact = query.run(ratios=RatioVector.from_weight_vector([2.0, 1.0]))
    print(f"Eclipse with exact weights <2, 1>  : {names(exact.indices)} "
          "(degenerates to 1NN)")

    categories = query.run(ratios=RatioVector.from_categories([ImportanceCategory.SIMILAR]))
    print(f"Eclipse with category 'similar'    : {names(categories.indices)}")

    wide = query.run(ratios=None)  # defaults to [0, +inf): the skyline
    print(f"Eclipse with range [0, +inf)       : {names(wide.indices)} "
          "(degenerates to skyline)")
    print()

    # --- All four algorithms agree ------------------------------------------
    for method in ("baseline", "transform", "quad", "cutting"):
        res = query.run(ratios=(0.25, 2.0), method=method)
        print(f"  method={method:<10} -> {names(res.indices)}")


if __name__ == "__main__":
    main()
