"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can also be installed in environments without the
``wheel`` package (legacy ``pip install -e . --no-use-pep517``), such as
fully offline machines.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Eclipse: Generalizing kNN and Skyline' (Liu et al., ICDE)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={"console_scripts": ["repro-eclipse = repro.cli:main"]},
)
