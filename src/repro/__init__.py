"""repro — a reproduction of "Eclipse: Generalizing kNN and Skyline".

The package implements the eclipse query operator of Liu et al. (ICDE),
which generalises 1NN and skyline queries by letting users specify a *range*
of attribute-weight ratios, together with every substrate the paper relies
on: skyline algorithms, kNN, the dual-space index structures (Order Vector
Index and Intersection Index backed by a line quadtree or a cutting tree),
synthetic data generators, and the experiment harness that regenerates the
paper's tables and figures.

Quickstart
----------
>>> import numpy as np
>>> from repro import EclipseQuery
>>> hotels = np.array([[1.0, 6.0], [4.0, 4.0], [6.0, 1.0], [8.0, 5.0]])
>>> result = EclipseQuery(hotels).run(ratios=(0.25, 2.0))
>>> result.indices.tolist()
[0, 1, 2]
"""

from repro.core import (
    DatasetSession,
    EclipseQuery,
    EclipseResult,
    ImportanceCategory,
    QueryPlan,
    RATIO_INFINITY,
    RatioVector,
    WeightRange,
    eclipse,
    eclipse_baseline,
    eclipse_dominates,
    eclipse_transform,
    expected_eclipse_points,
    nn_dominates,
    plan_query,
    skyline_dominates,
)
from repro.data import Dataset, generate_dataset, generate_nba_dataset
from repro.index import EclipseIndex
from repro.knn import knn, nearest_neighbor

# NOTE: the skyline *function* is exported as ``skyline_query`` so that the
# name ``repro.skyline`` keeps pointing at the subpackage
# (``import repro.skyline.api as x`` works).  The subpackage itself remains
# callable as a deprecated alias of the function (see
# ``repro/skyline/__init__.py``).
from repro.skyline import skyline_query

__version__ = "1.1.0"

__all__ = [
    "DatasetSession",
    "EclipseQuery",
    "EclipseResult",
    "EclipseIndex",
    "ImportanceCategory",
    "QueryPlan",
    "RATIO_INFINITY",
    "RatioVector",
    "WeightRange",
    "Dataset",
    "eclipse",
    "eclipse_baseline",
    "eclipse_dominates",
    "eclipse_transform",
    "expected_eclipse_points",
    "generate_dataset",
    "generate_nba_dataset",
    "knn",
    "nearest_neighbor",
    "nn_dominates",
    "plan_query",
    "skyline",
    "skyline_query",
    "skyline_dominates",
    "__version__",
]
