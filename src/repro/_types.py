"""Shared typing aliases used across the ``repro`` package.

These aliases exist purely to make signatures readable; they carry no runtime
behaviour.  Arrays are always ``numpy.ndarray`` of ``float64`` unless stated
otherwise.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

#: A single point, given either as a sequence of floats or a 1-D array.
PointLike = Union[Sequence[float], np.ndarray]

#: A dataset of points, given as a sequence of points or a 2-D array
#: of shape ``(n, d)``.
ArrayLike2D = Union[Sequence[PointLike], np.ndarray]

#: A half-open or closed numeric interval ``(low, high)``.
Interval = Tuple[float, float]

#: Indices into a dataset (row positions).
IndexArray = np.ndarray
