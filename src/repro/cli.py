"""Command-line interface: ``repro-eclipse`` / ``python -m repro.cli``.

Six subcommands cover the typical workflows:

``query``
    Run an eclipse (or skyline/1NN) query over a CSV file or a generated
    synthetic dataset and print the result points.  ``--explain`` prints the
    cost-model plan (method choice, substrates, estimated costs) before the
    results.

``batch``
    Answer many ratio-range queries off one :class:`DatasetSession`,
    sharing the skyline / corner-score / index artifacts across the batch.

``stream``
    Replay a mixed insert/delete/query workload against one long-lived
    session: query batches interleave with update batches that the dynamic
    core absorbs in place (incremental skyline maintenance, appendable
    index arenas) instead of rebuilding per update.  Prints throughput and
    the session's update counters; ``--explain`` adds the final query plan.

``serve``
    Replay a mixed query/update workload through the fault-tolerant
    concurrent service (:mod:`repro.service`): sharded worker processes,
    admission batching, snapshot/WAL recovery.  ``--inject`` turns on the
    fault-injection harness (worker kills, dropped responses, snapshot
    corruption) and every answer is verified byte-identical against a
    single-process reference session unless ``--no-verify`` is given.

``generate``
    Write a synthetic dataset (INDE/CORR/ANTI/NBA/worst-case) to a CSV file.

``experiment``
    Regenerate one of the paper's tables or figures and print the text
    rendering (the same runners the benchmark suite uses).
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.data.nba import generate_nba_dataset
from repro.data.worst_case import generate_worst_case
from repro.errors import ReproError
from repro.perf.executor import VALID_BACKENDS
from repro.experiments import figures, tables, user_study


def _load_csv(path: str) -> np.ndarray:
    """Load a numeric CSV file (optionally with a header row) as an array."""
    rows: List[List[float]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for raw in reader:
            if not raw:
                continue
            try:
                rows.append([float(cell) for cell in raw])
            except ValueError:
                # Header (or otherwise non-numeric) row: skip it.
                continue
    return np.asarray(rows, dtype=float)


def _write_csv(path: str, data: np.ndarray) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for row in np.atleast_2d(data):
            writer.writerow([f"{value:.6f}" for value in row])


def _bad_args(message: str) -> int:
    """Report one invalid-argument message and return the exit status."""
    print(message, file=sys.stderr)
    return 2


def _validate_data_args(args: argparse.Namespace) -> Optional[str]:
    """Reject non-positive sizes before any dataset is generated."""
    if not args.input:
        if args.n <= 0:
            return f"--n must be a positive number of points, got {args.n}"
        if args.dimensions < 1:
            return (
                f"--dimensions must be a positive number of attributes, "
                f"got {args.dimensions}"
            )
    return None


def _validate_workload_args(args: argparse.Namespace) -> Optional[str]:
    """Reject zero/negative step and size arguments of stream-like commands."""
    checks = (
        ("--steps", getattr(args, "steps", 1)),
        ("--batch", getattr(args, "batch", 1)),
        ("--update-size", getattr(args, "update_size", 1)),
    )
    for name, value in checks:
        if value <= 0:
            return f"{name} must be positive, got {value}"
    fraction = getattr(args, "update_fraction", 0.0)
    if not 0.0 <= fraction <= 1.0:
        return f"--update-fraction must lie in [0, 1], got {fraction}"
    return None


def _index_budget_bytes(args: argparse.Namespace) -> Optional[int]:
    """Convert ``--index-budget-mb`` to bytes (``None`` = environment/unbounded)."""
    budget_mb = getattr(args, "index_budget_mb", None)
    if budget_mb is None:
        return None
    return int(budget_mb * 1024 * 1024)


def _validate_index_budget_arg(args: argparse.Namespace) -> Optional[str]:
    budget_mb = getattr(args, "index_budget_mb", None)
    if budget_mb is not None and budget_mb <= 0:
        return f"--index-budget-mb must be positive, got {budget_mb:g}"
    return None


def _make_data(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        return _load_csv(args.input)
    name = args.dataset.upper()
    if name == "NBA":
        return generate_nba_dataset(n=args.n).normalized()[:, : args.dimensions]
    if name in ("WORST", "WORST-CASE"):
        return generate_worst_case(args.n, args.dimensions, seed=args.seed)
    return generate_dataset(name, args.n, args.dimensions, seed=args.seed)


def _cmd_query(args: argparse.Namespace) -> int:
    problem = _validate_data_args(args) or _validate_index_budget_arg(args)
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    d = data.shape[1]
    ratios = RatioVector.uniform(args.low, args.high, d)
    session = DatasetSession(
        data,
        threads=args.threads,
        dtype=args.dtype,
        backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    if args.explain:
        print(session.plan(method=args.method).explain())
    try:
        result = session.run(ratios=ratios, method=args.method)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"# eclipse query method={result.method} low={args.low} high={args.high}")
    print(f"# {len(result)} of {data.shape[0]} points returned")
    for index, point in zip(result.indices, result.points):
        rendered = ", ".join(f"{value:.4f}" for value in point)
        print(f"{int(index)}: [{rendered}]")
    if args.explain:
        _print_executor_stats(session)
    return 0


def _parse_ratio_list(text: str) -> List[Tuple[float, float]]:
    """Parse ``"0.25:2.0,0.5:1.5"`` into a list of ``(low, high)`` pairs."""
    specs: List[Tuple[float, float]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        low_text, sep, high_text = part.partition(":")
        if not sep:
            raise ValueError(f"ratio spec {part!r} is not of the form low:high")
        specs.append((float(low_text), float(high_text)))
    if not specs:
        raise ValueError("no ratio specifications given")
    return specs


def _cmd_batch(args: argparse.Namespace) -> int:
    problem = _validate_data_args(args) or _validate_index_budget_arg(args)
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    try:
        pairs = _parse_ratio_list(args.ratios)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    d = data.shape[1]
    session = DatasetSession(
        data,
        threads=args.threads,
        dtype=args.dtype,
        backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    try:
        specs = [RatioVector.uniform(low, high, d) for low, high in pairs]
        results = session.run_batch(specs, method=args.method)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.explain and session.last_plan is not None:
        # Printed after execution on purpose: run_batch re-plans once the
        # skyline has been measured, and the plan shown must be the plan
        # that actually ran.
        print(session.last_plan.explain())
    methods = sorted({result.method for result in results})
    print(
        f"# eclipse batch of {len(results)} queries over n={data.shape[0]} "
        f"points, method={'+'.join(methods)}"
    )
    for (low, high), result in zip(pairs, results):
        print(f"[{low:g}, {high:g}]: {len(result)} points {result.indices.tolist()}")
    _print_session_stats(session)
    return 0


def _print_executor_stats(session: DatasetSession) -> None:
    stats = session.stats
    print(
        f"# kernel executor: threads_used={stats.threads_used} "
        f"parallel_chunks={stats.parallel_chunks} "
        f"float32_fastpath_hits={stats.float32_fastpath_hits} "
        f"float32_exact_fallbacks={stats.float32_exact_fallbacks}"
    )
    print(
        f"# process backend: process_dispatches={stats.process_dispatches} "
        f"process_chunks={stats.process_chunks} "
        f"shm_peak_bytes={stats.shm_peak_bytes}"
    )


def _print_session_stats(session: DatasetSession) -> None:
    stats = session.stats
    print(
        f"# shared artifacts: skyline_builds={stats.skyline_builds} "
        f"corner_matrix_builds={stats.corner_matrix_builds} "
        f"index_builds={stats.index_builds}"
    )
    print(
        f"# index advisor: builds_skipped={stats.index_builds_skipped} "
        f"evictions={stats.index_evictions} "
        f"bytes_resident={stats.advisor_bytes_resident} "
        f"what_if_cost_requests={stats.cost_requests} "
        f"what_if_cache_hits={stats.cache_hits}"
    )
    _print_executor_stats(session)
    if stats.update_batches:
        print(
            f"# updates: inserts_applied={stats.inserts_applied} "
            f"deletes_applied={stats.deletes_applied} "
            f"inplace_updates={stats.skyline_inplace_updates + stats.index_inplace_updates} "
            f"rebuilds_triggered={stats.rebuilds_triggered} "
            f"artifact_invalidations={stats.artifact_invalidations}"
        )
        print(
            f"# dynamic memory: arena_grows={stats.arena_grows} "
            f"compactions={stats.compactions} "
            f"delta_patched_indexes={stats.index_delta_patches}"
        )


def _cmd_stream(args: argparse.Namespace) -> int:
    import time

    problem = (
        _validate_data_args(args)
        or _validate_workload_args(args)
        or _validate_index_budget_arg(args)
    )
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    d = data.shape[1]
    lows = data.min(axis=0)
    highs = data.max(axis=0)
    rng = np.random.default_rng(args.seed + 1)
    session = DatasetSession(
        data,
        threads=args.threads,
        dtype=args.dtype,
        backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    queries = updates = 0
    start = time.perf_counter()
    try:
        for _ in range(args.steps):
            if rng.uniform() < args.update_fraction:
                half = max(1, args.update_size // 2)
                inserts = lows + rng.uniform(size=(half, d)) * (highs - lows)
                num_deletes = min(half, max(0, session.num_points - 1))
                deletes = (
                    rng.choice(session.num_points, size=num_deletes, replace=False)
                    if num_deletes
                    else None
                )
                session.apply_updates(inserts=inserts, deletes=deletes)
                updates += 1
            else:
                specs = []
                for _ in range(args.batch):
                    low = float(rng.uniform(0.1, 1.0))
                    specs.append(
                        RatioVector.uniform(
                            low, low + float(rng.uniform(0.2, 2.5)), d
                        )
                    )
                session.run_batch(specs, method=args.method)
                queries += args.batch
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if args.explain and session.last_plan is not None:
        print(session.last_plan.explain())
    print(
        f"# stream of {args.steps} steps over n={session.num_points} points "
        f"(generation {session.generation}): {queries} queries, "
        f"{updates} update batches in {elapsed:.3f}s "
        f"({args.steps / elapsed:.1f} steps/s, {queries / elapsed:.1f} queries/s)"
    )
    _print_session_stats(session)
    return 0


_INJECT_KEYS = {
    "kill_every": int,
    "kill_mode": str,
    "drop": float,
    "delay": float,
    "corrupt": str,
    "corrupt_every": int,
    "seed": int,
}


def _parse_inject(text: str):
    """Parse ``"kill_every=3,kill_mode=after_apply,drop=0.1"`` to a FaultPlan."""
    from repro.service.faults import FaultPlan

    values = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or key not in _INJECT_KEYS:
            raise ValueError(
                f"bad --inject entry {part!r}; known keys: "
                f"{', '.join(sorted(_INJECT_KEYS))}"
            )
        values[key] = _INJECT_KEYS[key](raw.strip())
    return FaultPlan(
        kill_every=values.get("kill_every", 0),
        kill_mode=values.get("kill_mode", "kill"),
        drop_response_rate=values.get("drop", 0.0),
        response_delay=values.get("delay", 0.0),
        corrupt_snapshot=values.get("corrupt"),
        corrupt_every=values.get("corrupt_every", 1 if "corrupt" in values else 0),
        seed=values.get("seed", 0),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.faults import FaultPlan, run_fault_injection
    from repro.service.supervisor import ServiceConfig

    problem = (
        _validate_data_args(args)
        or _validate_workload_args(args)
        or _validate_index_budget_arg(args)
    )
    if problem:
        return _bad_args(problem)
    if args.shards < 1:
        return _bad_args(f"--shards must be positive, got {args.shards}")
    try:
        plan = _parse_inject(args.inject) if args.inject else FaultPlan()
    except ValueError as exc:
        return _bad_args(str(exc))
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    config = ServiceConfig(
        num_shards=args.shards,
        deadline=args.deadline,
        max_retries=args.retries,
        snapshot_every=args.snapshot_every,
        overload_threshold=args.overload_threshold,
        method=args.method,
        seed=args.seed,
        threads=args.threads,
        dtype=args.dtype,
        kernel_backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    try:
        report = run_fault_injection(
            data=data,
            steps=args.steps,
            update_fraction=args.update_fraction,
            batch=args.batch,
            update_size=args.update_size,
            plan=plan,
            config=config,
            seed=args.seed,
            verify=not args.no_verify,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    stats = report.service_stats
    print(
        f"# serve: {args.shards} shards, {report.steps} steps -> "
        f"{report.queries} queries in {stats['query_windows']} windows "
        f"({stats['coalesced_queries']} coalesced, max window "
        f"{stats['max_window']}), {report.update_batches} update batches"
    )
    print(
        f"# fault tolerance: retries={stats['retries']} "
        f"respawns={stats['worker_respawns']} "
        f"warm_restarts={stats['warm_restarts']} "
        f"cold_rebuilds={stats['cold_rebuilds']} "
        f"snapshot_failures={stats['snapshot_failures']} "
        f"wal_replayed={stats['wal_records_replayed']}"
    )
    print(
        f"# degradation: degraded_windows={stats['degraded_windows']} "
        f"overload_sheds={stats['overload_sheds']} "
        f"deadline_timeouts={stats['deadline_timeouts']} "
        f"dropped_responses={stats['dropped_responses']}"
    )
    if args.inject:
        print(
            "# injected: "
            + " ".join(f"{k}={v}" for k, v in sorted(report.injector.items()))
        )
    if args.no_verify:
        print("# verification: skipped (--no-verify)")
        return 0
    if report.ok:
        print("# verification: every answer byte-identical to the reference")
        return 0
    print(
        f"# verification FAILED: {report.mismatches} mismatching answers",
        file=sys.stderr,
    )
    for example in report.examples:
        print(f"#   {example}", file=sys.stderr)
    return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    problem = _validate_data_args(args)
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    _write_csv(args.output, data)
    print(f"wrote {data.shape[0]} x {data.shape[1]} points to {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name in ("table5", "user-study"):
        print(user_study.run_user_study().to_text())
    elif name == "table6":
        print(tables.run_count_vs_n(trials=args.trials).to_text())
    elif name == "table7":
        print(tables.run_count_vs_d(trials=args.trials).to_text())
    elif name == "table8":
        print(tables.run_count_vs_ratio(trials=args.trials).to_text())
    elif name in ("fig10", "figure10"):
        for dataset in figures.DATASET_NAMES:
            print(figures.run_impact_of_n(dataset=dataset).to_text())
            print()
    elif name in ("fig11", "figure11"):
        for dataset in figures.DATASET_NAMES:
            print(figures.run_impact_of_d(dataset=dataset).to_text())
            print()
    elif name in ("fig12", "figure12"):
        for dataset in figures.DATASET_NAMES:
            print(figures.run_impact_of_ratio(dataset=dataset).to_text())
            print()
    elif name in ("fig13", "figure13"):
        print(figures.run_worst_case_n().to_text())
    elif name in ("fig14", "figure14"):
        print(figures.run_worst_case_d().to_text())
    else:
        print(f"unknown experiment {args.name!r}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-eclipse",
        description="Eclipse query operator — reproduction of Liu et al. (ICDE)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_data_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--input", help="CSV file with one point per row")
        sub.add_argument(
            "--dataset",
            default="INDE",
            help="synthetic dataset when no --input is given "
            "(INDE, CORR, ANTI, NBA, WORST)",
        )
        sub.add_argument("--n", type=int, default=1024, help="number of points")
        sub.add_argument(
            "--dimensions", "-d", type=int, default=3, help="number of attributes"
        )
        sub.add_argument("--seed", type=int, default=0, help="random seed")

    def add_kernel_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--threads",
            type=int,
            default=None,
            help="kernel-executor worker threads (default: "
            "REPRO_KERNEL_THREADS or 1 = the exact serial path)",
        )
        sub.add_argument(
            "--dtype",
            choices=("float64", "float32"),
            default=None,
            help="kernel compute dtype; float32 screens in single precision "
            "and re-verifies near-ties exactly (answers are byte-identical)",
        )
        sub.add_argument(
            "--kernel-backend",
            choices=VALID_BACKENDS,
            default=None,
            help="where kernel chunks run: thread (shared thread pool), "
            "process (shared-memory process pool — true multi-core past "
            "the GIL), or serial (force inline; default: "
            "REPRO_KERNEL_BACKEND or thread; answers are byte-identical "
            "on every backend)",
        )
        sub.add_argument(
            "--index-budget-mb",
            type=float,
            default=None,
            help="resident byte budget of the session index cache in MiB; "
            "the advisor builds/keeps/evicts indexes under it (default: "
            "REPRO_INDEX_BUDGET_MB or unbounded; answers are byte-identical "
            "either way)",
        )

    query = subparsers.add_parser("query", help="run an eclipse query")
    add_data_arguments(query)
    add_kernel_arguments(query)
    query.add_argument("--low", type=float, default=0.36, help="lower ratio bound")
    query.add_argument("--high", type=float, default=2.75, help="upper ratio bound")
    query.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the cost-model query plan before the results",
    )
    query.set_defaults(func=_cmd_query)

    batch = subparsers.add_parser(
        "batch", help="run many ratio-range queries off one dataset session"
    )
    add_data_arguments(batch)
    add_kernel_arguments(batch)
    batch.add_argument(
        "--ratios",
        required=True,
        help="comma-separated low:high pairs, e.g. '0.25:2.0,0.5:1.5'",
    )
    batch.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    batch.add_argument(
        "--explain",
        action="store_true",
        help="print the cost-model batch plan before the results",
    )
    batch.set_defaults(func=_cmd_batch)

    stream = subparsers.add_parser(
        "stream",
        help="replay a mixed insert/delete/query workload on one session",
    )
    add_data_arguments(stream)
    add_kernel_arguments(stream)
    stream.add_argument(
        "--steps", type=int, default=100, help="number of workload steps"
    )
    stream.add_argument(
        "--update-fraction",
        type=float,
        default=0.1,
        help="probability that a step is an update batch instead of queries",
    )
    stream.add_argument(
        "--batch", type=int, default=8, help="ratio-range queries per query step"
    )
    stream.add_argument(
        "--update-size",
        type=int,
        default=8,
        help="points touched per update batch (half inserts, half deletes)",
    )
    stream.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    stream.add_argument(
        "--explain",
        action="store_true",
        help="print the final cost-model plan after the stream",
    )
    stream.set_defaults(func=_cmd_stream)

    serve = subparsers.add_parser(
        "serve",
        help="replay a workload through the fault-tolerant concurrent service",
    )
    add_data_arguments(serve)
    add_kernel_arguments(serve)
    serve.add_argument(
        "--shards", type=int, default=2, help="number of worker processes"
    )
    serve.add_argument(
        "--steps", type=int, default=40, help="number of workload steps"
    )
    serve.add_argument(
        "--update-fraction",
        type=float,
        default=0.3,
        help="probability that a step is an update batch instead of queries",
    )
    serve.add_argument(
        "--batch", type=int, default=4, help="ratio-range queries per query step"
    )
    serve.add_argument(
        "--update-size",
        type=int,
        default=16,
        help="points touched per update batch (half inserts, half deletes)",
    )
    serve.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="per-request deadline in seconds",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="bounded retries per request (exponential backoff with jitter)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="worker auto-snapshot interval in applied update batches (0 = off)",
    )
    serve.add_argument(
        "--overload-threshold",
        type=int,
        default=0,
        help="query-window size beyond which the service degrades to the "
        "transform path (0 = never)",
    )
    serve.add_argument(
        "--inject",
        help="fault-injection spec, comma-separated key=value: "
        "kill_every, kill_mode (kill|before_wal|after_wal|after_apply), "
        "drop, delay, corrupt (truncate|bitflip), corrupt_every, seed",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the byte-identical comparison against a single-process "
        "reference session",
    )
    serve.set_defaults(func=_cmd_serve)

    generate = subparsers.add_parser("generate", help="write a synthetic dataset")
    add_data_arguments(generate)
    generate.add_argument("--output", required=True, help="output CSV path")
    generate.set_defaults(func=_cmd_generate)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument(
        "name",
        help="table5..table8, fig10..fig14",
    )
    experiment.add_argument(
        "--trials", type=int, default=5, help="Monte-Carlo trials for the tables"
    )
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
