"""Command-line interface: ``repro-eclipse`` / ``python -m repro.cli``.

Six subcommands cover the typical workflows:

``query``
    Run an eclipse (or skyline/1NN) query over a CSV file or a generated
    synthetic dataset and print the result points.  ``--explain`` prints the
    cost-model plan (method choice, substrates, estimated costs) before the
    results.

``batch``
    Answer many ratio-range queries off one :class:`DatasetSession`,
    sharing the skyline / corner-score / index artifacts across the batch.

``stream``
    Replay a mixed insert/delete/query workload against one long-lived
    session: query batches interleave with update batches that the dynamic
    core absorbs in place (incremental skyline maintenance, appendable
    index arenas) instead of rebuilding per update.  Prints throughput and
    the session's update counters; ``--explain`` adds the final query plan.

``serve``
    Replay a mixed query/update workload through the fault-tolerant
    concurrent service (:mod:`repro.service`): sharded worker processes,
    admission batching, snapshot/WAL recovery.  ``--inject`` turns on the
    fault-injection harness (worker kills, dropped responses, snapshot
    corruption) and every answer is verified byte-identical against a
    single-process reference session unless ``--no-verify`` is given.
    With ``--listen``/``--port`` the command instead serves the framed TCP
    protocol of :mod:`repro.service.netserver` until SIGTERM/SIGINT, then
    drains gracefully (finish in-flight requests, snapshot, exit 0).  The
    default bind address comes from ``REPRO_SERVICE_LISTEN``.

``client``
    Talk to a running TCP server: one-shot queries, admin probes
    (``--ping``/``--health``/``--stats``), or a seeded verified workload
    (``--workload``).  ``--spawn-server`` brings up a server subprocess
    first; ``--chaos`` routes the traffic through the deterministic
    chaos proxy and ``--kill-server-every`` SIGKILLs + recovers the
    spawned server on a schedule — answers must stay byte-identical.

``generate``
    Write a synthetic dataset (INDE/CORR/ANTI/NBA/worst-case) to a CSV file.

``experiment``
    Regenerate one of the paper's tables or figures and print the text
    rendering (the same runners the benchmark suite uses).
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.data.nba import generate_nba_dataset
from repro.data.worst_case import generate_worst_case
from repro.errors import ReproError
from repro.perf.executor import VALID_BACKENDS
from repro.experiments import figures, tables, user_study


def _load_csv(path: str) -> np.ndarray:
    """Load a numeric CSV file (optionally with a header row) as an array."""
    rows: List[List[float]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for raw in reader:
            if not raw:
                continue
            try:
                rows.append([float(cell) for cell in raw])
            except ValueError:
                # Header (or otherwise non-numeric) row: skip it.
                continue
    return np.asarray(rows, dtype=float)


def _write_csv(path: str, data: np.ndarray) -> None:
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for row in np.atleast_2d(data):
            writer.writerow([f"{value:.6f}" for value in row])


def _bad_args(message: str) -> int:
    """Report one invalid-argument message and return the exit status."""
    print(message, file=sys.stderr)
    return 2


def _validate_data_args(args: argparse.Namespace) -> Optional[str]:
    """Reject non-positive sizes before any dataset is generated."""
    if not args.input:
        if args.n <= 0:
            return f"--n must be a positive number of points, got {args.n}"
        if args.dimensions < 1:
            return (
                f"--dimensions must be a positive number of attributes, "
                f"got {args.dimensions}"
            )
    return None


def _validate_workload_args(args: argparse.Namespace) -> Optional[str]:
    """Reject zero/negative step and size arguments of stream-like commands."""
    checks = (
        ("--steps", getattr(args, "steps", 1)),
        ("--batch", getattr(args, "batch", 1)),
        ("--update-size", getattr(args, "update_size", 1)),
    )
    for name, value in checks:
        if value <= 0:
            return f"{name} must be positive, got {value}"
    fraction = getattr(args, "update_fraction", 0.0)
    if not 0.0 <= fraction <= 1.0:
        return f"--update-fraction must lie in [0, 1], got {fraction}"
    return None


def _index_budget_bytes(args: argparse.Namespace) -> Optional[int]:
    """Convert ``--index-budget-mb`` to bytes (``None`` = environment/unbounded)."""
    budget_mb = getattr(args, "index_budget_mb", None)
    if budget_mb is None:
        return None
    return int(budget_mb * 1024 * 1024)


def _validate_index_budget_arg(args: argparse.Namespace) -> Optional[str]:
    budget_mb = getattr(args, "index_budget_mb", None)
    if budget_mb is not None and budget_mb <= 0:
        return f"--index-budget-mb must be positive, got {budget_mb:g}"
    return None


def _make_data(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        return _load_csv(args.input)
    name = args.dataset.upper()
    if name == "NBA":
        return generate_nba_dataset(n=args.n).normalized()[:, : args.dimensions]
    if name in ("WORST", "WORST-CASE"):
        return generate_worst_case(args.n, args.dimensions, seed=args.seed)
    return generate_dataset(name, args.n, args.dimensions, seed=args.seed)


def _cmd_query(args: argparse.Namespace) -> int:
    problem = _validate_data_args(args) or _validate_index_budget_arg(args)
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    d = data.shape[1]
    ratios = RatioVector.uniform(args.low, args.high, d)
    session = DatasetSession(
        data,
        threads=args.threads,
        dtype=args.dtype,
        backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    if args.explain:
        print(session.plan(method=args.method).explain())
    try:
        result = session.run(ratios=ratios, method=args.method)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"# eclipse query method={result.method} low={args.low} high={args.high}")
    print(f"# {len(result)} of {data.shape[0]} points returned")
    for index, point in zip(result.indices, result.points):
        rendered = ", ".join(f"{value:.4f}" for value in point)
        print(f"{int(index)}: [{rendered}]")
    if args.explain:
        _print_executor_stats(session)
    return 0


def _parse_ratio_list(text: str) -> List[Tuple[float, float]]:
    """Parse ``"0.25:2.0,0.5:1.5"`` into a list of ``(low, high)`` pairs."""
    specs: List[Tuple[float, float]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        low_text, sep, high_text = part.partition(":")
        if not sep:
            raise ValueError(f"ratio spec {part!r} is not of the form low:high")
        specs.append((float(low_text), float(high_text)))
    if not specs:
        raise ValueError("no ratio specifications given")
    return specs


def _cmd_batch(args: argparse.Namespace) -> int:
    problem = _validate_data_args(args) or _validate_index_budget_arg(args)
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    try:
        pairs = _parse_ratio_list(args.ratios)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    d = data.shape[1]
    session = DatasetSession(
        data,
        threads=args.threads,
        dtype=args.dtype,
        backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    try:
        specs = [RatioVector.uniform(low, high, d) for low, high in pairs]
        results = session.run_batch(specs, method=args.method)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.explain and session.last_plan is not None:
        # Printed after execution on purpose: run_batch re-plans once the
        # skyline has been measured, and the plan shown must be the plan
        # that actually ran.
        print(session.last_plan.explain())
    methods = sorted({result.method for result in results})
    print(
        f"# eclipse batch of {len(results)} queries over n={data.shape[0]} "
        f"points, method={'+'.join(methods)}"
    )
    for (low, high), result in zip(pairs, results):
        print(f"[{low:g}, {high:g}]: {len(result)} points {result.indices.tolist()}")
    _print_session_stats(session)
    return 0


def _print_executor_stats(session: DatasetSession) -> None:
    stats = session.stats
    print(
        f"# kernel executor: threads_used={stats.threads_used} "
        f"parallel_chunks={stats.parallel_chunks} "
        f"float32_fastpath_hits={stats.float32_fastpath_hits} "
        f"float32_exact_fallbacks={stats.float32_exact_fallbacks}"
    )
    print(
        f"# process backend: process_dispatches={stats.process_dispatches} "
        f"process_chunks={stats.process_chunks} "
        f"shm_peak_bytes={stats.shm_peak_bytes}"
    )


def _print_session_stats(session: DatasetSession) -> None:
    stats = session.stats
    print(
        f"# shared artifacts: skyline_builds={stats.skyline_builds} "
        f"corner_matrix_builds={stats.corner_matrix_builds} "
        f"index_builds={stats.index_builds}"
    )
    print(
        f"# index advisor: builds_skipped={stats.index_builds_skipped} "
        f"evictions={stats.index_evictions} "
        f"bytes_resident={stats.advisor_bytes_resident} "
        f"what_if_cost_requests={stats.cost_requests} "
        f"what_if_cache_hits={stats.cache_hits}"
    )
    _print_executor_stats(session)
    if stats.update_batches:
        print(
            f"# updates: inserts_applied={stats.inserts_applied} "
            f"deletes_applied={stats.deletes_applied} "
            f"inplace_updates={stats.skyline_inplace_updates + stats.index_inplace_updates} "
            f"rebuilds_triggered={stats.rebuilds_triggered} "
            f"artifact_invalidations={stats.artifact_invalidations}"
        )
        print(
            f"# dynamic memory: arena_grows={stats.arena_grows} "
            f"compactions={stats.compactions} "
            f"delta_patched_indexes={stats.index_delta_patches}"
        )


def _cmd_stream(args: argparse.Namespace) -> int:
    import time

    problem = (
        _validate_data_args(args)
        or _validate_workload_args(args)
        or _validate_index_budget_arg(args)
    )
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    d = data.shape[1]
    lows = data.min(axis=0)
    highs = data.max(axis=0)
    rng = np.random.default_rng(args.seed + 1)
    session = DatasetSession(
        data,
        threads=args.threads,
        dtype=args.dtype,
        backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )
    queries = updates = 0
    start = time.perf_counter()
    try:
        for _ in range(args.steps):
            if rng.uniform() < args.update_fraction:
                half = max(1, args.update_size // 2)
                inserts = lows + rng.uniform(size=(half, d)) * (highs - lows)
                num_deletes = min(half, max(0, session.num_points - 1))
                deletes = (
                    rng.choice(session.num_points, size=num_deletes, replace=False)
                    if num_deletes
                    else None
                )
                session.apply_updates(inserts=inserts, deletes=deletes)
                updates += 1
            else:
                specs = []
                for _ in range(args.batch):
                    low = float(rng.uniform(0.1, 1.0))
                    specs.append(
                        RatioVector.uniform(
                            low, low + float(rng.uniform(0.2, 2.5)), d
                        )
                    )
                session.run_batch(specs, method=args.method)
                queries += args.batch
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    if args.explain and session.last_plan is not None:
        print(session.last_plan.explain())
    print(
        f"# stream of {args.steps} steps over n={session.num_points} points "
        f"(generation {session.generation}): {queries} queries, "
        f"{updates} update batches in {elapsed:.3f}s "
        f"({args.steps / elapsed:.1f} steps/s, {queries / elapsed:.1f} queries/s)"
    )
    _print_session_stats(session)
    return 0


_INJECT_KEYS = {
    "kill_every": int,
    "kill_mode": str,
    "drop": float,
    "delay": float,
    "corrupt": str,
    "corrupt_every": int,
    "seed": int,
}


def _parse_inject(text: str):
    """Parse ``"kill_every=3,kill_mode=after_apply,drop=0.1"`` to a FaultPlan."""
    from repro.service.faults import FaultPlan

    values = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or key not in _INJECT_KEYS:
            raise ValueError(
                f"bad --inject entry {part!r}; known keys: "
                f"{', '.join(sorted(_INJECT_KEYS))}"
            )
        values[key] = _INJECT_KEYS[key](raw.strip())
    return FaultPlan(
        kill_every=values.get("kill_every", 0),
        kill_mode=values.get("kill_mode", "kill"),
        drop_response_rate=values.get("drop", 0.0),
        response_delay=values.get("delay", 0.0),
        corrupt_snapshot=values.get("corrupt"),
        corrupt_every=values.get("corrupt_every", 1 if "corrupt" in values else 0),
        seed=values.get("seed", 0),
    )


def _service_config(args: argparse.Namespace):
    from repro.service.supervisor import ServiceConfig

    return ServiceConfig(
        num_shards=args.shards,
        deadline=args.deadline,
        max_retries=args.retries,
        snapshot_every=args.snapshot_every,
        overload_threshold=args.overload_threshold,
        method=args.method,
        seed=args.seed,
        threads=args.threads,
        dtype=args.dtype,
        kernel_backend=args.kernel_backend,
        index_budget_bytes=_index_budget_bytes(args),
    )


def _cmd_serve_network(args: argparse.Namespace) -> int:
    """Serve the framed TCP protocol until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal

    from repro.service.faults import FaultInjector
    from repro.service.netserver import (
        EclipseNetServer,
        NetServerConfig,
        resolve_listen,
    )
    from repro.service.supervisor import EclipseService

    problem = _validate_data_args(args) or _validate_index_budget_arg(args)
    if problem:
        return _bad_args(problem)
    if args.shards < 1:
        return _bad_args(f"--shards must be positive, got {args.shards}")
    if args.max_connections < 1:
        return _bad_args(
            f"--max-connections must be positive, got {args.max_connections}"
        )
    if args.recover and not args.snapshot_dir:
        return _bad_args(
            "--recover replays write-ahead logs from a previous run; it "
            "needs the same --snapshot-dir that run used"
        )
    try:
        plan = _parse_inject(args.inject) if args.inject else None
    except ValueError as exc:
        return _bad_args(str(exc))
    host, port = resolve_listen(args.listen or None, args.port)
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
    try:
        service = EclipseService(
            data,
            config=_service_config(args),
            snapshot_dir=args.snapshot_dir,
            injector=injector,
            recover=args.recover,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    server = EclipseNetServer(
        service,
        NetServerConfig(
            host=host,
            port=port,
            max_connections=args.max_connections,
            drain_timeout=args.drain_timeout,
        ),
    )

    async def _run() -> int:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await server.start()
        except OSError as exc:
            print(
                f"cannot listen on {host}:{port}: {exc}", file=sys.stderr
            )
            return 2
        print(
            f"# serving {args.shards} shards of n={data.shape[0]} on "
            f"{server.host}:{server.port} (pid {__import__('os').getpid()}); "
            f"SIGTERM drains",
            flush=True,
        )
        await stop.wait()
        print("# draining: finishing in-flight requests ...", flush=True)
        await server.drain()
        return 0

    try:
        code = asyncio.run(_run())
    finally:
        service.close()
    if code == 0:
        stats = server.stats
        print(
            f"# drained cleanly: {stats.requests_served} requests "
            f"({stats.queries_served} queries, {stats.updates_served} "
            f"update batches) over {stats.connections_accepted} connections, "
            f"{stats.connections_shed} shed, {stats.frames_rejected} bad "
            f"frames rejected"
        )
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.faults import FaultPlan, run_fault_injection

    if args.listen is not None or args.port is not None or args.recover:
        return _cmd_serve_network(args)
    problem = (
        _validate_data_args(args)
        or _validate_workload_args(args)
        or _validate_index_budget_arg(args)
    )
    if problem:
        return _bad_args(problem)
    if args.shards < 1:
        return _bad_args(f"--shards must be positive, got {args.shards}")
    try:
        plan = _parse_inject(args.inject) if args.inject else FaultPlan()
    except ValueError as exc:
        return _bad_args(str(exc))
    data = _make_data(args)
    if data.size == 0:
        print("the dataset is empty", file=sys.stderr)
        return 1
    config = _service_config(args)
    try:
        report = run_fault_injection(
            data=data,
            steps=args.steps,
            update_fraction=args.update_fraction,
            batch=args.batch,
            update_size=args.update_size,
            plan=plan,
            config=config,
            seed=args.seed,
            verify=not args.no_verify,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    stats = report.service_stats
    print(
        f"# serve: {args.shards} shards, {report.steps} steps -> "
        f"{report.queries} queries in {stats['query_windows']} windows "
        f"({stats['coalesced_queries']} coalesced, max window "
        f"{stats['max_window']}), {report.update_batches} update batches"
    )
    print(
        f"# fault tolerance: retries={stats['retries']} "
        f"respawns={stats['worker_respawns']} "
        f"warm_restarts={stats['warm_restarts']} "
        f"cold_rebuilds={stats['cold_rebuilds']} "
        f"snapshot_failures={stats['snapshot_failures']} "
        f"wal_replayed={stats['wal_records_replayed']}"
    )
    print(
        f"# degradation: degraded_windows={stats['degraded_windows']} "
        f"overload_sheds={stats['overload_sheds']} "
        f"deadline_timeouts={stats['deadline_timeouts']} "
        f"dropped_responses={stats['dropped_responses']}"
    )
    if args.inject:
        print(
            "# injected: "
            + " ".join(f"{k}={v}" for k, v in sorted(report.injector.items()))
        )
    if args.no_verify:
        print("# verification: skipped (--no-verify)")
        return 0
    if report.ok:
        print("# verification: every answer byte-identical to the reference")
        return 0
    print(
        f"# verification FAILED: {report.mismatches} mismatching answers",
        file=sys.stderr,
    )
    for example in report.examples:
        print(f"#   {example}", file=sys.stderr)
    return 1


def _print_net_report(args: argparse.Namespace, report) -> int:
    print(
        f"# client workload: {report.steps} steps -> {report.queries} "
        f"queries, {report.update_batches} update batches, "
        f"{report.server_restarts} server SIGKILL+recover cycles"
    )
    cs = report.client_stats
    print(
        f"# client: requests={cs['requests']} resends={cs['resends']} "
        f"reconnects={cs['reconnects']} timeouts={cs['timeouts']} "
        f"frame_errors={cs['frame_errors']} busy={cs['busy_rejections']}"
    )
    if report.proxy_stats:
        print(
            "# chaos proxy: "
            + " ".join(
                f"{k}={v}" for k, v in sorted(report.proxy_stats.items())
            )
        )
    if report.drain_clean is not None:
        print(
            "# drain: clean (exit 0)"
            if report.drain_clean
            else "# drain: FAILED (non-zero server exit)"
        )
    if args.no_verify:
        print("# verification: skipped (--no-verify)")
        return 0 if report.drain_clean is not False else 1
    if report.mismatches == 0:
        print("# verification: every answer byte-identical to the reference")
    else:
        print(
            f"# verification FAILED: {report.mismatches} mismatching answers",
            file=sys.stderr,
        )
        for example in report.examples:
            print(f"#   {example}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service.netclient import ClientConfig, EclipseClient
    from repro.service.netfaults import (
        parse_net_plan,
        run_net_fault_injection,
    )
    from repro.service.netserver import resolve_listen

    host, port = resolve_listen(args.host, args.port)
    if args.kill_server_every and not args.spawn_server:
        return _bad_args(
            "--kill-server-every SIGKILLs the spawned server; it needs "
            "--spawn-server"
        )
    harness = bool(
        args.workload
        or args.spawn_server
        or args.chaos
        or args.kill_server_every
    )
    if harness:
        problem = (
            _validate_data_args(args)
            or _validate_workload_args(args)
            or _validate_index_budget_arg(args)
        )
        if problem:
            return _bad_args(problem)
        if args.shards < 1:
            return _bad_args(f"--shards must be positive, got {args.shards}")
        try:
            net_plan = parse_net_plan(args.chaos) if args.chaos else None
            plan = _parse_inject(args.inject) if args.inject else None
        except ValueError as exc:
            return _bad_args(str(exc))
        snapshot_dir = args.snapshot_dir
        cleanup_dir = None
        if args.spawn_server and snapshot_dir is None:
            import tempfile

            snapshot_dir = cleanup_dir = tempfile.mkdtemp(
                prefix="repro-net-harness-"
            )
        try:
            report = run_net_fault_injection(
                dataset=args.dataset,
                n=args.n,
                dimensions=args.dimensions,
                steps=args.steps,
                update_fraction=args.update_fraction,
                batch=args.batch,
                update_size=args.update_size,
                net_plan=net_plan,
                plan=plan,
                config=_service_config(args),
                kill_server_every=args.kill_server_every,
                seed=args.seed,
                verify=not args.no_verify,
                server="subprocess" if args.spawn_server else "external",
                host=host,
                port=port,
                snapshot_dir=snapshot_dir,
            )
        except ReproError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        finally:
            if cleanup_dir is not None:
                import shutil

                shutil.rmtree(cleanup_dir, ignore_errors=True)
        return _print_net_report(args, report)

    config = ClientConfig(
        response_timeout=args.timeout,
        max_retries=args.retries,
        seed=args.seed,
    )
    try:
        with EclipseClient(host, port, config) as client:
            if args.ping:
                for info in client.ping():
                    print(info)
                return 0
            if args.health:
                print(client.health())
                return 0
            if args.stats:
                print(client.server_stats())
                return 0
            ratios = RatioVector.uniform(
                args.low, args.high, args.dimensions
            )
            result = client.query(ratios, deadline=args.deadline)
            print(
                f"# eclipse query method={result.method} low={args.low} "
                f"high={args.high} seq={result.seq} via {host}:{port}"
            )
            print(f"# {len(result.gids)} points returned")
            for gid, point in zip(result.gids, result.points):
                rendered = ", ".join(f"{value:.4f}" for value in point)
                print(f"{int(gid)}: [{rendered}]")
            return 0
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def _cmd_generate(args: argparse.Namespace) -> int:
    problem = _validate_data_args(args)
    if problem:
        return _bad_args(problem)
    data = _make_data(args)
    _write_csv(args.output, data)
    print(f"wrote {data.shape[0]} x {data.shape[1]} points to {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name.lower()
    if name in ("table5", "user-study"):
        print(user_study.run_user_study().to_text())
    elif name == "table6":
        print(tables.run_count_vs_n(trials=args.trials).to_text())
    elif name == "table7":
        print(tables.run_count_vs_d(trials=args.trials).to_text())
    elif name == "table8":
        print(tables.run_count_vs_ratio(trials=args.trials).to_text())
    elif name in ("fig10", "figure10"):
        for dataset in figures.DATASET_NAMES:
            print(figures.run_impact_of_n(dataset=dataset).to_text())
            print()
    elif name in ("fig11", "figure11"):
        for dataset in figures.DATASET_NAMES:
            print(figures.run_impact_of_d(dataset=dataset).to_text())
            print()
    elif name in ("fig12", "figure12"):
        for dataset in figures.DATASET_NAMES:
            print(figures.run_impact_of_ratio(dataset=dataset).to_text())
            print()
    elif name in ("fig13", "figure13"):
        print(figures.run_worst_case_n().to_text())
    elif name in ("fig14", "figure14"):
        print(figures.run_worst_case_d().to_text())
    else:
        print(f"unknown experiment {args.name!r}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-eclipse",
        description="Eclipse query operator — reproduction of Liu et al. (ICDE)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_data_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--input", help="CSV file with one point per row")
        sub.add_argument(
            "--dataset",
            default="INDE",
            help="synthetic dataset when no --input is given "
            "(INDE, CORR, ANTI, NBA, WORST)",
        )
        sub.add_argument("--n", type=int, default=1024, help="number of points")
        sub.add_argument(
            "--dimensions", "-d", type=int, default=3, help="number of attributes"
        )
        sub.add_argument("--seed", type=int, default=0, help="random seed")

    def add_kernel_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--threads",
            type=int,
            default=None,
            help="kernel-executor worker threads (default: "
            "REPRO_KERNEL_THREADS or 1 = the exact serial path)",
        )
        sub.add_argument(
            "--dtype",
            choices=("float64", "float32"),
            default=None,
            help="kernel compute dtype; float32 screens in single precision "
            "and re-verifies near-ties exactly (answers are byte-identical)",
        )
        sub.add_argument(
            "--kernel-backend",
            choices=VALID_BACKENDS,
            default=None,
            help="where kernel chunks run: thread (shared thread pool), "
            "process (shared-memory process pool — true multi-core past "
            "the GIL), or serial (force inline; default: "
            "REPRO_KERNEL_BACKEND or thread; answers are byte-identical "
            "on every backend)",
        )
        sub.add_argument(
            "--index-budget-mb",
            type=float,
            default=None,
            help="resident byte budget of the session index cache in MiB; "
            "the advisor builds/keeps/evicts indexes under it (default: "
            "REPRO_INDEX_BUDGET_MB or unbounded; answers are byte-identical "
            "either way)",
        )

    query = subparsers.add_parser("query", help="run an eclipse query")
    add_data_arguments(query)
    add_kernel_arguments(query)
    query.add_argument("--low", type=float, default=0.36, help="lower ratio bound")
    query.add_argument("--high", type=float, default=2.75, help="upper ratio bound")
    query.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the cost-model query plan before the results",
    )
    query.set_defaults(func=_cmd_query)

    batch = subparsers.add_parser(
        "batch", help="run many ratio-range queries off one dataset session"
    )
    add_data_arguments(batch)
    add_kernel_arguments(batch)
    batch.add_argument(
        "--ratios",
        required=True,
        help="comma-separated low:high pairs, e.g. '0.25:2.0,0.5:1.5'",
    )
    batch.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    batch.add_argument(
        "--explain",
        action="store_true",
        help="print the cost-model batch plan before the results",
    )
    batch.set_defaults(func=_cmd_batch)

    stream = subparsers.add_parser(
        "stream",
        help="replay a mixed insert/delete/query workload on one session",
    )
    add_data_arguments(stream)
    add_kernel_arguments(stream)
    stream.add_argument(
        "--steps", type=int, default=100, help="number of workload steps"
    )
    stream.add_argument(
        "--update-fraction",
        type=float,
        default=0.1,
        help="probability that a step is an update batch instead of queries",
    )
    stream.add_argument(
        "--batch", type=int, default=8, help="ratio-range queries per query step"
    )
    stream.add_argument(
        "--update-size",
        type=int,
        default=8,
        help="points touched per update batch (half inserts, half deletes)",
    )
    stream.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    stream.add_argument(
        "--explain",
        action="store_true",
        help="print the final cost-model plan after the stream",
    )
    stream.set_defaults(func=_cmd_stream)

    serve = subparsers.add_parser(
        "serve",
        help="replay a workload through the fault-tolerant concurrent service",
    )
    add_data_arguments(serve)
    add_kernel_arguments(serve)
    serve.add_argument(
        "--shards", type=int, default=2, help="number of worker processes"
    )
    serve.add_argument(
        "--steps", type=int, default=40, help="number of workload steps"
    )
    serve.add_argument(
        "--update-fraction",
        type=float,
        default=0.3,
        help="probability that a step is an update batch instead of queries",
    )
    serve.add_argument(
        "--batch", type=int, default=4, help="ratio-range queries per query step"
    )
    serve.add_argument(
        "--update-size",
        type=int,
        default=16,
        help="points touched per update batch (half inserts, half deletes)",
    )
    serve.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="per-request deadline in seconds",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=3,
        help="bounded retries per request (exponential backoff with jitter)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="worker auto-snapshot interval in applied update batches (0 = off)",
    )
    serve.add_argument(
        "--overload-threshold",
        type=int,
        default=0,
        help="query-window size beyond which the service degrades to the "
        "transform path (0 = never)",
    )
    serve.add_argument(
        "--inject",
        help="fault-injection spec, comma-separated key=value: "
        "kill_every, kill_mode (kill|before_wal|after_wal|after_apply), "
        "drop, delay, corrupt (truncate|bitflip), corrupt_every, seed",
    )
    serve.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the byte-identical comparison against a single-process "
        "reference session",
    )
    serve.add_argument(
        "--listen",
        nargs="?",
        const="",
        default=None,
        metavar="HOST",
        help="serve the framed TCP protocol on this address instead of "
        "replaying a local workload (bare --listen resolves "
        "REPRO_SERVICE_LISTEN, then 127.0.0.1)",
    )
    serve.add_argument(
        "--bind-port",
        "--port",
        dest="port",
        type=int,
        default=None,
        help="TCP port to serve on (0 = ephemeral; default: "
        "REPRO_SERVICE_LISTEN, then 7431)",
    )
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="durable directory for per-shard snapshots and write-ahead "
        "logs (network mode; required for --recover)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="recover a previous network server's state from "
        "--snapshot-dir before serving (WAL replay + lagging-shard "
        "repair + acknowledgement-cache rebuild)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        help="served-connection cap; further connections are shed with a "
        "BUSY frame at accept time (network mode)",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="seconds the graceful drain waits for in-flight requests "
        "(network mode)",
    )
    serve.set_defaults(func=_cmd_serve)

    client = subparsers.add_parser(
        "client",
        help="talk to a running TCP server (queries, probes, or a "
        "verified chaos workload)",
    )
    add_data_arguments(client)
    add_kernel_arguments(client)
    client.add_argument(
        "--host",
        default=None,
        help="server host (default: REPRO_SERVICE_LISTEN, then 127.0.0.1)",
    )
    client.add_argument(
        "--port",
        type=int,
        default=None,
        help="server port (default: REPRO_SERVICE_LISTEN, then 7431)",
    )
    client.add_argument(
        "--low", type=float, default=0.36, help="lower ratio bound"
    )
    client.add_argument(
        "--high", type=float, default=2.75, help="upper ratio bound"
    )
    client.add_argument(
        "--method",
        default="auto",
        help="algorithm: auto, baseline, transform, quad, cutting",
    )
    client.add_argument(
        "--ping", action="store_true", help="print per-shard heartbeats"
    )
    client.add_argument(
        "--health", action="store_true", help="print server liveness"
    )
    client.add_argument(
        "--stats", action="store_true", help="print service+server counters"
    )
    client.add_argument(
        "--workload",
        action="store_true",
        help="replay a seeded mixed workload against the server and verify "
        "every answer byte-identical to a local reference",
    )
    client.add_argument(
        "--steps", type=int, default=20, help="workload steps"
    )
    client.add_argument(
        "--update-fraction",
        type=float,
        default=0.3,
        help="probability that a workload step is an update batch",
    )
    client.add_argument(
        "--batch", type=int, default=4, help="queries per query step"
    )
    client.add_argument(
        "--update-size",
        type=int,
        default=16,
        help="points touched per update batch (half inserts, half deletes)",
    )
    client.add_argument(
        "--spawn-server",
        action="store_true",
        help="spawn a `serve --listen` subprocess to run the workload "
        "against (drained with SIGTERM at the end; exit code checked)",
    )
    client.add_argument(
        "--chaos",
        metavar="SPEC",
        help="route traffic through the chaos proxy; comma-separated "
        "key=value of delay, delay_every, drop_every, duplicate_every, "
        "bitflip_every, truncate_every, kill_conn_every, direction, seed",
    )
    client.add_argument(
        "--kill-server-every",
        type=int,
        default=0,
        metavar="K",
        help="SIGKILL the spawned server mid-request on every K-th "
        "workload step, then restart it with --recover (0 = never)",
    )
    client.add_argument(
        "--inject",
        help="worker-level fault spec forwarded to the spawned server "
        "(same keys as serve --inject)",
    )
    client.add_argument(
        "--snapshot-dir",
        default=None,
        help="snapshot/WAL directory of the spawned server (default: a "
        "temporary directory)",
    )
    client.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker processes of the spawned server",
    )
    client.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        help="per-request deadline in seconds",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=8,
        help="client reconnect/resend retry budget",
    )
    client.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="seconds to wait for one response before resending",
    )
    client.add_argument(
        "--snapshot-every",
        type=int,
        default=8,
        help="spawned server's auto-snapshot interval (0 = off)",
    )
    client.add_argument(
        "--overload-threshold",
        type=int,
        default=0,
        help="spawned server's query-window degradation threshold (0 = never)",
    )
    client.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the byte-identical workload verification",
    )
    client.set_defaults(func=_cmd_client)

    generate = subparsers.add_parser("generate", help="write a synthetic dataset")
    add_data_arguments(generate)
    generate.add_argument("--output", required=True, help="output CSV path")
    generate.set_defaults(func=_cmd_generate)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument(
        "name",
        help="table5..table8, fig10..fig14",
    )
    experiment.add_argument(
        "--trials", type=int, default=5, help="Monte-Carlo trials for the tables"
    )
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
