"""Core eclipse operator: definitions, algorithms, and the query facade.

The public names re-exported here form the primary API of the reproduction:

* :class:`WeightRange` / :class:`RatioVector` — attribute weight-ratio ranges
  (Definition 3 of the paper) plus the user-facing helpers for specifying them
  as exact weights, ratios, categories, or angles.
* :func:`eclipse_dominates`, :func:`skyline_dominates`, :func:`nn_dominates` —
  the three dominance relations of Table I.
* :func:`eclipse_baseline` — Algorithm 1 (``O(n^2 2^{d-1})``).
* :func:`eclipse_transform` — Algorithms 2 and 3 (``O(n log^{d-1} n)``).
* :class:`EclipseQuery` — high-level facade selecting among BASE, TRAN, QUAD,
  and CUTTING (a thin shim over the session layer).
* :class:`DatasetSession` / :class:`QueryPlan` — the plan → session →
  kernels query stack: cost-model planning, memoised per-dataset artifacts,
  and batched ratio-range queries (:meth:`DatasetSession.run_batch`).
* :func:`expected_eclipse_points` — the result-size estimator used for
  Tables VI–VIII.
"""

from repro.core.weights import (
    RATIO_INFINITY,
    ImportanceCategory,
    RatioVector,
    WeightRange,
    angle_range_to_ratio_range,
    category_to_ratio_range,
    ratio_range_to_angle_range,
    weight_interval_to_ratio_range,
)
from repro.core.dominance import (
    corner_weight_vectors,
    eclipse_dominates,
    nn_dominates,
    score,
    scores,
    skyline_dominates,
)
from repro.core.baseline import eclipse_baseline
from repro.core.plan import (
    CostEstimate,
    QueryPlan,
    UpdatePlan,
    choose_skyline_method,
    plan_query,
    plan_update,
)
from repro.core.session import DatasetSession, SessionStats, UpdateReport
from repro.core.transform import (
    eclipse_transform,
    map_to_corner_scores,
    map_to_intercept_space,
)
from repro.core.query import EclipseQuery, EclipseResult, eclipse
from repro.core.estimator import expected_eclipse_points
from repro.core.relationships import (
    convex_hull_points,
    nearest_neighbor,
    query_relationships,
)

__all__ = [
    "RATIO_INFINITY",
    "ImportanceCategory",
    "RatioVector",
    "WeightRange",
    "angle_range_to_ratio_range",
    "category_to_ratio_range",
    "ratio_range_to_angle_range",
    "weight_interval_to_ratio_range",
    "corner_weight_vectors",
    "eclipse_dominates",
    "nn_dominates",
    "score",
    "scores",
    "skyline_dominates",
    "eclipse_baseline",
    "eclipse_transform",
    "map_to_corner_scores",
    "map_to_intercept_space",
    "CostEstimate",
    "DatasetSession",
    "EclipseQuery",
    "EclipseResult",
    "QueryPlan",
    "SessionStats",
    "UpdatePlan",
    "UpdateReport",
    "choose_skyline_method",
    "eclipse",
    "plan_query",
    "plan_update",
    "expected_eclipse_points",
    "convex_hull_points",
    "nearest_neighbor",
    "query_relationships",
]
