"""BASE: the pairwise baseline eclipse algorithm (Algorithm 1).

For every pair of points the algorithm compares their scores under all
``2^{d-1}`` corner weight vectors (Theorems 1 and 2 reduce the continuum of
ratios to those corners).  A point is an eclipse point when no other point
scores no-worse on every corner and strictly better on at least one.

Complexity: ``O(n^2 · 2^{d-1})`` score comparisons, exactly as Theorem 3
states.  The implementation below vectorises the inner loops with numpy but
keeps the quadratic pairwise structure, so the measured scaling matches the
paper's BASE curves.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import DimensionMismatchError


def eclipse_baseline_indices(
    points: ArrayLike2D,
    ratios,
) -> IndexArray:
    """Return the indices of the eclipse points using Algorithm 1.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` with minimisation semantics.
    ratios:
        Anything accepted by
        :func:`repro.core.weights.make_ratio_vector` — typically a
        :class:`~repro.core.weights.RatioVector` or a single ``(low, high)``
        pair applied to every ratio.
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    ratio_vector = (
        ratios
        if isinstance(ratios, RatioVector)
        else make_ratio_vector(ratios, data.shape[1])
    )
    if ratio_vector.dimensions != data.shape[1]:
        raise DimensionMismatchError(
            f"ratio vector is for d={ratio_vector.dimensions}, "
            f"dataset has d={data.shape[1]}"
        )

    corners = ratio_vector.corner_weight_vectors()  # (2^{d-1}, d)
    corner_scores = data @ corners.T                # (n, 2^{d-1})

    eclipse: list = []
    for i in range(n):
        # Does any other point j dominate i?  j dominates i when j's score is
        # <= i's score on every corner and < on at least one.
        le = np.all(corner_scores <= corner_scores[i], axis=1)
        lt = np.any(corner_scores < corner_scores[i], axis=1)
        dominated_by = le & lt
        dominated_by[i] = False
        if not dominated_by.any():
            eclipse.append(i)
    return np.array(eclipse, dtype=np.intp)


def eclipse_baseline(points: ArrayLike2D, ratios) -> np.ndarray:
    """Return the eclipse points (rows) of ``points`` using Algorithm 1."""
    data = as_dataset(points)
    return data[eclipse_baseline_indices(data, ratios)]
