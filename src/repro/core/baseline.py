"""BASE: the pairwise baseline eclipse algorithm (Algorithm 1).

For every pair of points the algorithm compares their scores under all
``2^{d-1}`` corner weight vectors (Theorems 1 and 2 reduce the continuum of
ratios to those corners).  A point is an eclipse point when no other point
scores no-worse on every corner and strictly better on at least one.

Complexity: ``O(n^2 · 2^{d-1})`` score comparisons, exactly as Theorem 3
states.  The implementation keeps the quadratic pairwise structure but
executes it through the memory-bounded broadcast kernel: points are
presorted by the sum of their corner scores — a monotone key, so only
*predecessors* in that order can possibly dominate a point — and each block
of candidates is checked against its whole prefix in chunked broadcasts.
The prefix filter halves the comparison volume and eliminates the per-point
Python loop while the measured scaling still matches the paper's BASE
curves.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import DimensionMismatchError
from repro.perf.blocking import DEFAULT_BLOCK_SIZE, iter_blocks
from repro.skyline.kernels import dominated_mask, monotone_sort_order


def eclipse_baseline_indices(
    points: ArrayLike2D,
    ratios,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> IndexArray:
    """Return the indices of the eclipse points using Algorithm 1.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` with minimisation semantics.
    ratios:
        Anything accepted by
        :func:`repro.core.weights.make_ratio_vector` — typically a
        :class:`~repro.core.weights.RatioVector` or a single ``(low, high)``
        pair applied to every ratio.
    block_size:
        Number of candidates screened per kernel call.
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    ratio_vector = (
        ratios
        if isinstance(ratios, RatioVector)
        else make_ratio_vector(ratios, data.shape[1])
    )
    if ratio_vector.dimensions != data.shape[1]:
        raise DimensionMismatchError(
            f"ratio vector is for d={ratio_vector.dimensions}, "
            f"dataset has d={data.shape[1]}"
        )

    corners = ratio_vector.corner_weight_vectors()  # (2^{d-1}, d)
    corner_scores = data @ corners.T                # (n, 2^{d-1})

    # Monotone filter: corner-dominance implies a strictly smaller score sum,
    # so after sorting only predecessors can dominate a point.  The
    # lexicographic tie-break (monotone_sort_order) guarantees that even
    # when rounding collapses two different sums, a dominator still sorts
    # before the row it dominates, keeping it inside the candidate's prefix.
    sums = corner_scores.sum(axis=1)
    order = monotone_sort_order(corner_scores, sums=sums)
    ranked = corner_scores[order]
    ranked_sums = sums[order]

    dominated = np.zeros(n, dtype=bool)
    for start, stop in iter_blocks(n, block_size):
        # The prefix includes the candidates themselves and any sum-ties;
        # neither can strictly dominate, so including them is harmless.
        dominated[start:stop] = dominated_mask(
            ranked[start:stop],
            ranked[:stop],
            cand_sums=ranked_sums[start:stop],
            dom_sums=ranked_sums[:stop],
        )
    return np.sort(order[~dominated])


def eclipse_baseline(points: ArrayLike2D, ratios) -> np.ndarray:
    """Return the eclipse points (rows) of ``points`` using Algorithm 1."""
    data = as_dataset(points)
    return data[eclipse_baseline_indices(data, ratios)]
