"""Dominance relations: 1NN-, skyline-, and eclipse-dominance (Table I).

All relations assume the "smaller is better" orientation: the query point is
the origin and every attribute measures a distance-like quantity (price,
distance, ...).  Scores are weighted L1 sums ``S(p) = Σ_j w[j] p[j]``
(footnote 2 of the paper notes that L_p extensions are mechanical).

The eclipse-dominance test uses Theorems 1 and 2: it suffices to compare
scores at the ``2^{d-1}`` corner weight vectors of the ratio ranges rather
than over the whole continuum.  As discussed in ``DESIGN.md`` we require at
least one strictly smaller corner score so that dominance is irreflexive and
duplicate points do not dominate each other; this matches the behaviour of
the transformation algorithm (which runs an ordinary strict skyline on the
mapped points).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro._types import ArrayLike2D, PointLike
from repro.core.weights import RatioVector
from repro.errors import DimensionMismatchError, InvalidDatasetError


def as_point(point: PointLike) -> np.ndarray:
    """Coerce a point-like object to a 1-D float array and validate it."""
    arr = np.asarray(point, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise InvalidDatasetError("a point must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(arr)):
        raise InvalidDatasetError("points must contain only finite values")
    return arr


def as_dataset(points: ArrayLike2D) -> np.ndarray:
    """Coerce a collection of points to an ``(n, d)`` float array.

    An empty collection is allowed (returns an array of shape ``(0, 0)``);
    individual operations decide whether empty input is meaningful.
    """
    arr = np.asarray(points, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, arr.shape[1] if arr.ndim == 2 else 0)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise InvalidDatasetError(
            f"dataset must be 2-D (n points x d attributes), got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise InvalidDatasetError("dataset must contain only finite values")
    return arr


def corner_weight_vectors(ratios: RatioVector) -> np.ndarray:
    """Return the ``(2^{d-1}, d)`` corner weight matrix of a ratio vector.

    Thin functional wrapper over
    :meth:`repro.core.weights.RatioVector.corner_weight_vectors` for callers
    that prefer free functions.
    """
    return ratios.corner_weight_vectors()


def score(point: PointLike, weights: Sequence[float]) -> float:
    """Weighted L1 score ``S(p) = Σ_j w[j] p[j]`` of a single point."""
    p = as_point(point)
    w = np.asarray(weights, dtype=float)
    if p.shape != w.shape:
        raise DimensionMismatchError(
            f"point has d={p.size} but weight vector has d={w.size}"
        )
    return float(p @ w)


def scores(points: ArrayLike2D, weights: Sequence[float]) -> np.ndarray:
    """Weighted L1 scores of every point in a dataset.

    Returns an array of shape ``(n,)``.
    """
    data = as_dataset(points)
    w = np.asarray(weights, dtype=float)
    if data.shape[0] == 0:
        return np.empty(0, dtype=float)
    if data.shape[1] != w.size:
        raise DimensionMismatchError(
            f"dataset has d={data.shape[1]} but weight vector has d={w.size}"
        )
    return data @ w


def _corner_scores(point: np.ndarray, corners: np.ndarray) -> np.ndarray:
    """Scores of ``point`` under every corner weight vector."""
    return corners @ point


def eclipse_dominates(
    p: PointLike,
    q: PointLike,
    ratios: RatioVector,
    corners: Optional[np.ndarray] = None,
) -> bool:
    """Return ``True`` when ``p`` eclipse-dominates ``q`` under ``ratios``.

    ``p ≺_e q`` holds when ``S(p) <= S(q)`` for every weight vector whose
    ratios lie in the query ranges, with strict inequality for at least one
    corner (see the module docstring).  By Theorem 2 it suffices to check the
    ``2^{d-1}`` corner weight vectors.

    Parameters
    ----------
    p, q:
        The candidate dominator and dominated point.
    ratios:
        The eclipse query parameter.
    corners:
        Optional pre-computed corner matrix (``ratios.corner_weight_vectors()``)
        to avoid recomputation in tight loops.
    """
    pa, qa = as_point(p), as_point(q)
    if pa.size != qa.size:
        raise DimensionMismatchError("points must share the same dimensionality")
    if ratios.dimensions != pa.size:
        raise DimensionMismatchError(
            f"ratio vector is for d={ratios.dimensions}, points have d={pa.size}"
        )
    if corners is None:
        corners = ratios.corner_weight_vectors()
    sp = _corner_scores(pa, corners)
    sq = _corner_scores(qa, corners)
    return bool(np.all(sp <= sq) and np.any(sp < sq))


def skyline_dominates(p: PointLike, q: PointLike) -> bool:
    """Return ``True`` when ``p`` skyline-dominates ``q``.

    ``p ≺_s q`` holds when ``p`` is no worse than ``q`` on every attribute and
    strictly better on at least one (minimisation semantics), which is
    equivalent to ``S(p) <= S(q)`` for every non-negative weight vector
    (Definition 2).
    """
    pa, qa = as_point(p), as_point(q)
    if pa.size != qa.size:
        raise DimensionMismatchError("points must share the same dimensionality")
    return bool(np.all(pa <= qa) and np.any(pa < qa))


def nn_dominates(p: PointLike, q: PointLike, weights: Sequence[float]) -> bool:
    """Return ``True`` when ``p`` 1NN-dominates ``q`` for a weight vector.

    ``p ≺_1 q`` holds when ``S(p) < S(q)`` for the given weight vector
    (Definition 1).
    """
    return score(p, weights) < score(q, weights)


def eclipse_dominance_matrix(
    points: ArrayLike2D, ratios: RatioVector
) -> np.ndarray:
    """Return the full ``(n, n)`` boolean eclipse-dominance matrix.

    ``matrix[i, j]`` is ``True`` when point ``i`` eclipse-dominates point
    ``j``.  The matrix is materialised through the chunked broadcast kernel
    so the comparison scratch stays memory-bounded, but the output itself is
    ``O(n^2)`` — the query algorithms never materialise it.
    """
    # Imported locally: repro.skyline.dominance imports this module, so a
    # top-level import of the kernels would create an import cycle.
    from repro.skyline.kernels import dominates_matrix

    data = as_dataset(points)
    n = data.shape[0]
    if n and ratios.dimensions != data.shape[1]:
        raise DimensionMismatchError(
            f"ratio vector is for d={ratios.dimensions}, dataset has d={data.shape[1]}"
        )
    corners = ratios.corner_weight_vectors()
    corner_scores = data @ corners.T  # (n, 2^{d-1})
    matrix = dominates_matrix(corner_scores, corner_scores)
    np.fill_diagonal(matrix, False)
    return matrix
