"""Expected eclipse result-size estimation (Section V-C, Tables VI–VIII).

The paper studies the *expected number of eclipse points* on independent and
identically distributed data so that users can pick a ratio range that
yields roughly the desired result size (the eclipse counterpart of choosing
``k`` in kNN).  This module provides a Monte-Carlo estimator of that
expectation plus a helper that searches for a ratio range achieving a target
result size — the "adjust the attribute weight ratio vector according to the
desired number of eclipse points" workflow the paper motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector
from repro.errors import InvalidDatasetError


@dataclass(frozen=True)
class EstimateResult:
    """Monte-Carlo estimate of the expected number of eclipse points."""

    mean: float
    std: float
    trials: int
    n: int
    dimensions: int
    ratio_low: float
    ratio_high: float

    def __float__(self) -> float:
        return self.mean


def expected_eclipse_points(
    n: int,
    dimensions: int,
    ratio_low: float,
    ratio_high: float,
    trials: int = 10,
    seed: Optional[int] = 0,
    generator: Optional[Callable[[int, int, np.random.Generator], np.ndarray]] = None,
) -> EstimateResult:
    """Estimate the expected number of eclipse points by Monte-Carlo sampling.

    Parameters
    ----------
    n:
        Dataset cardinality.
    dimensions:
        Dataset dimensionality ``d``.
    ratio_low, ratio_high:
        Shared ratio range applied to every attribute-weight ratio (the
        paper's experiments use identical ranges on every ratio).
    trials:
        Number of independent datasets averaged over.
    seed:
        Seed of the random generator (``None`` draws fresh entropy).
    generator:
        Optional callable ``(n, d, rng) -> (n, d) array`` producing one
        dataset per trial; defaults to i.i.d. uniform points, matching the
        "independent and identically distributed datasets" of Section V-C.
    """
    if n < 1:
        raise InvalidDatasetError("n must be at least 1")
    if dimensions < 2:
        raise InvalidDatasetError("eclipse needs d >= 2 dimensions")
    if trials < 1:
        raise InvalidDatasetError("trials must be at least 1")
    rng = np.random.default_rng(seed)
    ratios = RatioVector.uniform(ratio_low, ratio_high, dimensions)
    counts = np.empty(trials, dtype=float)
    for t in range(trials):
        if generator is None:
            data = rng.random((n, dimensions))
        else:
            data = generator(n, dimensions, rng)
        counts[t] = eclipse_transform_indices(data, ratios).size
    return EstimateResult(
        mean=float(counts.mean()),
        std=float(counts.std(ddof=1)) if trials > 1 else 0.0,
        trials=trials,
        n=n,
        dimensions=dimensions,
        ratio_low=ratio_low,
        ratio_high=ratio_high,
    )


def ratio_range_for_target_size(
    n: int,
    dimensions: int,
    target: float,
    trials: int = 5,
    seed: Optional[int] = 0,
    max_iterations: int = 12,
) -> Tuple[float, float]:
    """Search for a symmetric ratio range yielding roughly ``target`` points.

    The search sweeps symmetric ranges ``[1/w, w]`` (centred on the "equally
    important" ratio 1) and uses the monotonicity of the expected result size
    in the range width: a *narrower* range gives every point a larger
    domination region (flat angle at the 1NN end), so it returns *fewer*
    points, while a wider range approaches the skyline and returns more
    (the trend of Table VIII).  The width ``w`` is bisected accordingly.

    Returns the ``(low, high)`` pair of the widest range whose estimated
    result size does not exceed ``target`` (or the narrowest range tried
    when even that returns more than ``target`` points).
    """
    if target < 1:
        raise InvalidDatasetError("target must be at least 1")
    low_width, high_width = 1.0, 64.0
    best = (1.0 / low_width, low_width)
    for _ in range(max_iterations):
        width = float(np.sqrt(low_width * high_width))
        estimate = expected_eclipse_points(
            n, dimensions, 1.0 / width, width, trials=trials, seed=seed
        )
        if estimate.mean > target:
            high_width = width  # too many points: narrow the range
        else:
            best = (1.0 / width, width)
            low_width = width  # few enough: try a wider range
        if high_width / low_width < 1.05:
            break
    return best
