"""Query planning: the n-and-d-aware cost model behind every dispatch choice.

This module is the bottom layer of the plan → session → kernels stack: it
knows nothing about datasets or algorithms, only about their *costs*.  It
replaces two hand-rolled heuristics that used to live elsewhere:

* the ``if``/``else`` method selection of the old :class:`EclipseQuery`
  facade (one-shot transform vs. amortised index queries), and
* the purely d-based skyline ``auto`` dispatch of ``repro.skyline.api``.

The cost model is deliberately coarse — estimates are in abstract "kernel
element operations" (one vectorised comparison or multiply-add), good enough
to rank methods, not to predict wall-clock times.  Where the caller knows
better (a :class:`~repro.core.session.DatasetSession` that has already
computed the raw-space skyline passes the *actual* skyline size ``u``), the
model uses the measurement instead of the estimate.

Everything here is pure arithmetic over ``(n, d, num_queries)``; the module
must not import from ``repro.skyline`` or its ``repro.core`` siblings so
that both can depend on it without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import AlgorithmNotSupportedError

#: Canonical eclipse method names; several aliases map onto them.
METHOD_ALIASES: Dict[str, str] = {
    "base": "baseline",
    "baseline": "baseline",
    "tran": "transform",
    "transform": "transform",
    "quad": "quadtree",
    "quadtree": "quadtree",
    "cutting": "cutting",
    "cut": "cutting",
    "auto": "auto",
}

#: Canonical method names in the paper's presentation order.
METHODS: Tuple[str, ...] = ("baseline", "transform", "quadtree", "cutting")

#: The index-backed methods (one amortised build, cheap repeated queries).
INDEX_METHODS: Tuple[str, ...] = ("quadtree", "cutting")

#: Below this many points the recursion overhead of divide-and-conquer beats
#: its pruning gains and one block-SFS pass through the kernels is faster.
SMALL_N_SFS_CUTOFF = 512

#: Estimated fraction of the stored intersection hyperplanes that meet a
#: typical dual query box (used to price an index query's correction step).
CANDIDATE_FRACTION = 0.25

#: Per-pair constant of the *quadtree* index build (``d >= 3``).  The
#: flattened level-order engine removed the per-node Python recursion, but
#: the quadtree's midpoint splits separate poorly when the dual domain
#: dwarfs the region where the hyperplanes vary (the default
#: ``[-128, 0]^{d-1}`` box), so each level re-masks nearly the whole pair
#: set across ``2^{d-1}`` children: measured ~11-55 µs/pair on ANTI/INDE
#: workloads at ``d ∈ {3, 4}`` (PR 3), i.e. thousands of element-ops.
PAIR_BUILD_FACTOR_QUAD = 2000.0

#: Per-pair constant of the *cutting* index build (``d >= 3``).  The
#: flattened engine's load-reduction rollback stops cuts that do not
#: actually reduce cell load, so degenerate regions are abandoned instead
#: of re-masked level after level: measured ~0.3-0.8 µs/pair on the same
#: workloads (PR 3) — roughly 30 element-ops per pair.
PAIR_BUILD_FACTOR_CUTTING = 30.0

#: Per-pair constant of the two-dimensional build: the sorted binary-search
#: structure is a vectorised argsort, with no tree levels to pay for.
PAIR_BUILD_FACTOR_2D = 10.0

#: Per-element constant of one incremental *skyline* maintenance pass
#: (PR 4): the insert screen is one ``(b, u, d)`` dominance broadcast, the
#: delete shadow pass one ``(buffer, deleted, d)`` broadcast — a handful of
#: comparisons per element, same order as the kernels they run on.
UPDATE_SKYLINE_FACTOR = 4.0

#: Per appended intersection-pair constant of an incremental *index* update
#: (PR 5): the pair-enumeration kernel, the backend merge (the sorted
#: scatter-merge or the tree's overflow routing with amortised subtree
#: rebuilds), and the slot bookkeeping.  The PR 4 value (60) silently
#: absorbed an ``O(m)``-row re-concatenation of the full arenas per batch;
#: with the capacity-doubling arenas only the appended rows are touched.
#: Measured ~1.5 µs per appended pair total (~0.5-0.7 µs per dual
#: dimension) on ANTI update streams at d ∈ {3, 4}, n = 20k — flat in the
#: arena size, where the old path scaled with ``m``.  The arena-copy share
#: is priced separately by :data:`ARENA_GROWTH_FACTOR`.
PAIR_UPDATE_FACTOR = 40.0

#: Amortised arena-growth cost per appended pair: geometric doubling copies
#: every row at most ~2 extra times over its lifetime (a plain memcpy per
#: element), plus the tree backends' amortised overflow/subtree-rebuild
#: share.  Modelled explicitly (instead of being smeared into
#: :data:`PAIR_UPDATE_FACTOR`, as the PR 4 constant did with the full-copy
#: cost) so the in-place arm's estimate tracks the bytes actually moved.
ARENA_GROWTH_FACTOR = 8.0

#: Per *stored* pair cost of one in-place arena compaction: a vectorised
#: renumber-and-rewrite pass over every pair/sorted/tree-item row (alive and
#: dead), with no tree restructuring and no pair re-enumeration.  Measured
#: 0.07-0.15 µs/pair (~0.03-0.05 µs per dual dimension) at m up to 3.9M —
#: 6.8x-23x faster than the full rebuild it replaces on the same data,
#: which is why tripping the dead-slot threshold now compacts instead of
#: rebuilding.
COMPACT_FACTOR = 5.0

#: Above this fraction of dead (retired but uncompacted) hyperplane slots
#: the arenas are reclaimed regardless of the per-batch arithmetic: dead
#: pairs tax every candidate set until the dead rows go.  The cost model
#: then chooses between an in-place compaction (:data:`COMPACT_FACTOR`,
#: the usual winner) and a full rebuild.
MAX_DEAD_FRACTION = 0.5

#: Fraction of the ideal per-thread speedup the parallel kernels retain
#: (PR 7).  The executor's worker threads run numpy comparisons that
#: release the GIL, but chunk dispatch, the divided memory cap (smaller
#: blocks), and memory-bandwidth contention eat part of the ideal scaling:
#: effective speedup = ``1 + PARALLEL_EFFICIENCY * (threads - 1)``, i.e.
#: ~2.8x at 4 threads, capped by the cores the host actually has.
PARALLEL_EFFICIENCY = 0.6

#: Share of the per-pair index-build constants
#: (:data:`PAIR_BUILD_FACTOR_QUAD` / :data:`PAIR_BUILD_FACTOR_CUTTING`)
#: that rides the parallel kernels — the pairwise-intersection enumeration
#: and the skyline prefilter screens.  The rest (level-batched tree
#: structuring, argsort regrouping, cut sampling) is sequential per level
#: and does not scale with the executor, which is why index builds gain
#: less from threads than the screens and GEMMs do — and why the planner's
#: build-vs-transform break-even shifts *toward* the transform as threads
#: grow.  The same share applies to :data:`PAIR_UPDATE_FACTOR` (pair
#: enumeration parallel, arena merge sequential).
PAIR_BUILD_PARALLEL_SHARE = 0.25

#: Fraction of the ideal per-worker speedup the *process* backend retains
#: (PR 9).  Lower than :data:`PARALLEL_EFFICIENCY`: on top of the thread
#: backend's dispatch and bandwidth losses, every process dispatch pays the
#: shared-memory export copies, per-group task pickling, and result IPC.
#: Measured on the PR 9 bench sweep against the thread backend's re-validated
#: (unchanged) constant.
PROCESS_EFFICIENCY = 0.45

#: Fixed element-op cost of one process-backend dispatch — the export
#: copies into pooled shared segments, worker attach, task pickling, and
#: result IPC.  Measured at ~1-4 ms per dispatch, i.e. a few million of the
#: abstract element-ops the estimates are denominated in; it is the floor
#: that keeps small kernels priced honestly under ``backend="process"``.
PROCESS_DISPATCH_FLOOR_OPS = 2.0e6

#: Kernel work (element-ops) below which the process backend is modeled —
#: and, via ``MIN_PROCESS_DISPATCH_BYTES`` in the executor, actually
#: executed — as serial: under this floor the dispatch overhead exceeds any
#: parallel gain, so tiny inputs never leave the calling process.
MIN_PROCESS_PARALLEL_OPS = 4.0e6


def parallel_speedup(
    threads: int, backend: str = "thread", work: Optional[float] = None
) -> float:
    """Effective kernel speedup of ``threads`` executor workers.

    ``threads <= 1`` is exactly 1.0 (the serial code path), as is the
    ``"serial"`` backend at any thread count.  The linear
    :data:`PARALLEL_EFFICIENCY` model deliberately ignores the host's
    physical core count — the plan must be a pure function of its inputs
    so tests and snapshots reproduce across machines; callers that know
    their core budget pass an appropriate ``threads``.

    ``backend="process"`` (PR 9) uses :data:`PROCESS_EFFICIENCY` and, when
    the caller supplies the kernel's ``work`` (element-ops), applies the
    measured dispatch-overhead floor: below
    :data:`MIN_PROCESS_PARALLEL_OPS` the dispatch stays serial (speedup
    1.0), above it the fixed :data:`PROCESS_DISPATCH_FLOOR_OPS` cost is
    amortised into the effective speedup, so small kernels approach 1.0
    smoothly instead of pretending the ideal scaling.  The default
    ``backend="thread"`` ignores ``work`` and reproduces the PR 7 model
    bit for bit.
    """
    count = max(1, int(threads))
    if count == 1 or backend == "serial":
        return 1.0
    if backend == "process":
        if work is not None and work < MIN_PROCESS_PARALLEL_OPS:
            return 1.0
        ideal = 1.0 + PROCESS_EFFICIENCY * (count - 1)
        if work is None or work <= 0.0:
            return ideal
        return max(1.0, work / (work / ideal + PROCESS_DISPATCH_FLOOR_OPS))
    return 1.0 + PARALLEL_EFFICIENCY * (count - 1)


def canonical_method(method: str) -> str:
    """Resolve a method alias (``"quad"``, ``"tran"``, ...) to its canonical name."""
    try:
        return METHOD_ALIASES[method.lower()]
    except (KeyError, AttributeError):
        raise AlgorithmNotSupportedError(
            f"unknown eclipse method {method!r}; choose from "
            f"{sorted(set(METHOD_ALIASES))}"
        ) from None


# ----------------------------------------------------------------------
# Skyline substrate
# ----------------------------------------------------------------------
def expected_skyline_size(n: int, d: int) -> float:
    """Expected skyline size of ``n`` independent points in ``d`` dimensions.

    The classic estimate ``(ln n)^{d-1} / (d-1)!`` (Bentley et al.).  Real
    data can deviate wildly — anticorrelated inputs have far larger
    skylines — which is exactly why planners prefer a measured ``u`` when one
    is available (see :func:`plan_query`'s ``num_skyline``).
    """
    if n <= 1 or d <= 1:
        return float(max(n, 0))
    estimate = math.log(n) ** (d - 1) / math.factorial(d - 1)
    return float(min(n, max(1.0, estimate)))


def choose_skyline_method(n: int, d: int) -> str:
    """Pick the fastest skyline substrate for an ``(n, d)`` input.

    The choice is what the old d-based heuristic prescribed — the
    two-dimensional sweep for ``d = 2`` (Algorithm 2), divide-and-conquer
    for ``3 <= d <= 4`` (Algorithm 3), block sort-filter-skyline for
    ``d >= 5`` where hyperplane splits lose their pruning power — refined
    with the n-awareness the ROADMAP queued up: below
    :data:`SMALL_N_SFS_CUTOFF` points the divide-and-conquer recursion
    never recoups its bookkeeping, so small mid-dimensional inputs run
    through one block-SFS screening pass instead.  All substrates return
    identical indices; this is purely a speed decision.
    """
    if d <= 2:
        return "sweep2d"
    if d >= 5:
        return "sfs"
    if n < SMALL_N_SFS_CUTOFF:
        return "sfs"
    return "divide_conquer"


def skyline_cost(n: int, d: int, method: Optional[str] = None) -> float:
    """Abstract cost of one skyline computation over an ``(n, d)`` input."""
    if n <= 1:
        return float(max(n, 0))
    if method is None:
        method = choose_skyline_method(n, d)
    log_n = math.log2(n)
    if method == "sweep2d":
        return n * log_n
    if method == "divide_conquer":
        # O(n log^{d-1} n); the exponent is capped because the kernelised
        # merge flattens the constant for the high-d recursions.
        return n * log_n ** max(1, min(d - 1, 3))
    # sfs / bnl: every candidate is screened against the running window.
    return 0.5 * n * expected_skyline_size(n, d) * d


# ----------------------------------------------------------------------
# Method cost estimates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostEstimate:
    """Estimated cost of one eclipse method, split into build and per-query.

    Attributes
    ----------
    method:
        Canonical method name.
    build:
        One-time cost paid before the first query (index construction; zero
        for the scan-based methods).
    per_query:
        Cost of answering one ratio-range query once any build is done.
    """

    method: str
    build: float
    per_query: float

    def total(self, num_queries: int) -> float:
        """Total cost of ``num_queries`` queries including the build."""
        return self.build + max(1, num_queries) * self.per_query


def method_cost_estimates(
    num_points: int,
    dimensions: int,
    num_skyline: Optional[int] = None,
    threads: int = 1,
    backend: str = "thread",
) -> Tuple[CostEstimate, ...]:
    """Cost estimates for all four eclipse methods on one dataset shape.

    Parameters
    ----------
    num_points, dimensions:
        Dataset shape ``(n, d)``.
    num_skyline:
        Measured raw-space skyline size ``u`` when the caller has one (it
        bounds the index size much more tightly than the independence
        estimate, especially on anticorrelated data).
    threads:
        Executor worker count the kernels will run with.  The fully
        kernel-bound terms (dominance screens, the corner GEMM, the
        batched tree probes, pair enumeration) divide by
        :func:`parallel_speedup`; the sequential tree-structuring share of
        the index builds (:data:`PAIR_BUILD_PARALLEL_SHARE`) does not, so
        break-evens shift honestly rather than uniformly.
    backend:
        Dispatch backend the kernels will run with.  ``"thread"`` (default)
        reproduces the PR 7 estimates exactly; ``"process"`` applies
        :data:`PROCESS_EFFICIENCY` and the per-term dispatch-overhead floor
        (each parallel term passes its own work to
        :func:`parallel_speedup`, so small terms are priced serial);
        ``"serial"`` disables the parallel division entirely.
    """
    n = max(0, int(num_points))
    d = max(2, int(dimensions))
    corners = 2.0 ** (d - 1)
    u = float(num_skyline) if num_skyline is not None else expected_skyline_size(n, d)
    pairs = 0.5 * u * max(0.0, u - 1.0)

    def _speed(work: float) -> float:
        return parallel_speedup(threads, backend=backend, work=work)

    map_cost = n * corners * d
    transform_work = map_cost + skyline_cost(n, int(corners))
    transform_q = transform_work / _speed(transform_work)
    baseline_work = 0.5 * n * n * corners
    baseline_q = baseline_work / _speed(baseline_work)
    quad_factor = PAIR_BUILD_FACTOR_2D if d == 2 else PAIR_BUILD_FACTOR_QUAD
    cutting_factor = PAIR_BUILD_FACTOR_2D if d == 2 else PAIR_BUILD_FACTOR_CUTTING
    pair_work = pairs * max(1, d - 1)
    # The skyline prefilter and pair enumeration parallelise; the per-level
    # tree structuring baked into the per-pair constants does not.
    build_scale = PAIR_BUILD_PARALLEL_SHARE / _speed(pair_work) + (
        1.0 - PAIR_BUILD_PARALLEL_SHARE
    )
    sky_work = skyline_cost(n, d)
    sky_build = sky_work / _speed(sky_work)
    probe_work = pairs * CANDIDATE_FRACTION * max(1, d - 1)
    index_q = u * math.log2(u + 2.0) + probe_work / _speed(probe_work)

    return (
        CostEstimate("baseline", 0.0, baseline_q),
        CostEstimate("transform", 0.0, transform_q),
        CostEstimate(
            "quadtree", sky_build + pair_work * quad_factor * build_scale, index_q
        ),
        CostEstimate(
            "cutting", sky_build + pair_work * cutting_factor * build_scale, index_q
        ),
    )


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision for one query (or one batch of queries).

    Attributes
    ----------
    method:
        Canonical eclipse method the executor should run.
    skyline_method:
        Skyline substrate for raw-space computations (the index build's
        prefilter and the batch executor's shared skyline).
    mapped_skyline_method:
        Substrate for the corner-score space of the transformation
        algorithm, whose dimensionality is ``2^{d-1}``, not ``d``.
    index_backend:
        Intersection-index backend for the index methods, ``None`` otherwise.
    num_points, dimensions, num_queries:
        The workload the plan was made for.
    num_skyline:
        Measured skyline size the estimates used, when one was available.
    estimates:
        :class:`CostEstimate` for every method, for :meth:`explain`.
    reason:
        One-line human-readable justification of the choice.
    """

    method: str
    skyline_method: str
    mapped_skyline_method: str
    index_backend: Optional[str]
    num_points: int
    dimensions: int
    num_queries: int
    num_skyline: Optional[int]
    estimates: Tuple[CostEstimate, ...]
    reason: str

    @property
    def uses_index(self) -> bool:
        """``True`` when the plan pays an index build."""
        return self.method in INDEX_METHODS

    def estimate_for(self, method: str) -> CostEstimate:
        """The cost estimate of one method (canonical name)."""
        for estimate in self.estimates:
            if estimate.method == method:
                return estimate
        raise KeyError(method)

    @property
    def expected_cost(self) -> float:
        """Total estimated cost of the chosen method for this workload."""
        return self.estimate_for(self.method).total(self.num_queries)

    def best_alternative_cost(self, num_queries: Optional[int] = None) -> Optional[float]:
        """Total cost of the cheapest index-free method, ``None`` if none.

        The index advisor's admission gate compares the chosen index
        method against this: skipping the build always leaves an exact
        index-free fallback, and this is what that fallback would cost.
        """
        queries = max(1, self.num_queries if num_queries is None else num_queries)
        totals = [
            estimate.total(queries)
            for estimate in self.estimates
            if estimate.method not in INDEX_METHODS
        ]
        return min(totals) if totals else None

    def index_improvement_ratio(self, num_queries: Optional[int] = None) -> Optional[float]:
        """How much the chosen index method beats the best index-free one.

        ``> 1`` means the index wins by that factor over this workload
        (build amortised across ``num_queries``); ``None`` when the plan
        does not use an index or no index-free estimate exists.
        """
        if not self.uses_index:
            return None
        best = self.best_alternative_cost(num_queries)
        if best is None:
            return None
        queries = max(1, self.num_queries if num_queries is None else num_queries)
        index_total = self.estimate_for(self.method).total(queries)
        if index_total <= 0.0:
            return math.inf
        return best / index_total

    def explain(self) -> str:
        """Render the plan as an aligned, human-readable text block."""
        u_text = (
            f"{self.num_skyline} (measured)"
            if self.num_skyline is not None
            else f"~{expected_skyline_size(self.num_points, self.dimensions):.0f} (estimated)"
        )
        lines = [
            "eclipse query plan",
            f"  dataset        n={self.num_points} points, d={self.dimensions} "
            f"attributes ({2 ** (self.dimensions - 1)} corner vectors)",
            f"  workload       {self.num_queries} ratio-range "
            f"quer{'y' if self.num_queries == 1 else 'ies'}",
            f"  skyline size   {u_text}",
            f"  method         {self.method}"
            + (f" [{self.index_backend} backend]" if self.index_backend else ""),
            f"  substrates     raw-space skyline: {self.skyline_method}, "
            f"corner-score space: {self.mapped_skyline_method}",
            f"  reason         {self.reason}",
            "  estimated cost (abstract kernel element-ops):",
        ]
        for estimate in self.estimates:
            marker = "->" if estimate.method == self.method else "  "
            lines.append(
                f"    {marker} {estimate.method:<9} build={estimate.build:>12.3e}  "
                f"per-query={estimate.per_query:>12.3e}  "
                f"total={estimate.total(self.num_queries):>12.3e}"
            )
        return "\n".join(lines)


def plan_query(
    num_points: int,
    dimensions: int,
    method: str = "auto",
    num_queries: int = 1,
    num_skyline: Optional[int] = None,
    threads: int = 1,
    backend: str = "thread",
) -> QueryPlan:
    """Build a :class:`QueryPlan` for a workload of ratio-range queries.

    Parameters
    ----------
    num_points, dimensions:
        Dataset shape ``(n, d)``.
    method:
        A method name/alias to pin the choice, or ``"auto"`` to let the cost
        model decide.  ``auto`` keeps the paper's one-shot behaviour — the
        corner-score transformation, exact in every dimensionality — and for
        batches compares the transformation's per-query cost against
        amortising the cheapest index build (quadtree or cutting, priced by
        their per-pair build constants) over the whole batch.
    num_queries:
        Number of ratio-range queries that will share the plan.
    num_skyline:
        Measured raw-space skyline size, when available (see
        :func:`method_cost_estimates`).
    threads:
        Executor worker count the kernels will run with (see
        :func:`method_cost_estimates`); index builds parallelise less than
        the transformation's screens, so more threads shift the batch
        break-even toward the transformation.
    backend:
        Dispatch backend the kernels will run with (see
        :func:`method_cost_estimates`).
    """
    chosen = canonical_method(method)
    n = max(0, int(num_points))
    d = max(2, int(dimensions))
    q = max(1, int(num_queries))
    estimates = method_cost_estimates(
        n, d, num_skyline=num_skyline, threads=threads, backend=backend
    )

    if chosen != "auto":
        reason = f"method {chosen!r} requested explicitly"
    elif q == 1:
        # One-shot: the corner-score transformation is exact for every ratio
        # range and dimensionality and never pays a build, which is the
        # paper's own default; an index build cannot amortise over one query.
        chosen = "transform"
        reason = "one-shot query: transformation needs no index build"
    else:
        transform_total = next(
            e for e in estimates if e.method == "transform"
        ).total(q)
        best_index = min(
            (e for e in estimates if e.method in INDEX_METHODS),
            key=lambda e: e.total(q),
        )
        index_total = best_index.total(q)
        if index_total < transform_total:
            chosen = best_index.method
            reason = (
                f"batch of {q}: one {best_index.method} build amortised over "
                f"the batch beats {q} transformation passes "
                f"({index_total:.2e} vs {transform_total:.2e} element-ops)"
            )
        else:
            chosen = "transform"
            reason = (
                f"batch of {q}: the cheapest index build ({best_index.method}) "
                f"would not amortise "
                f"({index_total:.2e} vs {transform_total:.2e} element-ops)"
            )

    corners = 2 ** (d - 1)
    return QueryPlan(
        method=chosen,
        skyline_method=choose_skyline_method(n, d),
        mapped_skyline_method=choose_skyline_method(n, corners),
        index_backend=chosen if chosen in INDEX_METHODS else None,
        num_points=n,
        dimensions=d,
        num_queries=q,
        num_skyline=None if num_skyline is None else int(num_skyline),
        estimates=estimates,
        reason=reason,
    )


# ----------------------------------------------------------------------
# The update arm: in-place maintenance vs rebuild
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class UpdatePlan:
    """The cost model's decision for one artifact under one update batch.

    Attributes
    ----------
    strategy:
        ``"inplace"`` (maintain the artifact incrementally), ``"compact"``
        (maintain in place *and* reclaim the dead arena rows with an
        in-place compaction pass), or ``"rebuild"`` (invalidate the
        artifact and recompute lazily on next use).
    artifact:
        What the decision is about: ``"skyline"`` or ``"index"``.
    update_cost, rebuild_cost:
        The two estimated costs, in the same abstract kernel element-ops as
        :class:`CostEstimate` (for ``"compact"`` the update cost includes
        the compaction pass).
    reason:
        One-line human-readable justification.
    """

    strategy: str
    artifact: str
    update_cost: float
    rebuild_cost: float
    reason: str

    @property
    def inplace(self) -> bool:
        """``True`` when the artifact should be maintained in place."""
        return self.strategy in ("inplace", "compact")

    @property
    def compacts(self) -> bool:
        """``True`` when the in-place update should also compact the arenas."""
        return self.strategy == "compact"


def plan_update(
    num_points: int,
    dimensions: int,
    num_inserts: int,
    num_deletes: int,
    num_skyline: Optional[int] = None,
    artifact: str = "skyline",
    index_backend: Optional[str] = None,
    dead_fraction: float = 0.0,
    num_pairs: Optional[int] = None,
    threads: int = 1,
    backend: str = "thread",
) -> UpdatePlan:
    """Decide update-in-place vs compact vs rebuild for one artifact/batch.

    Parameters
    ----------
    num_points, dimensions:
        Shape of the dataset *after* the batch.
    num_inserts, num_deletes:
        Rows arriving in / leaving the artifact's input: dataset rows for
        the ``"skyline"`` artifact, skyline-membership churn (slots added /
        retired) for an ``"index"`` artifact.
    num_skyline:
        Measured skyline size when available (as in :func:`plan_query`).
    artifact:
        ``"skyline"`` or ``"index"``.
    index_backend:
        Backend of the index artifact (prices the rebuild side with the
        PR 3 per-strategy build constants).
    dead_fraction:
        Fraction of dead hyperplane slots the index would carry *after* an
        in-place update; above :data:`MAX_DEAD_FRACTION` the arenas must be
        reclaimed — by an in-place compaction (:data:`COMPACT_FACTOR`) when
        that undercuts the rebuild, by a rebuild otherwise.
    num_pairs:
        Measured pair-arena row count (alive + dead) of the index artifact,
        when the caller has one; prices the compaction pass exactly instead
        of extrapolating from the alive estimate.
    threads:
        Executor worker count the kernels will run with.  The dominance
        screens of the incremental skyline pass and the pair-enumeration
        share of the index update divide by :func:`parallel_speedup`; the
        array recomposition, arena merges, and the compaction pass stay
        sequential.
    backend:
        Dispatch backend the kernels will run with (``"thread"`` reproduces
        the PR 7 arithmetic exactly; ``"process"`` applies its efficiency
        constant and dispatch-overhead floor per parallel term).
    """
    n = max(0, int(num_points))
    d = max(2, int(dimensions))
    inserts = max(0, int(num_inserts))
    deletes = max(0, int(num_deletes))
    u = float(num_skyline) if num_skyline is not None else expected_skyline_size(n, d)

    def _speed(work: float) -> float:
        return parallel_speedup(threads, backend=backend, work=work)

    if artifact == "skyline":
        # Insert screen (b_i x u) plus the delete shadow pass — the latter
        # only runs over *deleted skyline* points (an expected u/n fraction
        # of the deletes), each screened against the whole buffer, so its
        # expected mass is deletes * (u/n) * n = deletes * u.  The array
        # recomposition (np.delete + vstack) touches every element once.
        kernel_ops = UPDATE_SKYLINE_FACTOR * d * (inserts + deletes) * u
        compose_ops = 2.0 * n * d
        update_cost = kernel_ops / _speed(kernel_ops) + compose_ops
        sky_work = skyline_cost(n, d)
        rebuild_cost = sky_work / _speed(sky_work)
    elif artifact == "index":
        pairs = 0.5 * u * max(0.0, u - 1.0)
        tree_backend = index_backend or ("cutting" if d >= 3 else "quadtree")
        if d == 2:
            factor = PAIR_BUILD_FACTOR_2D
        elif canonical_method(tree_backend) == "quadtree":
            factor = PAIR_BUILD_FACTOR_QUAD
        else:
            factor = PAIR_BUILD_FACTOR_CUTTING
        pair_work = pairs * max(1, d - 1)
        build_scale = PAIR_BUILD_PARALLEL_SHARE / _speed(pair_work) + (
            1.0 - PAIR_BUILD_PARALLEL_SHARE
        )
        sky_work = skyline_cost(n, d)
        rebuild_cost = (
            sky_work / _speed(sky_work) + pair_work * factor * build_scale
        )
        # Appended pairs: every added/removed slot touches ~u pairs (added
        # slots append alive x new pairs, removed slots retire theirs).
        # The arena-growth share (amortised doubling copies) is priced
        # separately from the kernel work so the estimate tracks the bytes
        # the capacity-doubling arenas actually move.  Pair enumeration
        # rides the parallel kernels; the arena merge and doubling copies
        # are sequential.
        appended_pairs = (inserts + deletes) * max(1.0, u)
        update_cost = appended_pairs * max(1, d - 1) * (
            PAIR_UPDATE_FACTOR * build_scale + ARENA_GROWTH_FACTOR
        )
        if dead_fraction > MAX_DEAD_FRACTION:
            # The arenas must be reclaimed.  An in-place compaction is one
            # renumbering pass over every stored row (alive + dead); a
            # rebuild additionally re-enumerates and re-indexes every pair.
            total_rows = (
                float(num_pairs)
                if num_pairs is not None
                else pairs / max(0.25, 1.0 - dead_fraction)
            )
            compact_cost = COMPACT_FACTOR * total_rows * max(1, d - 1)
            if update_cost + compact_cost < rebuild_cost:
                return UpdatePlan(
                    strategy="compact",
                    artifact="index",
                    update_cost=update_cost + compact_cost,
                    rebuild_cost=rebuild_cost,
                    reason=(
                        f"dead slot fraction {dead_fraction:.2f} exceeds "
                        f"{MAX_DEAD_FRACTION}: in-place compaction "
                        f"({update_cost + compact_cost:.2e}) reclaims the "
                        f"arenas for a fraction of the rebuild "
                        f"({rebuild_cost:.2e} element-ops)"
                    ),
                )
            return UpdatePlan(
                strategy="rebuild",
                artifact="index",
                update_cost=update_cost + compact_cost,
                rebuild_cost=rebuild_cost,
                reason=(
                    f"dead slot fraction {dead_fraction:.2f} exceeds "
                    f"{MAX_DEAD_FRACTION} and a rebuild "
                    f"({rebuild_cost:.2e}) undercuts compaction plus the "
                    f"incremental pass ({update_cost + compact_cost:.2e} "
                    "element-ops)"
                ),
            )
    else:
        raise AlgorithmNotSupportedError(
            f"unknown update artifact {artifact!r}; choose 'skyline' or 'index'"
        )

    if update_cost < rebuild_cost:
        return UpdatePlan(
            strategy="inplace",
            artifact=artifact,
            update_cost=update_cost,
            rebuild_cost=rebuild_cost,
            reason=(
                f"batch of {inserts}+{deletes} rows: incremental maintenance "
                f"({update_cost:.2e}) beats a {artifact} rebuild "
                f"({rebuild_cost:.2e} element-ops)"
            ),
        )
    return UpdatePlan(
        strategy="rebuild",
        artifact=artifact,
        update_cost=update_cost,
        rebuild_cost=rebuild_cost,
        reason=(
            f"batch of {inserts}+{deletes} rows: a fresh {artifact} "
            f"computation ({rebuild_cost:.2e}) undercuts the incremental "
            f"path ({update_cost:.2e} element-ops)"
        ),
    )
