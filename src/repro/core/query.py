"""The :class:`EclipseQuery` facade: one entry point over all four algorithms.

Most users only need this module::

    from repro import EclipseQuery

    query = EclipseQuery(hotels, ratios=(0.25, 2.0))
    result = query.run()                 # transformation algorithm
    result = query.run(method="quad")    # index-based, line quadtree
    print(result.points, result.indices)

The facade owns algorithm selection, ratio-specification coercion (exact
weights, ratio ranges, categories, angles) and, for the index-based methods,
caching of the built :class:`~repro.index.EclipseIndex` so that repeated
queries over the same dataset amortise the build cost — which is the usage
pattern the index-based algorithms are designed for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.baseline import eclipse_baseline_indices
from repro.core.dominance import as_dataset
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import AlgorithmNotSupportedError, InvalidWeightRangeError
from repro.index.eclipse_index import EclipseIndex

#: Canonical method names; several aliases map onto them.
_METHOD_ALIASES = {
    "base": "baseline",
    "baseline": "baseline",
    "tran": "transform",
    "transform": "transform",
    "quad": "quadtree",
    "quadtree": "quadtree",
    "cutting": "cutting",
    "cut": "cutting",
    "auto": "auto",
}


@dataclass(frozen=True)
class EclipseResult:
    """Result of a single eclipse query.

    Attributes
    ----------
    indices:
        Row positions of the eclipse points in the queried dataset, sorted.
    points:
        The eclipse points themselves (rows of the dataset).
    method:
        The algorithm that produced the result (canonical name).
    ratios:
        The ratio vector actually used.
    """

    indices: IndexArray
    points: np.ndarray
    method: str
    ratios: RatioVector

    def __len__(self) -> int:
        return int(self.indices.size)

    def __iter__(self):
        return iter(self.points)

    def index_set(self) -> set:
        """The result indices as a plain Python set (handy in tests)."""
        return set(int(i) for i in self.indices)


class EclipseQuery:
    """Eclipse queries over one dataset with a choice of algorithms.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` with minimisation semantics ("smaller is
        better" on every attribute; see
        :meth:`repro.data.Dataset.to_minimization` for converting
        larger-is-better data).
    ratios:
        Default ratio specification used by :meth:`run` when none is given;
        anything accepted by :func:`repro.core.weights.make_ratio_vector`.
    index_kwargs:
        Extra keyword arguments forwarded to :class:`EclipseIndex` when an
        index-based method is used (e.g. ``capacity`` or ``max_ratio``).
    """

    def __init__(
        self,
        points: ArrayLike2D,
        ratios=None,
        **index_kwargs,
    ):
        self._data = as_dataset(points)
        if ratios is None:
            self._default_ratios = None
        elif self._data.shape[1]:
            # Validated even when the dataset has zero rows: an empty
            # dataset with a known column count still fixes d.
            self._default_ratios = make_ratio_vector(ratios, self._data.shape[1])
        elif isinstance(ratios, RatioVector):
            # Empty dataset with unknown dimensionality: the RatioVector
            # carries its own d, so it must not be silently discarded.
            self._default_ratios = ratios
        else:
            raise InvalidWeightRangeError(
                "cannot infer dimensionality for an empty dataset; "
                "pass a RatioVector explicitly"
            )
        self._index_kwargs = index_kwargs
        self._indexes: Dict[str, EclipseIndex] = {}

    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The queried dataset (a defensive copy is *not* made)."""
        return self._data

    @property
    def num_points(self) -> int:
        """Number of points in the dataset."""
        return int(self._data.shape[0])

    @property
    def dimensions(self) -> int:
        """Dimensionality of the dataset.

        Preserved for empty datasets too: a ``(0, d)`` array still knows its
        column count.
        """
        return int(self._data.shape[1])

    @property
    def default_ratios(self) -> Optional[RatioVector]:
        """The ratio vector supplied at construction time, if any."""
        return self._default_ratios

    # ------------------------------------------------------------------
    def run(self, ratios=None, method: str = "auto") -> EclipseResult:
        """Run an eclipse query and return an :class:`EclipseResult`.

        Parameters
        ----------
        ratios:
            Ratio specification; falls back to the constructor default.
        method:
            ``"auto"`` (default), ``"baseline"``/``"base"``,
            ``"transform"``/``"tran"``, ``"quad"``/``"quadtree"`` or
            ``"cutting"``.  ``"auto"`` uses the transformation algorithm for
            one-shot queries and transparently falls back to the baseline
            when the ratio range makes the transformation inapplicable
            (an upper bound of zero).
        """
        ratio_vector = self._resolve_ratios(ratios)
        canonical = self._canonical_method(method)
        if self.num_points == 0:
            empty = np.empty(0, dtype=np.intp)
            # Indexing with an empty index array keeps the column count, so
            # an empty result over (0, d) data has shape (0, d), not (0, 0).
            return EclipseResult(
                indices=empty,
                points=self._data[empty],
                method=canonical,
                ratios=ratio_vector,
            )

        if canonical == "auto":
            # The corner-score transformation is exact for every ratio range
            # and dimensionality, so it is the default one-shot algorithm.
            canonical = "transform"

        if canonical == "baseline":
            indices = eclipse_baseline_indices(self._data, ratio_vector)
        elif canonical == "transform":
            try:
                indices = eclipse_transform_indices(self._data, ratio_vector)
            except InvalidWeightRangeError:
                indices = eclipse_baseline_indices(self._data, ratio_vector)
                canonical = "baseline"
        elif canonical in ("quadtree", "cutting"):
            index = self._get_index(canonical)
            indices = index.query_indices(ratio_vector)
        else:  # pragma: no cover - guarded by _canonical_method
            raise AlgorithmNotSupportedError(f"unhandled method {canonical!r}")

        indices = np.sort(np.asarray(indices, dtype=np.intp))
        return EclipseResult(
            indices=indices,
            points=self._data[indices],
            method=canonical,
            ratios=ratio_vector,
        )

    def run_indices(self, ratios=None, method: str = "auto") -> IndexArray:
        """Convenience wrapper returning only the result indices."""
        return self.run(ratios=ratios, method=method).indices

    # ------------------------------------------------------------------
    def build_index(self, method: str = "quadtree") -> EclipseIndex:
        """Eagerly build (and cache) the index for an index-based method."""
        canonical = self._canonical_method(method)
        if canonical not in ("quadtree", "cutting"):
            raise AlgorithmNotSupportedError(
                "build_index() accepts only the index-based methods "
                "'quadtree' and 'cutting'"
            )
        return self._get_index(canonical)

    def _get_index(self, canonical: str) -> EclipseIndex:
        if canonical not in self._indexes:
            self._indexes[canonical] = EclipseIndex(
                backend=canonical, **self._index_kwargs
            ).build(self._data)
        return self._indexes[canonical]

    # ------------------------------------------------------------------
    def _resolve_ratios(self, ratios) -> RatioVector:
        if ratios is None:
            if self._default_ratios is None:
                if self.dimensions == 0:
                    raise InvalidWeightRangeError(
                        "a ratio specification is required for an empty dataset"
                    )
                return RatioVector.skyline(self.dimensions)
            return self._default_ratios
        if self.dimensions == 0:
            # Empty dataset with unknown column count: only a RatioVector
            # carries enough information to fix d.
            if isinstance(ratios, RatioVector):
                return ratios
            raise InvalidWeightRangeError(
                "cannot infer dimensionality for an empty dataset; "
                "pass a RatioVector explicitly"
            )
        return make_ratio_vector(ratios, self.dimensions)

    @staticmethod
    def _canonical_method(method: str) -> str:
        try:
            return _METHOD_ALIASES[method.lower()]
        except (KeyError, AttributeError):
            raise AlgorithmNotSupportedError(
                f"unknown eclipse method {method!r}; choose from "
                f"{sorted(set(_METHOD_ALIASES))}"
            ) from None


def eclipse(points: ArrayLike2D, ratios, method: str = "auto") -> np.ndarray:
    """Functional one-liner: the eclipse points of ``points`` under ``ratios``."""
    return EclipseQuery(points).run(ratios=ratios, method=method).points
