"""The :class:`EclipseQuery` facade: one entry point over all four algorithms.

Most users only need this module::

    from repro import EclipseQuery

    query = EclipseQuery(hotels, ratios=(0.25, 2.0))
    result = query.run()                 # transformation algorithm
    result = query.run(method="quad")    # index-based, line quadtree
    print(result.points, result.indices)

Since the plan → session → kernels refactor the facade is a thin shim over a
:class:`~repro.core.session.DatasetSession`: method selection lives in the
cost-model planner (:mod:`repro.core.plan`), artifact caching (skyline
indices, built indexes keyed by their full parameter set) lives in the
session, and this class only preserves the historical constructor/`run`
surface.  Batch workloads should use the session directly —
:meth:`DatasetSession.run_batch` answers many ratio-range queries off one
set of shared artifacts, which is the usage pattern the index-based
algorithms are designed for.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.plan import INDEX_METHODS, QueryPlan, canonical_method
from repro.core.session import DatasetSession, EclipseResult
from repro.core.weights import RatioVector
from repro.errors import AlgorithmNotSupportedError
from repro.index.eclipse_index import EclipseIndex

__all__ = ["EclipseQuery", "EclipseResult", "eclipse"]


class EclipseQuery:
    """Eclipse queries over one dataset with a choice of algorithms.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` with minimisation semantics ("smaller is
        better" on every attribute; see
        :meth:`repro.data.Dataset.to_minimization` for converting
        larger-is-better data).
    ratios:
        Default ratio specification used by :meth:`run` when none is given;
        anything accepted by :func:`repro.core.weights.make_ratio_vector`.
    index_kwargs:
        Extra keyword arguments forwarded to :class:`EclipseIndex` when an
        index-based method is used (e.g. ``capacity`` or ``max_ratio``).
    """

    def __init__(
        self,
        points: ArrayLike2D,
        ratios=None,
        **index_kwargs,
    ):
        self._session = DatasetSession(points, ratios=ratios, index_kwargs=index_kwargs)

    # ------------------------------------------------------------------
    @property
    def session(self) -> DatasetSession:
        """The underlying :class:`DatasetSession` (shared artifacts live here)."""
        return self._session

    @property
    def data(self) -> np.ndarray:
        """The queried dataset (a defensive copy is *not* made)."""
        return self._session.data

    @property
    def num_points(self) -> int:
        """Number of points in the dataset."""
        return self._session.num_points

    @property
    def dimensions(self) -> int:
        """Dimensionality of the dataset.

        Preserved for empty datasets too: a ``(0, d)`` array still knows its
        column count.
        """
        return self._session.dimensions

    @property
    def default_ratios(self) -> RatioVector | None:
        """The ratio vector supplied at construction time, if any."""
        return self._session.default_ratios

    # ------------------------------------------------------------------
    def run(self, ratios=None, method: str = "auto") -> EclipseResult:
        """Run an eclipse query and return an :class:`EclipseResult`.

        Parameters
        ----------
        ratios:
            Ratio specification; falls back to the constructor default.
        method:
            ``"auto"`` (default), ``"baseline"``/``"base"``,
            ``"transform"``/``"tran"``, ``"quad"``/``"quadtree"`` or
            ``"cutting"``.  ``"auto"`` resolves through the cost-model
            planner: the transformation algorithm for one-shot queries, with
            a transparent fallback to the baseline when the ratio range
            makes the transformation inapplicable (an upper bound of zero).
        """
        return self._session.run(ratios=ratios, method=method)

    def run_indices(self, ratios=None, method: str = "auto") -> IndexArray:
        """Convenience wrapper returning only the result indices."""
        return self._session.run_indices(ratios=ratios, method=method)

    def explain(self, method: str = "auto", num_queries: int = 1) -> QueryPlan:
        """Return the :class:`QueryPlan` the session would use (see ``explain()``)."""
        return self._session.plan(method=method, num_queries=num_queries)

    # ------------------------------------------------------------------
    def build_index(self, method: str = "quadtree") -> EclipseIndex:
        """Eagerly build (and cache) the index for an index-based method."""
        canonical = canonical_method(method)
        if canonical not in INDEX_METHODS:
            raise AlgorithmNotSupportedError(
                "build_index() accepts only the index-based methods "
                "'quadtree' and 'cutting'"
            )
        return self._session.index_for(canonical)


def eclipse(points: ArrayLike2D, ratios, method: str = "auto") -> np.ndarray:
    """Functional one-liner: the eclipse points of ``points`` under ``ratios``."""
    return EclipseQuery(points).run(ratios=ratios, method=method).points
