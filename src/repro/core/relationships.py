"""Relationships between eclipse and the classic operators (Figure 4).

Section II-C situates eclipse relative to 1NN, the convex hull query, and
skyline:

* skyline ⊇ eclipse ⊇ {1NN point};
* skyline ⊇ convex hull ⊇ {1NN point};
* eclipse with ``[l, l]`` *is* 1NN, eclipse with ``[0, +inf)`` *is* skyline.

:func:`query_relationships` evaluates all four operators on one dataset so
examples and tests can verify (and visualise) these containments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector, make_ratio_vector
from repro.knn.convex_hull import convex_hull_indices
from repro.knn.linear import nearest_neighbor_index
from repro.skyline.api import skyline_indices


def convex_hull_points(points: ArrayLike2D) -> np.ndarray:
    """Points of the origin-view convex hull (see :mod:`repro.knn.convex_hull`)."""
    data = as_dataset(points)
    return data[convex_hull_indices(data)]


def nearest_neighbor(points: ArrayLike2D, weights: Sequence[float]) -> np.ndarray:
    """The 1NN point for an exact weight vector (Definition 1)."""
    data = as_dataset(points)
    return data[nearest_neighbor_index(data, weights)]


@dataclass(frozen=True)
class RelationshipReport:
    """Result sets of the four operators on one dataset.

    All fields are index arrays into the original dataset; ``nn_index`` is
    ``None`` when no exact weight vector was supplied.
    """

    skyline: IndexArray
    eclipse: IndexArray
    convex_hull: IndexArray
    nn_index: Optional[int]

    @property
    def eclipse_within_skyline(self) -> bool:
        """Eclipse ⊆ skyline (must always hold)."""
        return set(self.eclipse.tolist()) <= set(self.skyline.tolist())

    @property
    def hull_within_skyline(self) -> bool:
        """Convex hull ⊆ skyline (must always hold)."""
        return set(self.convex_hull.tolist()) <= set(self.skyline.tolist())

    @property
    def nn_within_eclipse(self) -> bool:
        """1NN ∈ eclipse whenever the 1NN weights lie inside the ratio range."""
        if self.nn_index is None:
            return True
        return int(self.nn_index) in set(self.eclipse.tolist())


def query_relationships(
    points: ArrayLike2D,
    ratios,
    nn_weights: Optional[Sequence[float]] = None,
) -> RelationshipReport:
    """Run skyline, eclipse, convex hull, and (optionally) 1NN on one dataset.

    Parameters
    ----------
    points:
        Dataset with minimisation semantics.
    ratios:
        Eclipse ratio specification (see
        :func:`repro.core.weights.make_ratio_vector`).
    nn_weights:
        Optional exact weight vector for the 1NN comparison.
    """
    data = as_dataset(points)
    ratio_vector = (
        ratios
        if isinstance(ratios, RatioVector)
        else make_ratio_vector(ratios, data.shape[1])
    )
    sky = skyline_indices(data)
    ecl = eclipse_transform_indices(data, ratio_vector)
    hull = convex_hull_indices(data)
    nn_idx = (
        nearest_neighbor_index(data, nn_weights) if nn_weights is not None else None
    )
    return RelationshipReport(
        skyline=sky, eclipse=ecl, convex_hull=hull, nn_index=nn_idx
    )
