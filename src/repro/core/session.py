"""The session/executor layer: one dataset, memoised artifacts, many queries.

A :class:`DatasetSession` owns one dataset together with every artifact that
can be amortised across queries — the raw-space skyline indices, built
:class:`~repro.index.eclipse_index.EclipseIndex` instances keyed by their
*full* parameter set, and (per batch) one stacked corner-score matrix.  It
executes :class:`~repro.core.plan.QueryPlan` decisions against those
artifacts and keeps :class:`SessionStats` counters so callers (and tests)
can verify how often each expensive artifact was actually built.

The layering is::

    plan (repro.core.plan)      pure cost arithmetic, no data
      ↓
    session (this module)       owns data + memoised artifacts, executes plans
      ↓
    kernels (repro.perf, repro.skyline.kernels, index build kernels)

Single queries (:meth:`DatasetSession.run`) behave exactly like the
algorithms run standalone — no hidden prefilters — so existing semantics and
timings are preserved.  Batches (:meth:`DatasetSession.run_batch`) are where
the sharing happens: one skyline, one corner-score matrix (a single stacked
GEMM over the skyline points for *all* ratio specifications), one index
build, instead of recomputing each per query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.baseline import eclipse_baseline_indices
from repro.core.dominance import as_dataset
from repro.core.plan import (
    INDEX_METHODS,
    QueryPlan,
    UpdatePlan,
    canonical_method,
)
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import (
    AlgorithmNotSupportedError,
    DegenerateHyperplaneError,
    DimensionMismatchError,
    InvalidWeightRangeError,
)
from repro.index.eclipse_index import EclipseIndex
from repro.index.intersection import DEFAULT_MAX_RATIO
from repro.perf.advisor import IndexAdvisor, validate_index_budget
from repro.perf.executor import (
    kernel_context,
    parallel_matmul,
    resolve_backend,
    resolve_threads,
    validate_backend,
    validate_dtype,
    validate_threads,
)
from repro.skyline import incremental as _incremental
from repro.skyline.api import skyline_indices as _skyline_indices


@dataclass(frozen=True)
class EclipseResult:
    """Result of a single eclipse query.

    Attributes
    ----------
    indices:
        Row positions of the eclipse points in the queried dataset, sorted.
    points:
        The eclipse points themselves (rows of the dataset).
    method:
        The algorithm that produced the result (canonical name).
    ratios:
        The ratio vector actually used.
    """

    indices: IndexArray
    points: np.ndarray
    method: str
    ratios: RatioVector

    def __len__(self) -> int:
        return int(self.indices.size)

    def __iter__(self):
        return iter(self.points)

    def index_set(self) -> set:
        """The result indices as a plain Python set (handy in tests)."""
        return set(int(i) for i in self.indices)


@dataclass
class SessionStats:
    """Counters of the expensive artifacts a session has built.

    The batch acceptance contract rides on these: a
    :meth:`DatasetSession.run_batch` over any number of ratio specifications
    must increment ``skyline_builds``, ``corner_matrix_builds`` and
    ``index_builds`` at most once each.

    The dynamic-core contract rides on the update counters:
    ``inserts_applied`` / ``deletes_applied`` count dataset rows,
    ``skyline_inplace_updates`` / ``index_inplace_updates`` count artifacts
    maintained incrementally, ``rebuilds_triggered`` counts artifacts the
    update cost model chose to invalidate instead, and
    ``artifact_invalidations`` counts every artifact dropped or left stale
    by an update batch (cost-model rebuilds, degenerate update failures,
    and artifacts that could not be diffed).

    The amortised-memory contract (PR 5) rides on three more:
    ``arena_grows`` counts buffer reallocations across every cached index's
    capacity-doubling arenas (flat per appended row when the doubling
    amortises), ``compactions`` counts in-place arena compactions taken
    instead of full index rebuilds, and ``index_delta_patches`` counts
    cached indexes patched with a membership diff after a from-scratch
    skyline recompute (indexes that previously would have been dropped).

    The executor telemetry (PR 7) rides on four more, filled in by
    :mod:`repro.perf.executor` whenever the session's kernels run under its
    context: ``parallel_chunks`` counts kernel chunks dispatched to worker
    threads (serial execution dispatches none), ``threads_used`` is the
    largest worker count any dispatch actually used, and
    ``float32_fastpath_hits`` / ``float32_exact_fallbacks`` split the rows
    screened under ``dtype="float32"`` into those decided by strict
    single-precision comparisons and those re-verified with the exact
    float64 kernel (float32 ties — the re-verification is what keeps the
    fast path byte-identical).

    The index-advisor contract (PR 8) rides on five more:
    ``index_builds_skipped`` counts index builds — auto-planned *and*
    pinned (PR 9) — the budgeted advisor declined (the query or batch
    fell back to the exact transformation),
    ``index_evictions`` counts cached indexes dropped to fit the byte
    budget, ``advisor_bytes_resident`` is the exact resident footprint of
    the index cache after the last budget enforcement (arena ``nbytes``
    rollups, headroom included, plus the nominal bytes of memoised
    degenerate-build failures), and ``cost_requests`` / ``cache_hits``
    count the what-if estimator's plan requests and how many were served
    from its memo.

    The process-backend telemetry (PR 9) rides on three more:
    ``process_dispatches`` counts kernel dispatches routed through the
    shared-memory process pool, ``process_chunks`` counts the kernel
    chunks those dispatches carried, and ``shm_peak_bytes`` is the
    largest shared-memory payload (inputs plus outputs) any single
    dispatch exported.  Dispatches that fell back inline — a tiny
    payload under the dispatch gate, a crashed worker, an unpicklable
    kernel — count nothing here; only true cross-process execution does.
    """

    skyline_builds: int = 0
    corner_matrix_builds: int = 0
    index_builds: int = 0
    queries: int = 0
    batches: int = 0
    update_batches: int = 0
    inserts_applied: int = 0
    deletes_applied: int = 0
    skyline_inplace_updates: int = 0
    index_inplace_updates: int = 0
    rebuilds_triggered: int = 0
    artifact_invalidations: int = 0
    arena_grows: int = 0
    compactions: int = 0
    index_delta_patches: int = 0
    parallel_chunks: int = 0
    threads_used: int = 1
    float32_fastpath_hits: int = 0
    float32_exact_fallbacks: int = 0
    index_builds_skipped: int = 0
    index_evictions: int = 0
    advisor_bytes_resident: int = 0
    cost_requests: int = 0
    cache_hits: int = 0
    process_dispatches: int = 0
    process_chunks: int = 0
    shm_peak_bytes: int = 0
    index_build_seconds: float = field(default=0.0, repr=False)

    def artifact_counts(self) -> Tuple[int, int, int]:
        """``(skyline_builds, corner_matrix_builds, index_builds)``."""
        return (self.skyline_builds, self.corner_matrix_builds, self.index_builds)

    def update_counts(self) -> Tuple[int, int, int, int, int]:
        """``(inserts, deletes, inplace_updates, rebuilds, invalidations)``.

        ``inplace_updates`` sums the skyline and index in-place counters —
        the headline number the ``--explain`` surfaces print.
        """
        return (
            self.inserts_applied,
            self.deletes_applied,
            self.skyline_inplace_updates + self.index_inplace_updates,
            self.rebuilds_triggered,
            self.artifact_invalidations,
        )


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`DatasetSession.apply_updates` batch actually did.

    Attributes
    ----------
    generation:
        The session generation after the batch (monotonically increasing;
        the skyline is tagged with the generation it is valid for).
    num_inserted, num_deleted:
        Dataset rows added / removed by the batch.
    skyline_added, skyline_removed:
        Skyline membership churn (``-1`` each when no diff was computed —
        the skyline went stale with no cached index worth patching).
    skyline_plan, index_plans:
        The :class:`~repro.core.plan.UpdatePlan` decisions taken — ``None``
        when no skyline was cached, and one entry per live cached index.
    index_updates, index_invalidations:
        Cached indexes maintained in place / dropped (rebuilt on demand).
    index_compactions:
        Cached indexes whose arenas were compacted in place this batch
        (the ``"compact"`` strategy — a subset of ``index_updates``).
    index_delta_patches:
        Cached indexes patched with the membership diff of a from-scratch
        skyline recompute (the delta-driven path — also a subset of
        ``index_updates``).
    """

    generation: int
    num_inserted: int
    num_deleted: int
    skyline_added: int
    skyline_removed: int
    skyline_plan: Optional[UpdatePlan]
    index_plans: Tuple[UpdatePlan, ...]
    index_updates: int
    index_invalidations: int
    index_compactions: int = 0
    index_delta_patches: int = 0


#: Index-construction parameters that must be part of an index cache key —
#: reusing an index built with different values would silently answer
#: queries with the wrong structure.
_INDEX_PARAM_DEFAULTS = {
    "skyline_method": "auto",
    "max_ratio": DEFAULT_MAX_RATIO,
    "capacity": None,
    "seed": 0,
    "dense_threshold": None,
    "shrink_domain": False,
}


def index_cache_key(backend: str, params: Dict[str, object]) -> Tuple:
    """Normalised cache key of one index configuration.

    Fills in the :class:`~repro.index.eclipse_index.EclipseIndex` defaults so
    an omitted parameter and its explicit default map to the same key, and
    includes *every* build parameter (``capacity``, ``max_ratio``,
    ``dense_threshold``, ``seed``, ``skyline_method``) so changing any of
    them can never silently reuse a stale index.
    """
    unknown = set(params) - set(_INDEX_PARAM_DEFAULTS)
    if unknown:
        raise AlgorithmNotSupportedError(
            f"unknown index parameter(s) {sorted(unknown)}; expected a subset "
            f"of {sorted(_INDEX_PARAM_DEFAULTS)}"
        )
    merged = {**_INDEX_PARAM_DEFAULTS, **params}
    return (
        backend,
        merged["skyline_method"],
        float(merged["max_ratio"]),
        None if merged["capacity"] is None else int(merged["capacity"]),
        merged["seed"],
        None if merged["dense_threshold"] is None else int(merged["dense_threshold"]),
        bool(merged["shrink_domain"]),
    )


class DatasetSession:
    """One dataset plus its memoised query artifacts.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` with minimisation semantics.
    ratios:
        Default ratio specification used when a query gives none; anything
        accepted by :func:`repro.core.weights.make_ratio_vector`.
    index_kwargs:
        Default :class:`~repro.index.eclipse_index.EclipseIndex` parameters
        for the index-based methods (e.g. ``capacity`` or ``max_ratio``).
    threads:
        Worker-thread count for the chunked kernels (dominance screens,
        corner GEMMs, pairwise-intersection builds, batched tree probes).
        ``None`` defers to the ``REPRO_KERNEL_THREADS`` environment
        variable (default 1 — the exact serial code path); answers are
        byte-identical at every thread count.
    backend:
        Where those kernel chunks run: ``"thread"`` (default — the shared
        thread pool), ``"process"`` (the shared-memory process pool, true
        multi-core execution past the GIL for kernels that publish a
        shared-memory description), or ``"serial"`` (force inline).
        ``None`` defers to the ``REPRO_KERNEL_BACKEND`` environment
        variable; answers are byte-identical on every backend.
    dtype:
        Kernel compute dtype: ``"float64"`` (default) or ``"float32"`` for
        the opt-in fast path whose near-tie rows are re-verified exactly —
        results stay byte-identical to the float64 path.
    index_budget_bytes:
        Resident byte budget for the session's index cache (exact arena
        ``nbytes`` rollups, headroom included).  ``None`` defers to the
        ``REPRO_INDEX_BUDGET_MB`` environment variable (unset = unbounded).
        Under a budget the :class:`~repro.perf.advisor.IndexAdvisor`
        decides which indexes to build, keep, delta-patch, or evict;
        answers stay byte-identical whatever it decides — an evicted index
        is rebuilt (or the planner falls back to the transformation) on
        next use.
    """

    #: Class-level knob defaults so sessions unpickled from snapshots taken
    #: before these attributes existed still resolve them.
    _threads: Optional[int] = None
    _dtype: Optional[str] = None
    _backend: Optional[str] = None
    _index_budget_bytes: Optional[int] = None
    _advisor: Optional[IndexAdvisor] = None

    def __init__(
        self,
        points: ArrayLike2D,
        ratios=None,
        index_kwargs: Optional[Dict[str, object]] = None,
        threads: Optional[int] = None,
        dtype: Optional[str] = None,
        backend: Optional[str] = None,
        index_budget_bytes: Optional[int] = None,
    ):
        self._data = as_dataset(points)
        self.configure_kernels(
            threads=threads,
            dtype=dtype,
            backend=backend,
            index_budget_bytes=index_budget_bytes,
        )
        if ratios is None:
            self._default_ratios = None
        elif self._data.shape[1]:
            # Validated even when the dataset has zero rows: an empty
            # dataset with a known column count still fixes d.
            self._default_ratios = make_ratio_vector(ratios, self._data.shape[1])
        elif isinstance(ratios, RatioVector):
            # Empty dataset with unknown dimensionality: the RatioVector
            # carries its own d, so it must not be silently discarded.
            self._default_ratios = ratios
        else:
            raise InvalidWeightRangeError(
                "cannot infer dimensionality for an empty dataset; "
                "pass a RatioVector explicitly"
            )
        self._index_kwargs = dict(index_kwargs or {})
        # Validate eagerly so typos fail at construction, not first use.
        index_cache_key("auto", self._index_kwargs)
        self._skyline_idx: Optional[np.ndarray] = None
        self._indexes: Dict[Tuple, EclipseIndex] = {}
        # Generation-counter invalidation (dynamic core): the session
        # generation advances on every update batch, and the skyline is
        # tagged with the generation it is valid for.  In-place maintenance
        # re-tags it; a rebuild decision simply leaves the tag stale, and
        # the accessor treats a stale skyline as absent (lazy invalidation
        # — no eager recompute between updates).  Indexes that are not
        # maintained in place are dropped *eagerly* instead: a stale index
        # would pin its O(u^2) pair arenas and the pre-update dataset.
        self._generation = 0
        self._skyline_generation = 0
        # Index configurations whose build failed on unsplittable duplicate
        # hyperplanes: degeneracy is a property of the dataset + parameters,
        # so the (expensive, doomed) build is never re-attempted.  Cleared
        # on updates — the dataset changed.
        self._degenerate_index_keys: Dict[Tuple, DegenerateHyperplaneError] = {}
        self.stats = SessionStats()
        self.last_plan: Optional[QueryPlan] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The queried dataset (a defensive copy is *not* made)."""
        return self._data

    @property
    def num_points(self) -> int:
        """Number of points in the dataset."""
        return int(self._data.shape[0])

    @property
    def dimensions(self) -> int:
        """Dimensionality of the dataset (preserved for empty datasets)."""
        return int(self._data.shape[1])

    @property
    def default_ratios(self) -> Optional[RatioVector]:
        """The ratio vector supplied at construction time, if any."""
        return self._default_ratios

    @property
    def generation(self) -> int:
        """Update-batch counter; artifacts are valid for one generation."""
        return self._generation

    @property
    def threads(self) -> Optional[int]:
        """The configured kernel thread count (``None`` = environment/serial)."""
        return self._threads

    @property
    def compute_dtype(self) -> Optional[str]:
        """The configured kernel compute dtype (``None`` = float64)."""
        return self._dtype

    @property
    def kernel_backend(self) -> Optional[str]:
        """The configured kernel backend (``None`` = environment/thread)."""
        return self._backend

    @property
    def index_budget_bytes(self) -> Optional[int]:
        """The configured index byte budget (``None`` = environment/unbounded)."""
        return self._index_budget_bytes

    @property
    def advisor(self) -> IndexAdvisor:
        """The session's index advisor (created lazily for old snapshots)."""
        advisor = self.__dict__.get("_advisor")
        if advisor is None:
            advisor = IndexAdvisor(budget_bytes=self._index_budget_bytes)
            self._advisor = advisor
        return advisor

    def configure_kernels(
        self,
        threads: Optional[int] = None,
        dtype: Optional[str] = None,
        backend: Optional[str] = None,
        index_budget_bytes: Optional[int] = None,
    ) -> None:
        """Set (or reset) the executor and advisor knobs, validating eagerly.

        Also used by the service worker after a snapshot load, so a
        restored session picks up the *service's* current configuration
        instead of whatever was pickled — the snapshot-era budget loses to
        the service config, matching the ``threads``/``dtype`` precedence.
        """
        self._threads = validate_threads(threads)
        self._dtype = validate_dtype(dtype)
        self._backend = validate_backend(backend)
        self._index_budget_bytes = validate_index_budget(index_budget_bytes)
        advisor = self.__dict__.get("_advisor")
        if advisor is not None:
            advisor.budget_bytes = self._index_budget_bytes

    def index_cache_nbytes(self) -> int:
        """Exact resident bytes of every cached index (headroom included)."""
        return int(sum(index.nbytes() for index in self._indexes.values()))

    def _kernel_scope(self):
        """Ambient executor context for one session operation.

        Installs the session's ``threads``/``dtype`` knobs and its stats
        object as the telemetry sink, so kernels reached through deep call
        chains (skyline API, index builds, tree probes) resolve them
        without any keyword threading.
        """
        return kernel_context(
            threads=self._threads,
            dtype=self._dtype,
            stats=self.stats,
            backend=self._backend,
        )

    # ------------------------------------------------------------------
    # Memoised artifacts
    # ------------------------------------------------------------------
    def _skyline_cached(self) -> bool:
        """Is the memoised skyline valid for the current generation?"""
        return (
            self._skyline_idx is not None
            and self._skyline_generation == self._generation
        )

    def skyline(self) -> IndexArray:
        """Raw-space skyline indices of the dataset (computed once).

        Every substrate returns identical indices, so one cached result
        serves all callers regardless of which substrate a plan names.
        Under updates the cached result is either maintained in place by
        :meth:`apply_updates` or left stale (generation mismatch), in which
        case this accessor recomputes it from scratch.
        """
        if not self._skyline_cached():
            with self._kernel_scope():
                self._skyline_idx = _skyline_indices(self._data, method="auto")
            self._skyline_generation = self._generation
            self.stats.skyline_builds += 1
        return self._skyline_idx

    def index_for(self, backend: str = "quadtree", **overrides) -> EclipseIndex:
        """Return (building and caching if needed) the index for ``backend``.

        ``overrides`` replace the session's default ``index_kwargs`` for
        this lookup only.  The cache key covers the backend *and* every
        build parameter, so asking for a different ``capacity``,
        ``max_ratio`` or ``dense_threshold`` builds a fresh index instead of
        silently reusing a stale one.
        """
        canonical = canonical_method(backend)
        if canonical not in INDEX_METHODS:
            raise AlgorithmNotSupportedError(
                f"index_for() accepts only the index-based methods "
                f"{INDEX_METHODS}, got {backend!r}"
            )
        params = {**self._index_kwargs, **overrides}
        key = index_cache_key(canonical, params)
        cached_failure = self._degenerate_index_keys.get(key)
        if cached_failure is not None:
            raise cached_failure
        index = self._indexes.get(key)
        built_now = False
        if index is None:
            # The memoised skyline is computed with the planner's substrate;
            # an explicit skyline_method override must actually be honoured,
            # so in that case the build runs its own skyline computation
            # with the requested substrate (the indices are identical).
            override_substrate = params.get("skyline_method", "auto") != "auto"
            precomputed = None if override_substrate else self.skyline()
            start = time.perf_counter()
            try:
                with self._kernel_scope():
                    index = EclipseIndex(backend=canonical, **params).build(
                        self._data, skyline_idx=precomputed
                    )
            except DegenerateHyperplaneError as exc:
                self._degenerate_index_keys[key] = exc
                self.advisor.on_failure(key)
                self._enforce_index_budget()
                raise
            self.stats.index_build_seconds += time.perf_counter() - start
            self.stats.index_builds += 1
            self._indexes[key] = index
            built_now = True
        # Benefit bookkeeping: a build is worth its own construction cost
        # (keeping it resident saves the rebuild), an access is worth the
        # per-query saving over the best index-free method.  Both come from
        # the memoised what-if estimator, so the hot path stays cheap.
        estimate = self.advisor.cost_model.plan_query(
            self.num_points,
            max(2, self.dimensions),
            method=canonical,
            num_queries=1,
            num_skyline=(
                int(self._skyline_idx.size) if self._skyline_cached() else None
            ),
            threads=resolve_threads(self._threads),
            backend=resolve_backend(self._backend),
        ).estimate_for(canonical)
        if built_now:
            self.advisor.on_built(key, index.nbytes(), build_cost=estimate.build)
        else:
            self.advisor.credit(key, estimate.build, nbytes=index.nbytes())
        self._enforce_index_budget()
        return index

    def _enforce_index_budget(self) -> None:
        """Evict cached indexes (and memoised failures) to fit the budget.

        The advisor ranks residents by decayed benefit-per-byte over their
        exact ``nbytes`` rollups and names the evictions; this method
        applies them to the session's caches.  With no budget in force it
        still refreshes the resident-bytes telemetry.  A just-evicted index
        is rebuilt on next use (or the planner falls back to the
        transformation), so answers never depend on what happens here.
        """
        advisor = self.advisor
        sizes = {key: index.nbytes() for key, index in self._indexes.items()}
        for key in advisor.enforce(sizes):
            if key in self._indexes:
                del self._indexes[key]
                self.stats.index_evictions += 1
            elif key in self._degenerate_index_keys:
                del self._degenerate_index_keys[key]
        self.stats.advisor_bytes_resident = advisor.bytes_resident
        self.stats.index_builds_skipped = advisor.builds_skipped
        self.stats.cost_requests = advisor.cost_model.cost_requests
        self.stats.cache_hits = advisor.cost_model.cache_hits

    # ------------------------------------------------------------------
    # Dynamic updates
    # ------------------------------------------------------------------
    def apply_updates(self, inserts=None, deletes=None) -> UpdateReport:
        """Apply one batch of point inserts/deletes to the session dataset.

        Parameters
        ----------
        inserts:
            ``(b, d)`` array of points to append (or ``None``).
        deletes:
            Positions (in the *current* dataset) of rows to remove (or
            ``None``).  Deletes are applied first, then the inserts are
            appended, matching ``np.vstack([np.delete(data, deletes,
            axis=0), inserts])``.

        Every memoised artifact is either maintained **in place** — the
        skyline through the incremental kernels of
        :mod:`repro.skyline.incremental`, each cached
        :class:`~repro.index.eclipse_index.EclipseIndex` through its
        ``delete_points``/``insert_points`` arenas — or **invalidated**,
        per artifact, as decided by the
        :func:`~repro.core.plan.plan_update` cost arm.  The session
        generation counter advances either way.  Two escalation paths keep
        artifacts alive where PR 4 dropped them: when the skyline arm picks
        a rebuild *and* indexes are cached, the recompute happens eagerly
        and each index is patched with the old-vs-new **membership diff**
        (:func:`repro.skyline.incremental.membership_delta`) instead of
        being dropped; and when an index's dead-slot fraction trips
        :data:`~repro.core.plan.MAX_DEAD_FRACTION`, its arenas are
        **compacted in place** (:meth:`EclipseIndex.compact`) rather than
        rebuilt, when the cost arm finds that cheaper.  Invalidation, when
        it still happens, is lazy for the skyline (the tag goes stale; the
        next access recomputes) and eager for indexes (a stale index would
        pin its pair arenas and the pre-update dataset), so batched queries
        keep amortising whatever survived the update and rebuild the rest
        on demand.

        An in-place index update that trips over unsplittable coincident
        duplicate hyperplanes (a
        :class:`~repro.errors.DegenerateHyperplaneError` from a subtree
        rebuild) drops that index instead of failing the batch; the next
        access re-attempts a full build, which memoises the degeneracy and
        lets auto-planned batches fall back to the transformation, exactly
        as for a degenerate initial build.
        """
        n_old = self.num_points
        delete_positions = _incremental.validate_deletes(n_old, deletes)
        if inserts is None:
            insert_rows = np.empty((0, self.dimensions), dtype=float)
        else:
            insert_rows = as_dataset(inserts)
            if (
                self.dimensions
                and insert_rows.shape[0]
                and insert_rows.shape[1] != self.dimensions
            ):
                raise DimensionMismatchError(
                    f"inserted points have d={insert_rows.shape[1]}, "
                    f"dataset has d={self.dimensions}"
                )
        if delete_positions.size == 0 and insert_rows.shape[0] == 0:
            # True no-op: artifacts stay valid, the generation stands still.
            return UpdateReport(
                generation=self._generation,
                num_inserted=0,
                num_deleted=0,
                skyline_added=0,
                skyline_removed=0,
                skyline_plan=None,
                index_plans=(),
                index_updates=0,
                index_invalidations=0,
            )

        self.stats.update_batches += 1
        next_generation = self._generation + 1
        num_inserts = int(insert_rows.shape[0])
        num_deletes = int(delete_positions.size)
        n_new = n_old - num_deletes + num_inserts
        dims = insert_rows.shape[1] if num_inserts else self.dimensions

        # --- skyline: maintain in place, recompute-and-diff, or go stale --
        skyline_plan: Optional[UpdatePlan] = None
        delta: Optional[_incremental.SkylineDelta] = None
        delta_from_recompute = False
        if self._skyline_cached():
            skyline_plan = self.advisor.cost_model.plan_update(
                n_new,
                max(2, dims),
                num_inserts,
                num_deletes,
                num_skyline=int(self._skyline_idx.size),
                artifact="skyline",
                threads=resolve_threads(self._threads),
                backend=resolve_backend(self._backend),
            )
            if skyline_plan.inplace:
                with self._kernel_scope():
                    new_data, delta = _incremental.apply_updates(
                        self._data, self._skyline_idx, insert_rows, delete_positions
                    )
            else:
                self.stats.rebuilds_triggered += 1
        if delta is None:
            new_data = _incremental.compose_updated_data(
                self._data, delete_positions, insert_rows
            )
            if self._indexes and self._skyline_cached():
                # Delta-driven index maintenance: the cost arm judged a
                # fresh skyline computation cheaper than the incremental
                # kernels, but the *membership churn* is usually still
                # small — so pay the recompute now (it was due lazily on
                # the next access anyway), diff old-vs-new membership, and
                # let each cached index be patched with the (small)
                # insert/delete sets below instead of dropping them all.
                old_is_sky = np.zeros(n_old, dtype=bool)
                old_is_sky[self._skyline_idx] = True
                with self._kernel_scope():
                    new_sky = _skyline_indices(new_data, method="auto")
                self.stats.skyline_builds += 1
                new_is_sky = np.zeros(new_data.shape[0], dtype=bool)
                new_is_sky[new_sky] = True
                delta = _incremental.membership_delta(
                    n_old, delete_positions, old_is_sky, new_is_sky
                )
                delta_from_recompute = True
            elif self._skyline_cached():
                # Stale tag, no index to patch: recompute lazily on access.
                self.stats.artifact_invalidations += 1

        # --- cached indexes: per-index update/compact/rebuild decision ----
        remap = _incremental.remap_after_delete(n_old, delete_positions)
        index_plans = []
        index_updates = 0
        index_invalidations = 0
        index_compactions = 0
        index_delta_patches = 0
        for key in list(self._indexes):
            if delta is None:
                # No skyline diff — the index cannot be maintained.  Drop
                # it now rather than lazily: a stale index would pin its
                # O(u^2) pair arenas and the pre-update dataset until the
                # same cache key happened to be queried again.
                del self._indexes[key]
                index_invalidations += 1
                self.stats.artifact_invalidations += 1
                continue
            index = self._indexes[key]
            alive = index.num_skyline_points
            dead = index.num_dead_slots
            removed = int(delta.removed_old.size)
            added = int(delta.added.size)
            dead_fraction = (dead + removed) / max(1, alive + dead + added)
            # The keep-vs-patch-vs-rebuild arm flows through the advisor's
            # memoised what-if estimator: a kept index is delta-patched (or
            # compacted) in place whenever the cost model prices that under
            # the rebuild it would otherwise pay on next access.
            index_plan = self.advisor.cost_model.plan_update(
                n_new,
                max(2, dims),
                added,
                removed,
                num_skyline=alive,
                artifact="index",
                index_backend=key[0],
                dead_fraction=dead_fraction,
                num_pairs=index.intersection_index.num_pairs,
                threads=resolve_threads(self._threads),
                backend=resolve_backend(self._backend),
            )
            index_plans.append(index_plan)
            if not index_plan.inplace:
                del self._indexes[key]
                self.stats.rebuilds_triggered += 1
                self.stats.artifact_invalidations += 1
                index_invalidations += 1
                continue
            grows_before = index.arena_grows
            try:
                with self._kernel_scope():
                    index.delete_points(remap, delta.removed_old)
                    if index_plan.compacts:
                        index.compact()
                    index.insert_points(new_data, delta.added)
            except DegenerateHyperplaneError:
                # The arrivals piled coincident duplicates into one cell.
                # Drop the index; the next access re-attempts a full build
                # (memoising the degeneracy if it is global).
                del self._indexes[key]
                self.stats.artifact_invalidations += 1
                index_invalidations += 1
                continue
            except BaseException:
                # Any other failure (memory pressure, interrupt) may leave
                # the index half-updated against a dataset the session has
                # not committed yet; drop it so nothing inconsistent can
                # ever answer a query, then surface the error.
                del self._indexes[key]
                self.stats.artifact_invalidations += 1
                raise
            self.stats.index_inplace_updates += 1
            self.stats.arena_grows += index.arena_grows - grows_before
            index_updates += 1
            if index_plan.compacts:
                self.stats.compactions += 1
                index_compactions += 1
            if delta_from_recompute:
                self.stats.index_delta_patches += 1
                index_delta_patches += 1

        # --- commit -------------------------------------------------------
        self._data = new_data
        self._generation = next_generation
        if delta is not None:
            self._skyline_idx = np.flatnonzero(delta.is_skyline).astype(np.intp)
            self._skyline_generation = next_generation
            if not delta_from_recompute:
                self.stats.skyline_inplace_updates += 1
        self._degenerate_index_keys.clear()
        self.advisor.clear_failures()
        self.stats.inserts_applied += num_inserts
        self.stats.deletes_applied += num_deletes
        # Patched arenas may have grown (or compacted); re-measure and evict
        # under the budget before the batch commits to the caller.
        self._enforce_index_budget()
        return UpdateReport(
            generation=self._generation,
            num_inserted=num_inserts,
            num_deleted=num_deletes,
            skyline_added=-1 if delta is None else int(delta.added.size),
            skyline_removed=-1 if delta is None else int(delta.removed_old.size),
            skyline_plan=skyline_plan,
            index_plans=tuple(index_plans),
            index_updates=index_updates,
            index_invalidations=index_invalidations,
            index_compactions=index_compactions,
            index_delta_patches=index_delta_patches,
        )

    # ------------------------------------------------------------------
    # Snapshots (warm restart without an index rebuild)
    # ------------------------------------------------------------------
    #: Version of the *session state* layout inside a snapshot payload.
    #: Bump whenever the pickled attribute set changes incompatibly; the
    #: loader rejects any other value so a stale snapshot can never be
    #: silently reinterpreted.
    SNAPSHOT_STATE_VERSION = 2

    def save_snapshot(self, path: str, extra: Optional[Dict[str, object]] = None) -> int:
        """Serialize the whole session — data, arenas, cached indexes — to disk.

        The snapshot captures everything a warm restart needs to answer
        queries without rebuilding anything: the dataset, the memoised
        skyline, every cached :class:`~repro.index.eclipse_index.EclipseIndex`
        (their arenas travel trimmed to the valid prefix), the memoised
        degenerate-build failures, and the generation counters.  ``extra``
        is an opaque caller dict stored alongside (the service layer keeps
        its shard global-id map and last applied sequence number there).

        The file is written atomically behind a magic/version/SHA-256
        header (:mod:`repro.service.snapshot`); returns the byte size.
        """
        from repro.service.snapshot import write_payload

        payload = {
            "kind": "repro-dataset-session",
            "state_version": self.SNAPSHOT_STATE_VERSION,
            "session": self,
            "extra": dict(extra or {}),
        }
        return write_payload(path, payload)

    @classmethod
    def load_snapshot(cls, path: str) -> Tuple["DatasetSession", Dict[str, object]]:
        """Restore a session (and the caller's ``extra`` dict) from a snapshot.

        Raises :class:`~repro.errors.SnapshotError` when the file is
        corrupt, truncated, version-mismatched, or does not actually hold a
        session — callers treat that as "no snapshot" and rebuild cold.
        """
        from repro.errors import SnapshotError
        from repro.service.snapshot import read_payload

        payload = read_payload(path)
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != "repro-dataset-session"
        ):
            raise SnapshotError(
                f"snapshot {path!r} does not hold a DatasetSession payload"
            )
        if payload.get("state_version") != cls.SNAPSHOT_STATE_VERSION:
            raise SnapshotError(
                f"snapshot {path!r} holds session state version "
                f"{payload.get('state_version')!r}, this build reads "
                f"{cls.SNAPSHOT_STATE_VERSION}"
            )
        session = payload["session"]
        if not isinstance(session, cls):
            raise SnapshotError(
                f"snapshot {path!r} decoded to {type(session).__name__}, "
                f"not a {cls.__name__}"
            )
        return session, payload.get("extra", {})

    # ------------------------------------------------------------------
    # Planning and execution
    # ------------------------------------------------------------------
    def plan(
        self,
        method: str = "auto",
        num_queries: int = 1,
    ) -> QueryPlan:
        """Build a :class:`QueryPlan` for this dataset.

        When the skyline has already been computed its measured size feeds
        the cost model, which prices the index methods far more accurately
        than the independence estimate (anticorrelated data has skylines
        orders of magnitude larger).
        """
        num_skyline = (
            int(self._skyline_idx.size) if self._skyline_cached() else None
        )
        # Planning flows through the advisor's memoised what-if estimator:
        # plans are frozen, so repeated workload shapes (the common case on
        # a query stream) are served from the memo, and the estimator's
        # cost_requests/cache_hits counters stay honest.
        plan = self.advisor.cost_model.plan_query(
            self.num_points,
            max(2, self.dimensions),
            method=method,
            num_queries=num_queries,
            num_skyline=num_skyline,
            threads=resolve_threads(self._threads),
            backend=resolve_backend(self._backend),
        )
        self.stats.cost_requests = self.advisor.cost_model.cost_requests
        self.stats.cache_hits = self.advisor.cost_model.cache_hits
        self.last_plan = plan
        return plan

    def run(self, ratios=None, method: str = "auto") -> EclipseResult:
        """Run one eclipse query (same semantics as the standalone algorithms).

        ``"auto"`` resolves through the planner (one-shot → the corner-score
        transformation, with a transparent baseline fallback when the ratio
        range makes the transformation inapplicable).  Single queries never
        use hidden prefilters, so their results and timings match the
        underlying algorithm exactly.
        """
        ratio_vector = self._resolve_ratios(ratios)
        canonical = canonical_method(method)
        if self.num_points == 0:
            return self._empty_result(canonical, ratio_vector)
        if canonical == "auto":
            canonical = self.plan(method="auto", num_queries=1).method
        return self._execute_single(canonical, ratio_vector)

    def run_indices(self, ratios=None, method: str = "auto") -> IndexArray:
        """Convenience wrapper returning only the result indices."""
        return self.run(ratios=ratios, method=method).indices

    def run_batch(
        self,
        ratio_specs: Iterable,
        method: str = "auto",
    ) -> List[EclipseResult]:
        """Answer many ratio-range queries off one session, sharing the work.

        One plan covers the whole batch; the shared artifacts — the raw
        skyline, the stacked corner-score matrix, the built index — are each
        computed at most once (visible in :attr:`stats`):

        * **index methods** — one index build amortised over all queries;
        * **transform** — eclipse points are always raw-space skyline
          points (every corner weight vector is non-negative with at least
          one strictly positive entry), so the batch computes the skyline
          once, maps *only the skyline points* through the corner vectors of
          *all* specifications in a single stacked GEMM, and runs one small
          mapped-space skyline per specification;
        * **baseline** — executed per query (its pairwise structure shares
          nothing), kept for explicit requests.

        Results are positionally parallel to ``ratio_specs`` and identical
        to independent :meth:`run` calls with the same method.  (The only
        theoretical exception is the documented cross-path precision
        boundary: the raw-space prefilter compares coordinates exactly,
        while corner scores are float64 dot products that cannot see
        sub-ulp coordinate differences.  A specification with a zero upper
        bound disables the prefilter for the whole batch, because a zero
        corner weight breaks the "skyline point" guarantee.)
        """
        specs = [self._resolve_ratios(spec) for spec in ratio_specs]
        if not specs:
            return []
        self.stats.batches += 1
        if self.num_points == 0:
            return [self._empty_result(canonical_method(method), rv) for rv in specs]

        # The skyline feeds both the index build and the transform batch —
        # and its measured size makes the plan's index-vs-transform pricing
        # trustworthy — so resolve it before planning.  A pinned baseline
        # batch is the one case that never touches it (its pairwise
        # structure shares nothing), so don't pay for it there.
        if canonical_method(method) != "baseline":
            self.skyline()
        plan = self.plan(method=method, num_queries=len(specs))
        chosen = plan.method

        if chosen in INDEX_METHODS:
            backend = plan.index_backend or chosen
            key = index_cache_key(canonical_method(backend), self._index_kwargs)
            if key not in self._indexes and not self.advisor.should_build(
                plan, pinned=canonical_method(method) != "auto"
            ):
                # Budgeted admission declined the build (projected benefit
                # per byte too thin, or the bytes cannot be made available
                # without displacing better residents).  This gate covers
                # *pinned* index methods too, not just auto: a pinned
                # ``method="cutting"`` names a preference, not a licence to
                # blow the byte budget, and the exact transformation
                # computes the same answers without the build.  The plan is
                # re-recorded so last_plan reflects what actually ran.
                self.stats.index_builds_skipped = self.advisor.builds_skipped
                self.plan(method="transform", num_queries=len(specs))
                return self._run_batch_transform(specs)
            # One batched probe call for the whole batch: the index shares
            # one order-vector GEMM and one intersection-tree traversal
            # across all specifications (see EclipseIndex.query_indices_many).
            try:
                index = self.index_for(backend)
            except DegenerateHyperplaneError:
                if canonical_method(method) != "auto":
                    raise
                # The planner chose an index, but the dataset's intersection
                # hyperplanes are unsplittable coincident duplicates (e.g.
                # collinear points).  Auto mode falls back to the exact
                # transformation instead of surfacing the build error; the
                # failure is memoised per index configuration, and the plan
                # is re-recorded so last_plan reflects what actually ran.
                self.plan(method="transform", num_queries=len(specs))
                return self._run_batch_transform(specs)
            with self._kernel_scope():
                batch_indices = index.query_indices_many(specs)
            results = []
            for ratio_vector, indices in zip(specs, batch_indices):
                indices = np.sort(np.asarray(indices, dtype=np.intp))
                self.stats.queries += 1
                results.append(self._wrap(indices, chosen, ratio_vector))
            # Realised-savings credit for the whole batch: what the best
            # index-free method would have cost minus what the index path
            # paid per query, recency/frequency-weighted in the ledger.
            best_alternative = plan.best_alternative_cost(len(specs))
            if best_alternative is not None:
                saving = best_alternative - plan.estimate_for(
                    chosen
                ).per_query * len(specs)
                self.advisor.credit(key, saving, nbytes=index.nbytes())
            self._enforce_index_budget()
            return results
        if chosen == "transform":
            return self._run_batch_transform(specs)
        return [self._execute_single(chosen, rv) for rv in specs]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run_batch_transform(self, specs: Sequence[RatioVector]) -> List[EclipseResult]:
        if any(np.any(rv.highs <= 0.0) for rv in specs):
            # A zero upper bound produces zero corner weights, for which
            # raw-space dominance no longer implies corner-score dominance;
            # fall back to independent full-dataset transforms.
            return [self._execute_single("transform", rv) for rv in specs]
        sky = self.skyline()
        sky_points = self._data[sky]
        corners_per_spec = 2 ** (self.dimensions - 1)
        all_corners = np.vstack([rv.corner_weight_vectors() for rv in specs])
        with self._kernel_scope():
            # One GEMM for the batch, row-partitioned across the executor's
            # workers (row splits never re-associate partial sums, so the
            # product is byte-identical to the serial one).
            corner_matrix = parallel_matmul(sky_points, all_corners.T)
            self.stats.corner_matrix_builds += 1

            results = []
            for position, ratio_vector in enumerate(specs):
                start = position * corners_per_spec
                mapped = corner_matrix[:, start : start + corners_per_spec]
                local = _skyline_indices(mapped, method="auto")
                indices = np.sort(sky[local])
                self.stats.queries += 1
                results.append(self._wrap(indices, "transform", ratio_vector))
        return results

    def _execute_single(self, method: str, ratio_vector: RatioVector) -> EclipseResult:
        if method == "baseline":
            with self._kernel_scope():
                indices = eclipse_baseline_indices(self._data, ratio_vector)
        elif method == "transform":
            try:
                with self._kernel_scope():
                    indices = eclipse_transform_indices(self._data, ratio_vector)
            except InvalidWeightRangeError:
                with self._kernel_scope():
                    indices = eclipse_baseline_indices(self._data, ratio_vector)
                method = "baseline"
        elif method in INDEX_METHODS:
            key = index_cache_key(canonical_method(method), self._index_kwargs)
            if key not in self._indexes and not self.advisor.should_build(
                self.plan(method=method, num_queries=1), pinned=True
            ):
                # Same budgeted admission as the batch path: a pinned index
                # method on a single query still answers through the exact
                # transformation when the advisor declines the build.
                self.stats.index_builds_skipped = self.advisor.builds_skipped
                self.plan(method="transform", num_queries=1)
                return self._execute_single("transform", ratio_vector)
            index = self.index_for(method)
            with self._kernel_scope():
                indices = index.query_indices(ratio_vector)
        else:  # pragma: no cover - guarded by canonical_method
            raise AlgorithmNotSupportedError(f"unhandled method {method!r}")
        self.stats.queries += 1
        indices = np.sort(np.asarray(indices, dtype=np.intp))
        return self._wrap(indices, method, ratio_vector)

    def _wrap(
        self, indices: IndexArray, method: str, ratio_vector: RatioVector
    ) -> EclipseResult:
        return EclipseResult(
            indices=indices,
            points=self._data[indices],
            method=method,
            ratios=ratio_vector,
        )

    def _empty_result(self, method: str, ratio_vector: RatioVector) -> EclipseResult:
        empty = np.empty(0, dtype=np.intp)
        # Indexing with an empty index array keeps the column count, so an
        # empty result over (0, d) data has shape (0, d), not (0, 0).
        return EclipseResult(
            indices=empty,
            points=self._data[empty],
            method=method,
            ratios=ratio_vector,
        )

    def _resolve_ratios(self, ratios) -> RatioVector:
        if ratios is None:
            if self._default_ratios is None:
                if self.dimensions == 0:
                    raise InvalidWeightRangeError(
                        "a ratio specification is required for an empty dataset"
                    )
                return RatioVector.skyline(self.dimensions)
            return self._default_ratios
        if self.dimensions == 0:
            # Empty dataset with unknown column count: only a RatioVector
            # carries enough information to fix d.
            if isinstance(ratios, RatioVector):
                return ratios
            raise InvalidWeightRangeError(
                "cannot infer dimensionality for an empty dataset; "
                "pass a RatioVector explicitly"
            )
        vector = make_ratio_vector(ratios, self.dimensions)
        if vector.dimensions != self.dimensions:
            raise DimensionMismatchError(
                f"ratio vector is for d={vector.dimensions}, "
                f"dataset has d={self.dimensions}"
            )
        return vector
