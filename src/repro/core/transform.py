"""TRAN: transformation-based eclipse algorithms (Algorithms 2 and 3).

The key insight of Section III is that eclipse dominance can be decided from
finitely many weight vectors (Theorems 1 and 2), so the eclipse query can be
rewritten as a skyline query over transformed points.  Two transformations
are implemented:

* :func:`map_to_corner_scores` — map every point to its scores under all
  ``2^{d-1}`` corner weight vectors.  By Theorem 2, ``p`` eclipse-dominates
  ``p'`` exactly when the corner-score vector of ``p`` Pareto-dominates that
  of ``p'``, so the skyline of the mapped points is *exactly* the eclipse
  set in every dimensionality.  This is the default mapping of
  :func:`eclipse_transform`.

* :func:`map_to_intercept_space` — the paper's intercept mapping: the
  smallest per-axis intercepts of the domination hyperplanes (Algorithm 2
  for ``d = 2``, Algorithm 3 for ``d > 2``).  For two-dimensional data the
  two corner scores and the two intercepts are positive rescalings of each
  other, so this mapping is exact and coincides with the corner-score
  transformation.

**Reproduction note (deviation from the paper).**  For ``d >= 3`` the
intercept mapping uses only ``d`` of the ``2^{d-1}`` corner vectors (the
all-lows vector and the ``d - 1`` single-high vectors).  Dominance on those
``d`` corners does *not* imply dominance on the remaining corners — a point
can be better on every single-high corner yet worse on a corner with two or
more ratios at their upper bounds — so Algorithm 3 as published can prune
points that are eclipse points under Definition 3 (it never adds false
points, because the ``d`` selected corners are a subset of all corners).
``repro`` therefore uses the corner-score mapping by default and keeps the
paper's mapping available via ``mapping="intercept"`` for faithfulness
experiments; ``tests/core/test_transform.py`` and ``EXPERIMENTS.md``
document a concrete counterexample.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import (
    AlgorithmNotSupportedError,
    DimensionMismatchError,
    InvalidWeightRangeError,
)
from repro.skyline.api import skyline_indices

#: Supported mappings of :func:`eclipse_transform`.
MAPPINGS = ("corner", "intercept")


def map_to_corner_scores(points: ArrayLike2D, ratios: RatioVector) -> np.ndarray:
    """Map points to their ``2^{d-1}`` corner weight-vector scores.

    Returns an array of shape ``(n, 2^{d-1})`` whose (minimisation) skyline
    indices are exactly the eclipse indices of the original points
    (Theorem 2: eclipse dominance holds iff the score is no larger at every
    corner weight vector and strictly smaller at one).
    """
    data = as_dataset(points)
    if data.shape[0] == 0:
        return np.empty((0, 2 ** (ratios.dimensions - 1)), dtype=float)
    if ratios.dimensions != data.shape[1]:
        raise DimensionMismatchError(
            f"ratio vector is for d={ratios.dimensions}, dataset has d={data.shape[1]}"
        )
    corners = ratios.corner_weight_vectors()
    return data @ corners.T


def map_to_intercept_space(points: ArrayLike2D, ratios: RatioVector) -> np.ndarray:
    """Map points to their domination-hyperplane intercept vectors.

    Implements Lines 1–3 of Algorithm 2 (``d = 2``) and Lines 1–4 of
    Algorithm 3 (``d > 2``)::

        c[d] = sum_k l_k p[k] + p[d]
        c[j] = (p[d] + h_j p[j] + sum_{k != j} l_k p[k]) / h_j      j < d

    Requires every upper ratio bound ``h_j`` to be strictly positive — with
    ``h_j = 0`` the corresponding domination hyperplane is parallel to axis
    ``j`` and has no finite intercept.

    For ``d = 2`` the skyline of the mapped points is exactly the eclipse
    set (Theorem 4); for ``d >= 3`` it may be a strict subset (see the
    module docstring).
    """
    data = as_dataset(points)
    if data.shape[0] == 0:
        return np.empty((0, ratios.dimensions), dtype=float)
    if ratios.dimensions != data.shape[1]:
        raise DimensionMismatchError(
            f"ratio vector is for d={ratios.dimensions}, dataset has d={data.shape[1]}"
        )
    lows = ratios.lows
    highs = ratios.highs
    if np.any(highs <= 0):
        raise InvalidWeightRangeError(
            "the intercept mapping requires every upper ratio bound to be "
            "strictly positive (h_j > 0)"
        )

    d = data.shape[1]
    mapped = np.empty_like(data)
    # c[d]: the intercept on the last axis given by the all-lows vector.
    mapped[:, d - 1] = data[:, : d - 1] @ lows + data[:, d - 1]
    # c[j]: intercept on axis j given by the vector with h_j at position j
    # and lower bounds elsewhere, normalised by h_j.
    low_part = data[:, : d - 1] @ lows  # sum_k l_k p[k]
    for j in range(d - 1):
        numerator = (
            data[:, d - 1]
            + highs[j] * data[:, j]
            + (low_part - lows[j] * data[:, j])
        )
        mapped[:, j] = numerator / highs[j]
    return mapped


def eclipse_transform_indices(
    points: ArrayLike2D,
    ratios,
    skyline_method: str = "auto",
    mapping: str = "corner",
    collapse_duplicates: bool = False,
) -> IndexArray:
    """Return eclipse indices using the transformation algorithm.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` with minimisation semantics.
    ratios:
        Anything accepted by :func:`repro.core.weights.make_ratio_vector`.
    skyline_method:
        Which skyline substrate to run on the mapped points; ``"auto"``
        (default) selects the two-dimensional sweep when the mapped space is
        two-dimensional and divide-and-conquer otherwise, matching the
        paper's pairing of Algorithms 2 and 3.
    mapping:
        ``"corner"`` (default, exact in every dimensionality) or
        ``"intercept"`` (the paper's Algorithm 3 mapping; exact for
        ``d = 2``, a lower bound on the result set for ``d >= 3`` — see the
        module docstring).
    collapse_duplicates:
        Opt-in fast path for duplicate-heavy data: the skyline of the mapped
        points is computed over unique mapped rows only and re-expanded
        afterwards.  Points with identical mapped rows never dominate each
        other and share the same dominators, so the result is unchanged.
    """
    data = as_dataset(points)
    if data.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    ratio_vector = (
        ratios
        if isinstance(ratios, RatioVector)
        else make_ratio_vector(ratios, data.shape[1])
    )
    if mapping == "corner":
        mapped = map_to_corner_scores(data, ratio_vector)
    elif mapping == "intercept":
        mapped = map_to_intercept_space(data, ratio_vector)
    else:
        raise AlgorithmNotSupportedError(
            f"unknown mapping {mapping!r}; choose from {MAPPINGS}"
        )
    return skyline_indices(
        mapped, method=skyline_method, collapse_duplicates=collapse_duplicates
    )


def eclipse_transform(
    points: ArrayLike2D,
    ratios,
    skyline_method: str = "auto",
    mapping: str = "corner",
    collapse_duplicates: bool = False,
) -> np.ndarray:
    """Return the eclipse points (rows) using the transformation algorithm."""
    data = as_dataset(points)
    return data[
        eclipse_transform_indices(
            data,
            ratios,
            skyline_method=skyline_method,
            mapping=mapping,
            collapse_duplicates=collapse_duplicates,
        )
    ]
