"""Attribute weight-ratio ranges (the eclipse query parameter).

The eclipse operator (Definition 3 in the paper) is parameterised by one
closed interval ``[l_j, h_j]`` per attribute-weight *ratio*
``r[j] = w[j] / w[d]`` for ``j = 1 .. d-1``; the last weight is fixed to
``w[d] = 1``.  This module provides:

* :class:`WeightRange` — a single ``[l, h]`` interval with validation.
* :class:`RatioVector` — the full vector of ``d-1`` intervals, including the
  corner-weight-vector enumeration used by Theorems 1/2 and the baseline
  algorithm, and the selected ``d`` domination vectors used by the
  transformation algorithm (Theorem 6).
* User-facing helpers mirroring Section I and the case-study systems of
  Section V-B: exact weight vectors (1NN), weight intervals
  (eclipse-weight), categorical importance levels (eclipse-category), and
  angle ranges (the ``angle`` parameter of Table IV).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidWeightRangeError

#: Sentinel used to express "no upper bound" on a ratio, which instantiates
#: the skyline end of the eclipse spectrum.  A finite but very large value is
#: used so that corner weight vectors remain ordinary floating point numbers.
RATIO_INFINITY: float = 1e12


class ImportanceCategory(enum.Enum):
    """Categorical relative-importance levels for the eclipse-category system.

    The paper envisions users describing how important attribute ``j`` is
    relative to the last attribute using one of five categories instead of a
    numeric range (Section I and the case study in Section V-B).  The exact
    numeric ranges are not given in the paper; the presets below follow the
    obvious symmetric construction around "similar" (ratio close to 1).
    """

    VERY_IMPORTANT = "very_important"
    IMPORTANT = "important"
    SIMILAR = "similar"
    UNIMPORTANT = "unimportant"
    VERY_UNIMPORTANT = "very_unimportant"


#: Ratio range associated with each categorical importance level.
_CATEGORY_RANGES = {
    ImportanceCategory.VERY_IMPORTANT: (4.0, RATIO_INFINITY),
    ImportanceCategory.IMPORTANT: (1.5, 4.0),
    ImportanceCategory.SIMILAR: (2.0 / 3.0, 1.5),
    ImportanceCategory.UNIMPORTANT: (0.25, 2.0 / 3.0),
    ImportanceCategory.VERY_UNIMPORTANT: (0.0, 0.25),
}


@dataclass(frozen=True)
class WeightRange:
    """A closed interval ``[low, high]`` for one attribute-weight ratio.

    Parameters
    ----------
    low:
        Lower bound ``l_j`` of the ratio ``w[j] / w[d]``.  Must be finite and
        non-negative.
    high:
        Upper bound ``h_j``.  Must satisfy ``high >= low``.  ``math.inf`` is
        accepted and silently clamped to :data:`RATIO_INFINITY`.

    A degenerate range (``low == high``) recovers 1NN semantics on that
    dimension; ``[0, RATIO_INFINITY]`` recovers skyline semantics.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        low = float(self.low)
        high = float(self.high)
        if math.isinf(high):
            high = RATIO_INFINITY
        if math.isnan(low) or math.isnan(high):
            raise InvalidWeightRangeError("weight range bounds must not be NaN")
        if math.isinf(low):
            raise InvalidWeightRangeError("lower ratio bound must be finite")
        if low < 0:
            raise InvalidWeightRangeError(
                f"ratio bounds must be non-negative, got low={low}"
            )
        if high < low:
            raise InvalidWeightRangeError(
                f"invalid ratio range: low={low} > high={high}"
            )
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    @property
    def is_degenerate(self) -> bool:
        """``True`` when ``low == high`` (the 1NN instantiation)."""
        return self.low == self.high

    @property
    def is_unbounded(self) -> bool:
        """``True`` when the range effectively spans ``[0, +inf)``."""
        return self.low == 0.0 and self.high >= RATIO_INFINITY

    @property
    def width(self) -> float:
        """Width ``high - low`` of the interval."""
        return self.high - self.low

    def contains(self, ratio: float) -> bool:
        """Return ``True`` when ``ratio`` lies inside ``[low, high]``."""
        return self.low <= ratio <= self.high

    def as_tuple(self) -> Tuple[float, float]:
        """Return the interval as a plain ``(low, high)`` tuple."""
        return (self.low, self.high)

    def dual_query_interval(self) -> Tuple[float, float]:
        """Return the dual-space query interval ``[-high, -low]``.

        In the dual space of Section IV, a primal ratio range ``[l, h]``
        becomes the x-coordinate range ``[-h, -l]``.
        """
        return (-self.high, -self.low)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.low:g}, {self.high:g}]"


class RatioVector:
    """The attribute weight-ratio range vector of an eclipse query.

    A :class:`RatioVector` bundles ``d - 1`` :class:`WeightRange` intervals,
    one per ratio ``r[j] = w[j]/w[d]``.  It provides the two enumerations of
    weight vectors the algorithms need:

    * :meth:`corner_weight_vectors` — all ``2^{d-1}`` combinations of lower
      and upper bounds (Theorem 2); used by the baseline algorithm and by the
      dominance predicate.
    * :meth:`selected_domination_vectors` — the ``d`` carefully chosen rows of
      the corner matrix used by the transformation algorithm (Theorem 6).
    """

    def __init__(self, ranges: Sequence[WeightRange]):
        ranges = list(ranges)
        if not ranges:
            raise InvalidWeightRangeError(
                "a RatioVector needs at least one weight range (d >= 2)"
            )
        self._ranges: Tuple[WeightRange, ...] = tuple(ranges)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bounds(
        cls, lows: Sequence[float], highs: Sequence[float]
    ) -> "RatioVector":
        """Build a vector from parallel sequences of lower and upper bounds."""
        if len(lows) != len(highs):
            raise InvalidWeightRangeError(
                "lows and highs must have the same length"
            )
        return cls([WeightRange(lo, hi) for lo, hi in zip(lows, highs)])

    @classmethod
    def uniform(cls, low: float, high: float, dimensions: int) -> "RatioVector":
        """Build a vector with the same ``[low, high]`` on every ratio.

        This mirrors the experimental setting of the paper, which uses
        ``r[1] = r[2] = ... = r[d-1]`` throughout Section V.

        Parameters
        ----------
        low, high:
            Shared ratio bounds.
        dimensions:
            Dataset dimensionality ``d`` (not the number of ratios); must be
            at least 2.
        """
        if dimensions < 2:
            raise InvalidWeightRangeError(
                f"eclipse queries need d >= 2 dimensions, got d={dimensions}"
            )
        return cls([WeightRange(low, high)] * (dimensions - 1))

    @classmethod
    def exact(cls, ratios: Sequence[float]) -> "RatioVector":
        """Build a degenerate vector pinning every ratio (1NN semantics)."""
        return cls([WeightRange(r, r) for r in ratios])

    @classmethod
    def skyline(cls, dimensions: int) -> "RatioVector":
        """Build the ``[0, +inf)`` vector that instantiates skyline."""
        return cls.uniform(0.0, RATIO_INFINITY, dimensions)

    @classmethod
    def from_weight_vector(cls, weights: Sequence[float]) -> "RatioVector":
        """Build a degenerate vector from an explicit weight vector ``w``.

        The weights are normalised so that ``w[d] = 1`` and each ratio is
        pinned to ``w[j] / w[d]`` — the 1NN instantiation of eclipse.
        """
        w = np.asarray(list(weights), dtype=float)
        if w.ndim != 1 or w.size < 2:
            raise InvalidWeightRangeError(
                "weight vector must be 1-D with at least two entries"
            )
        if not np.all(np.isfinite(w)):
            raise InvalidWeightRangeError("weight vector must be finite")
        if np.any(w < 0) or w[-1] <= 0:
            raise InvalidWeightRangeError(
                "weights must be non-negative with a strictly positive last weight"
            )
        ratios = w[:-1] / w[-1]
        return cls.exact(ratios.tolist())

    @classmethod
    def from_categories(
        cls, categories: Sequence[ImportanceCategory]
    ) -> "RatioVector":
        """Build a vector from categorical importance levels.

        Each category describes how important attribute ``j`` is relative to
        the last attribute; see :class:`ImportanceCategory`.
        """
        ranges = [WeightRange(*category_to_ratio_range(c)) for c in categories]
        return cls(ranges)

    @classmethod
    def from_angles(
        cls, angle_ranges: Sequence[Tuple[float, float]]
    ) -> "RatioVector":
        """Build a vector from domination-line angle ranges in degrees.

        The ``angle`` rows of Table IV give the angular aperture of the
        domination region; ``angle_range_to_ratio_range`` documents the
        conversion.
        """
        ranges = [
            WeightRange(*angle_range_to_ratio_range(lo, hi))
            for lo, hi in angle_ranges
        ]
        return cls(ranges)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def ranges(self) -> Tuple[WeightRange, ...]:
        """The per-ratio :class:`WeightRange` intervals."""
        return self._ranges

    @property
    def num_ratios(self) -> int:
        """Number of ratios, i.e. ``d - 1``."""
        return len(self._ranges)

    @property
    def dimensions(self) -> int:
        """Dataset dimensionality ``d`` this vector applies to."""
        return len(self._ranges) + 1

    @property
    def lows(self) -> np.ndarray:
        """Array of lower bounds ``(l_1, ..., l_{d-1})``."""
        return np.array([r.low for r in self._ranges], dtype=float)

    @property
    def highs(self) -> np.ndarray:
        """Array of upper bounds ``(h_1, ..., h_{d-1})``."""
        return np.array([r.high for r in self._ranges], dtype=float)

    @property
    def is_exact(self) -> bool:
        """``True`` when every range is degenerate (1NN instantiation)."""
        return all(r.is_degenerate for r in self._ranges)

    @property
    def is_skyline(self) -> bool:
        """``True`` when every range spans ``[0, +inf)`` (skyline)."""
        return all(r.is_unbounded for r in self._ranges)

    def contains(self, ratios: Sequence[float]) -> bool:
        """Return ``True`` when the given ratio vector lies inside all ranges."""
        if len(ratios) != self.num_ratios:
            return False
        return all(rng.contains(r) for rng, r in zip(self._ranges, ratios))

    def widen(self, factor: float) -> "RatioVector":
        """Return a new vector with each range widened multiplicatively.

        Each ``[l, h]`` becomes ``[l / factor, h * factor]``; useful for the
        "relax an exact weight vector into a range with a margin" usage the
        introduction describes.
        """
        if factor < 1:
            raise InvalidWeightRangeError("widening factor must be >= 1")
        return RatioVector(
            [WeightRange(r.low / factor, r.high * factor) for r in self._ranges]
        )

    # ------------------------------------------------------------------
    # Weight-vector enumerations
    # ------------------------------------------------------------------
    def corner_weight_vectors(self) -> np.ndarray:
        """Return the ``(2^{d-1}, d)`` matrix of corner weight vectors.

        Row ``k`` contains one combination of lower/upper ratio bounds plus a
        trailing ``1`` for ``w[d]`` — the "domination vectors" of Theorem 2.
        The enumeration order is binary counting over the ratios with the
        first ratio as the most significant bit (all-lows first, all-highs
        last), which is only relevant for reproducibility of tests.
        """
        k = self.num_ratios
        corners = np.empty((2**k, self.dimensions), dtype=float)
        lows, highs = self.lows, self.highs
        for mask in range(2**k):
            for j in range(k):
                take_high = (mask >> (k - 1 - j)) & 1
                corners[mask, j] = highs[j] if take_high else lows[j]
            corners[mask, k] = 1.0
        return corners

    def selected_domination_vectors(self) -> np.ndarray:
        """Return the ``(d, d)`` matrix of selected domination vectors.

        Theorem 6 shows that ``d`` rows of the corner matrix suffice to
        represent all ``2^{d-1}`` corners: the all-lows row plus, for each
        ratio ``j``, the row with ``h_j`` on position ``j`` and lower bounds
        elsewhere.  These rows define the intercept mapping of the
        transformation algorithm.
        """
        d = self.dimensions
        lows, highs = self.lows, self.highs
        vectors = np.empty((d, d), dtype=float)
        vectors[0, :-1] = lows
        vectors[0, -1] = 1.0
        for j in range(d - 1):
            vectors[j + 1, :-1] = lows
            vectors[j + 1, j] = highs[j]
            vectors[j + 1, -1] = 1.0
        return vectors

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterable[WeightRange]:
        return iter(self._ranges)

    def __getitem__(self, index: int) -> WeightRange:
        return self._ranges[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RatioVector):
            return NotImplemented
        return self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(self._ranges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(r) for r in self._ranges)
        return f"RatioVector({inner})"


# ----------------------------------------------------------------------
# Conversions between user-facing specifications and ratio ranges
# ----------------------------------------------------------------------
def category_to_ratio_range(category: ImportanceCategory) -> Tuple[float, float]:
    """Map a categorical importance level to its ``[l, h]`` ratio range."""
    if not isinstance(category, ImportanceCategory):
        raise InvalidWeightRangeError(
            f"expected an ImportanceCategory, got {category!r}"
        )
    return _CATEGORY_RANGES[category]


def weight_interval_to_ratio_range(
    weight_low: float, weight_high: float
) -> Tuple[float, float]:
    """Convert a two-dimensional weight interval to a ratio range.

    This backs the *eclipse-weight* system of the case study: the user gives
    ``w[1] ∈ [weight_low, weight_high]`` with ``w[2] = 1 - w[1]``; the
    corresponding ratio range is ``[w_low/(1-w_low), w_high/(1-w_high)]``.
    """
    if not (0.0 <= weight_low <= weight_high <= 1.0):
        raise InvalidWeightRangeError(
            "weight interval must satisfy 0 <= low <= high <= 1"
        )
    low = RATIO_INFINITY if weight_low >= 1.0 else weight_low / (1.0 - weight_low)
    high = RATIO_INFINITY if weight_high >= 1.0 else weight_high / (1.0 - weight_high)
    return (low, high)


def ratio_range_to_angle_range(low: float, high: float) -> Tuple[float, float]:
    """Convert a ratio range ``[l, h]`` to a domination-line angle range.

    A domination line with slope ``-r`` makes an angle of
    ``180° - atan(r)`` with the positive x-axis, so the ratio range
    ``[l, h]`` corresponds to the angle range
    ``[180 - atan(h), 180 - atan(l)]`` in degrees.  For example the ratio
    range ``[0.36, 2.75]`` of Table IV maps to roughly ``[110°, 160°]``.
    """
    rng = WeightRange(low, high)  # validates
    angle_low = 180.0 - math.degrees(math.atan(rng.high))
    angle_high = 180.0 - math.degrees(math.atan(rng.low))
    return (angle_low, angle_high)


def angle_range_to_ratio_range(
    angle_low: float, angle_high: float
) -> Tuple[float, float]:
    """Convert a domination-line angle range in degrees to a ratio range.

    Inverse of :func:`ratio_range_to_angle_range`: an angle ``θ`` (measured
    from the positive x-axis, between 90° and 180°) corresponds to the ratio
    ``tan(180° - θ)``.  Angles must satisfy
    ``90 < angle_low <= angle_high <= 180``.
    """
    if not (90.0 < angle_low <= angle_high <= 180.0):
        raise InvalidWeightRangeError(
            "angles must satisfy 90 < low <= high <= 180 degrees"
        )
    high_ratio = math.tan(math.radians(180.0 - angle_low))
    low_ratio = math.tan(math.radians(180.0 - angle_high))
    # Guard against tiny negative values from floating point noise at 180°.
    low_ratio = max(low_ratio, 0.0)
    return (low_ratio, high_ratio)


def make_ratio_vector(
    spec,
    dimensions: int,
) -> RatioVector:
    """Coerce a user-supplied specification into a :class:`RatioVector`.

    Accepted specifications (``d`` is ``dimensions``):

    * an existing :class:`RatioVector` (validated against ``d``);
    * a single ``(low, high)`` pair — applied uniformly to all ratios;
    * a sequence of ``d - 1`` ``(low, high)`` pairs;
    * a sequence of ``d - 1`` :class:`ImportanceCategory` values;
    * ``None`` — the skyline instantiation ``[0, +inf)``.
    """
    if spec is None:
        return RatioVector.skyline(dimensions)
    if isinstance(spec, RatioVector):
        if spec.dimensions != dimensions:
            raise InvalidWeightRangeError(
                f"ratio vector is for d={spec.dimensions}, dataset has d={dimensions}"
            )
        return spec
    if isinstance(spec, WeightRange):
        return RatioVector([spec] * (dimensions - 1))
    spec_list = list(spec)
    if not spec_list:
        raise InvalidWeightRangeError("empty ratio specification")
    if all(isinstance(item, ImportanceCategory) for item in spec_list):
        vector = RatioVector.from_categories(spec_list)
    elif all(isinstance(item, WeightRange) for item in spec_list):
        vector = RatioVector(spec_list)
    elif len(spec_list) == 2 and all(
        isinstance(item, (int, float)) for item in spec_list
    ):
        return RatioVector.uniform(float(spec_list[0]), float(spec_list[1]), dimensions)
    else:
        pairs: List[Tuple[float, float]] = []
        for item in spec_list:
            lo, hi = item
            pairs.append((float(lo), float(hi)))
        vector = RatioVector.from_bounds(
            [p[0] for p in pairs], [p[1] for p in pairs]
        )
    if vector.dimensions != dimensions:
        raise InvalidWeightRangeError(
            f"specification defines {vector.num_ratios} ratios but the dataset "
            f"has d={dimensions} (needs {dimensions - 1})"
        )
    return vector
