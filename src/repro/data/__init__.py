"""Data substrate: dataset container, synthetic generators, NBA dataset.

The evaluation of the paper uses three synthetic distributions — independent
(INDE), correlated (CORR), and anti-correlated (ANTI), generated as in the
skyline-operator paper of Börzsönyi et al. — plus a real NBA dataset of 2384
players with five performance attributes.  The real dataset is not
redistributable, so :func:`generate_nba_dataset` produces a synthetic
stand-in with the same cardinality, dimensionality and correlation structure
(see ``DESIGN.md`` for the substitution rationale).  The degenerate
generator of :mod:`repro.data.worst_case` reproduces the worst-case inputs
of Figures 13 and 14.
"""

from repro.data.dataset import Dataset
from repro.data.generators import (
    generate_anticorrelated,
    generate_correlated,
    generate_dataset,
    generate_independent,
)
from repro.data.nba import NBA_ATTRIBUTES, generate_nba_dataset
from repro.data.worst_case import generate_worst_case

__all__ = [
    "Dataset",
    "generate_anticorrelated",
    "generate_correlated",
    "generate_dataset",
    "generate_independent",
    "NBA_ATTRIBUTES",
    "generate_nba_dataset",
    "generate_worst_case",
]
