"""Dataset container with attribute metadata and orientation handling.

Eclipse, skyline, and kNN all assume "smaller is better" attributes
(distances from an ideal query point at the origin).  Real data — NBA career
statistics, hotel star ratings — is often "larger is better".
:class:`Dataset` keeps the raw values together with per-attribute names and
orientations and converts to the canonical minimisation orientation on
demand, mirroring the paper's treatment of the NBA data (distance to the
ideal player).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro._types import ArrayLike2D
from repro.core.dominance import as_dataset
from repro.errors import DimensionMismatchError, InvalidDatasetError


@dataclass
class Dataset:
    """A named, oriented point set.

    Parameters
    ----------
    values:
        Raw attribute values of shape ``(n, d)``.
    attribute_names:
        Optional names, defaulting to ``attr_1 .. attr_d``.
    larger_is_better:
        Per-attribute orientation flags; ``True`` marks an attribute where a
        larger raw value is preferable (it is flipped by
        :meth:`to_minimization`).  Defaults to all ``False``.
    labels:
        Optional per-point labels (hotel names, player names, ...).
    name:
        Human-readable dataset name used in reports.
    """

    values: np.ndarray
    attribute_names: List[str] = field(default_factory=list)
    larger_is_better: List[bool] = field(default_factory=list)
    labels: Optional[List[str]] = None
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.values = as_dataset(self.values)
        n, d = self.values.shape if self.values.size else (0, 0)
        if not self.attribute_names:
            self.attribute_names = [f"attr_{j + 1}" for j in range(d)]
        if len(self.attribute_names) != d and d:
            raise DimensionMismatchError(
                f"{len(self.attribute_names)} attribute names for d={d} attributes"
            )
        if not self.larger_is_better:
            self.larger_is_better = [False] * d
        if len(self.larger_is_better) != d and d:
            raise DimensionMismatchError(
                f"{len(self.larger_is_better)} orientation flags for d={d} attributes"
            )
        if self.labels is not None and len(self.labels) != n:
            raise InvalidDatasetError(
                f"{len(self.labels)} labels for n={n} points"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        points: ArrayLike2D,
        attribute_names: Optional[Sequence[str]] = None,
        name: str = "dataset",
    ) -> "Dataset":
        """Wrap an already-minimisation-oriented point set."""
        return cls(
            values=as_dataset(points),
            attribute_names=list(attribute_names) if attribute_names else [],
            name=name,
        )

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of points ``n``."""
        return int(self.values.shape[0])

    @property
    def dimensions(self) -> int:
        """Number of attributes ``d``."""
        return int(self.values.shape[1]) if self.values.size else 0

    def __len__(self) -> int:
        return self.num_points

    # ------------------------------------------------------------------
    def to_minimization(self) -> np.ndarray:
        """Return values with every attribute oriented "smaller is better".

        Larger-is-better attributes are flipped with ``max - value`` (the
        distance to the best observed value), the same ideal-point conversion
        the paper applies to the NBA statistics.
        """
        if not self.values.size:
            return self.values.copy()
        converted = self.values.copy()
        for j, flip in enumerate(self.larger_is_better):
            if flip:
                converted[:, j] = self.values[:, j].max() - self.values[:, j]
        return converted

    def normalized(self) -> np.ndarray:
        """Min-max normalise the minimisation-oriented values into ``[0, 1]``.

        Constant attributes map to zero.  Normalisation keeps attribute
        weights comparable across attributes with different scales, which is
        how the ratio presets (categories, angles) are meant to be used.
        """
        data = self.to_minimization()
        if not data.size:
            return data
        mins = data.min(axis=0)
        ranges = data.max(axis=0) - mins
        safe = np.where(ranges > 0, ranges, 1.0)
        return (data - mins) / safe

    def subset(self, indices: Sequence[int]) -> "Dataset":
        """Return a new :class:`Dataset` restricted to ``indices``."""
        idx = np.asarray(list(indices), dtype=np.intp)
        return Dataset(
            values=self.values[idx],
            attribute_names=list(self.attribute_names),
            larger_is_better=list(self.larger_is_better),
            labels=[self.labels[int(i)] for i in idx] if self.labels else None,
            name=self.name,
        )

    def label_of(self, index: int) -> str:
        """Label of the point at ``index`` (falls back to ``point_<index>``)."""
        if self.labels is not None:
            return self.labels[int(index)]
        return f"point_{int(index)}"

    def describe(self) -> str:
        """One-paragraph textual summary used by the CLI and examples."""
        if not self.values.size:
            return f"{self.name}: empty dataset"
        lines = [f"{self.name}: {self.num_points} points x {self.dimensions} attributes"]
        data = self.values
        for j, attr in enumerate(self.attribute_names):
            orientation = "max" if self.larger_is_better[j] else "min"
            lines.append(
                f"  {attr} ({orientation}): "
                f"min={data[:, j].min():.3f} max={data[:, j].max():.3f} "
                f"mean={data[:, j].mean():.3f}"
            )
        return "\n".join(lines)
