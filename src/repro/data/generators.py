"""Synthetic dataset generators: independent, correlated, anti-correlated.

These follow the generation scheme of the skyline-operator paper (Börzsönyi,
Kossmann, Stocker — reference [4] of the eclipse paper), which the eclipse
evaluation reuses for its INDE, CORR, and ANTI datasets:

* **independent** — attribute values drawn i.i.d. uniform in ``[0, 1]``;
* **correlated** — points concentrated around the diagonal: a point that is
  good in one dimension tends to be good in the others, so skylines (and
  eclipses) are small;
* **anti-correlated** — points concentrated around the anti-diagonal plane
  ``Σ x_j ≈ const``: a point that is good in one dimension tends to be bad
  in the others, so skylines are large.  This is the stress case in the
  paper's timing figures.

All generators are deterministic given a seed and return values in
``[0, 1]^d`` with minimisation semantics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AlgorithmNotSupportedError, InvalidDatasetError

#: Standard deviation of the perpendicular jitter for CORR/ANTI data.
_JITTER_SCALE = 0.12


def _validate(n: int, dimensions: int) -> None:
    if n < 0:
        raise InvalidDatasetError("n must be non-negative")
    if dimensions < 1:
        raise InvalidDatasetError("dimensions must be at least 1")


def generate_independent(
    n: int, dimensions: int, seed: Optional[int] = 0
) -> np.ndarray:
    """INDE: i.i.d. uniform attribute values in ``[0, 1]``."""
    _validate(n, dimensions)
    rng = np.random.default_rng(seed)
    return rng.random((n, dimensions))


def generate_correlated(
    n: int, dimensions: int, seed: Optional[int] = 0
) -> np.ndarray:
    """CORR: values clustered around the main diagonal of the unit cube.

    Each point is a common "quality" value shared by all attributes plus a
    small independent jitter, then clipped to ``[0, 1]``.
    """
    _validate(n, dimensions)
    rng = np.random.default_rng(seed)
    base = rng.random((n, 1))
    jitter = rng.normal(scale=_JITTER_SCALE, size=(n, dimensions))
    return np.clip(base + jitter, 0.0, 1.0)


def generate_anticorrelated(
    n: int, dimensions: int, seed: Optional[int] = 0
) -> np.ndarray:
    """ANTI: values clustered around the anti-diagonal plane ``Σ x_j ≈ d/2``.

    Each point starts on the plane (attributes summing to about ``d/2``) and
    receives a small jitter, so being good on one attribute implies being bad
    on the others — the distribution with the largest skylines.
    """
    _validate(n, dimensions)
    rng = np.random.default_rng(seed)
    if n == 0:
        return np.empty((0, dimensions))
    # Sample a point on the simplex {x >= 0, sum x = 1} scaled to sum ~ d/2,
    # then jitter perpendicular noise and clip into the unit cube.
    simplex = rng.dirichlet(np.ones(dimensions), size=n)
    base = simplex * (dimensions / 2.0)
    jitter = rng.normal(scale=_JITTER_SCALE / 2.0, size=(n, dimensions))
    return np.clip(base + jitter, 0.0, 1.0)


_GENERATORS = {
    "independent": generate_independent,
    "inde": generate_independent,
    "correlated": generate_correlated,
    "corr": generate_correlated,
    "anticorrelated": generate_anticorrelated,
    "anti": generate_anticorrelated,
}


def generate_dataset(
    distribution: str, n: int, dimensions: int, seed: Optional[int] = 0
) -> np.ndarray:
    """Generate a dataset by distribution name.

    ``distribution`` accepts both the full names (``"independent"``,
    ``"correlated"``, ``"anticorrelated"``) and the paper's abbreviations
    (``"INDE"``, ``"CORR"``, ``"ANTI"``), case-insensitively.
    """
    key = distribution.lower()
    try:
        generator = _GENERATORS[key]
    except KeyError:
        raise AlgorithmNotSupportedError(
            f"unknown distribution {distribution!r}; choose from "
            "'independent'/'INDE', 'correlated'/'CORR', 'anticorrelated'/'ANTI'"
        ) from None
    return generator(n, dimensions, seed=seed)
