"""Synthetic NBA-player dataset (stand-in for the paper's real NBA data).

The paper's real dataset contains 2384 NBA players with five career
performance attributes — Points (PTS), Rebounds (REB), Assists (AST),
Steals (STL), and Blocks (BLK) — scraped from stats.nba.com in April 2015.
That snapshot is not redistributable and the site is not reachable from an
offline environment, so this module generates a synthetic dataset with the
same cardinality, dimensionality, attribute semantics, positive correlation
structure and heavy-tailed marginals (career totals are dominated by a small
number of long-career stars).  The experiments only depend on those shape
properties: a positively correlated dataset produces small skylines and the
fastest query times of the four datasets, which is exactly the role the NBA
data plays in Figures 10–12.  See ``DESIGN.md`` for the substitution record.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import Dataset

#: The five attributes of the paper's NBA dataset, in order.
NBA_ATTRIBUTES = ("PTS", "REB", "AST", "STL", "BLK")

#: Number of players in the paper's snapshot.
NBA_NUM_PLAYERS = 2384

#: Rough scale (career totals) of each attribute for an average-to-good
#: career, used to set the marginal magnitudes.
_ATTRIBUTE_SCALES = {
    "PTS": 5000.0,
    "REB": 2200.0,
    "AST": 1200.0,
    "STL": 400.0,
    "BLK": 280.0,
}

#: How strongly each attribute follows the shared "career length / quality"
#: factor; the remainder is attribute-specific (position-dependent) noise.
#: The loadings keep all pairwise correlations clearly positive (as in real
#: career totals) while leaving enough positional specialisation that the
#: skyline contains a few dozen players rather than a single superstar.
_SHARED_LOADING = {
    "PTS": 0.65,
    "REB": 0.45,
    "AST": 0.35,
    "STL": 0.50,
    "BLK": 0.25,
}


def generate_nba_dataset(
    n: int = NBA_NUM_PLAYERS,
    seed: Optional[int] = 7,
) -> Dataset:
    """Generate the synthetic NBA dataset.

    Parameters
    ----------
    n:
        Number of players (defaults to the paper's 2384).
    seed:
        Random seed; the default yields the dataset used throughout the
        examples, tests and benchmarks of this reproduction.

    Returns
    -------
    Dataset
        A :class:`~repro.data.dataset.Dataset` whose five attributes are all
        "larger is better"; call :meth:`~repro.data.dataset.Dataset.to_minimization`
        (or :meth:`~repro.data.dataset.Dataset.normalized`) before running
        eclipse/skyline queries.
    """
    rng = np.random.default_rng(seed)
    # Shared career factor: log-normal so a few players have very long,
    # productive careers (the heavy tail of career-total statistics).
    career = rng.lognormal(mean=0.0, sigma=0.9, size=n)
    career /= career.mean()

    columns = []
    for attr in NBA_ATTRIBUTES:
        loading = _SHARED_LOADING[attr]
        specific = rng.lognormal(mean=0.0, sigma=0.7, size=n)
        specific /= specific.mean()
        mix = loading * career + (1.0 - loading) * specific
        values = _ATTRIBUTE_SCALES[attr] * mix
        # Round to whole career totals and clip at zero.
        columns.append(np.clip(np.round(values), 0, None))
    values = np.column_stack(columns)

    labels = [f"player_{i:04d}" for i in range(n)]
    return Dataset(
        values=values,
        attribute_names=list(NBA_ATTRIBUTES),
        larger_is_better=[True] * len(NBA_ATTRIBUTES),
        labels=labels,
        name="nba-synthetic",
    )


def nba_minimization_points(
    n: int = NBA_NUM_PLAYERS,
    dimensions: int = len(NBA_ATTRIBUTES),
    seed: Optional[int] = 7,
    normalize: bool = True,
) -> np.ndarray:
    """Convenience helper: NBA data ready for eclipse/skyline queries.

    Returns the first ``dimensions`` attributes (the experiments of the paper
    use ``d = 3`` by default) converted to minimisation orientation and,
    optionally, min-max normalised.
    """
    dataset = generate_nba_dataset(n=n, seed=seed)
    data = dataset.normalized() if normalize else dataset.to_minimization()
    return data[:, :dimensions]
