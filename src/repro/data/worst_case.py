"""Degenerate datasets for the worst-case experiments (Figures 13 and 14).

Section V-E evaluates QUAD and CUTTING on inputs where "all the lines almost
lie in the same quadrant": the dual lines of the skyline points intersect
inside a tiny cluster, so the quadtree keeps splitting the same quadrant and
degenerates to linear depth while the cutting tree (whose split positions
follow the data) stays balanced.

The generator places points on an almost-flat convex curve (or convex
hypersurface for ``d > 2``)::

    p[d] = offset - slope * sum_j p[j] + curvature * sum_j p[j]^2

Every generated point is a skyline point (the surface is strictly convex and
decreasing), and because the surface gradient is nearly constant at
``-slope`` everywhere, every pairwise dual-space intersection falls near the
dual location ``x_j ≈ -slope`` — the clustering that defeats midpoint-based
subdivision.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import InvalidDatasetError


def generate_worst_case(
    n: int,
    dimensions: int,
    slope: float = 1.0,
    curvature: float = 1e-3,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Generate ``n`` points whose dual intersections cluster near one location.

    Parameters
    ----------
    n:
        Number of points (all of them are skyline points).
    dimensions:
        Dataset dimensionality ``d`` (at least 2).
    slope:
        Common magnitude of the surface gradient; the dual intersections
        cluster around ``x_j = -slope``, so the default of 1 lands inside
        every ratio range used in the paper's experiments.
    curvature:
        Strength of the convex perturbation.  Smaller values concentrate the
        intersections more tightly (a value of 0 would collapse the points
        onto a hyperplane and make them mutually non-dominating duplicates
        in the dual, which is no longer a meaningful worst case).
    seed:
        Random seed for the first ``d - 1`` coordinates.
    """
    if dimensions < 2:
        raise InvalidDatasetError("the worst-case generator needs d >= 2")
    if n < 0:
        raise InvalidDatasetError("n must be non-negative")
    if curvature <= 0:
        raise InvalidDatasetError("curvature must be strictly positive")
    rng = np.random.default_rng(seed)
    if n == 0:
        return np.empty((0, dimensions))
    head = rng.random((n, dimensions - 1))
    quadratic = np.sum(head**2, axis=1)
    linear = np.sum(head, axis=1)
    # Choose the offset so every last coordinate stays strictly positive.
    offset = slope * (dimensions - 1) + 1.0
    last = offset - slope * linear + curvature * quadratic
    return np.column_stack([head, last])
