"""Exception hierarchy for the eclipse reproduction library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so downstream users can catch a single base class while
still being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidWeightRangeError(ReproError, ValueError):
    """Raised when an attribute weight-ratio range is malformed.

    Examples include a lower bound greater than the upper bound, a negative
    bound, or a number of ranges inconsistent with the dataset dimensionality.
    """


class InvalidDatasetError(ReproError, ValueError):
    """Raised when a dataset cannot be interpreted as an ``(n, d)`` array.

    Datasets must be two-dimensional, contain at least one attribute column,
    hold only finite values, and (for eclipse/skyline semantics) use the
    "smaller is better" orientation.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Raised when a query's dimensionality disagrees with the dataset."""


class IndexNotBuiltError(ReproError, RuntimeError):
    """Raised when querying an :class:`~repro.index.EclipseIndex` before
    :meth:`~repro.index.EclipseIndex.build` completed."""


class AlgorithmNotSupportedError(ReproError, ValueError):
    """Raised when an unknown algorithm/method name is requested."""


class DegenerateHyperplaneError(InvalidDatasetError):
    """Raised when an index build meets unsplittable duplicate hyperplanes.

    Coincident intersection hyperplanes (e.g. from collinear input points)
    can never be separated by spatial splits; a tree build that would chase
    them to its depth cap raises this instead of silently constructing a
    maximal-depth tree.  The scan backend handles such inputs exactly.
    """


class EmptyDatasetError(InvalidDatasetError):
    """Raised when an operation that requires at least one point receives an
    empty dataset."""


class ServiceError(ReproError, RuntimeError):
    """Base class for errors raised by the concurrent query service layer.

    Everything the supervisor cannot hide behind a retry — a request that
    exhausted its retry budget, a worker that cannot be respawned, a closed
    service — surfaces as a subclass of this.
    """


class SnapshotError(ServiceError):
    """Raised when a session snapshot file cannot be trusted.

    Covers truncated files, checksum mismatches, unknown format versions and
    undecodable payloads.  Recovery code treats this as "snapshot absent":
    the session is rebuilt cold from authoritative data plus the write-ahead
    log, never from the suspect bytes.
    """


class FrameError(ServiceError):
    """Raised when a wire frame of the network front end cannot be trusted.

    ``recoverable`` distinguishes damage the connection can survive (an
    intact header with a bad payload — the stream re-synchronises at the
    next frame) from damage that desynchronises the stream entirely (bad
    magic, unknown protocol version), after which the connection must be
    closed.  ``kind`` carries the frame kind when the header yielded one.
    """

    def __init__(self, message: str, recoverable: bool = False, kind=None):
        super().__init__(message)
        self.recoverable = bool(recoverable)
        self.kind = kind


class ConnectionLostError(ServiceError):
    """Raised by the network client when a server connection died mid-use.

    The client retries transparently (reconnect + idempotent resend); this
    escapes to the caller only once the retry budget is spent.
    """


class ServerBusyError(ServiceError):
    """Raised when the server shed the connection (at capacity or draining).

    The client treats this as retryable with backoff; it escapes to the
    caller only once the retry budget is spent.
    """


class DeadlineExceededError(ServiceError):
    """Raised when a service request missed its per-request deadline.

    The supervisor converts worker-level deadline misses into retries (after
    respawning the worker); this escapes to the caller only once the retry
    budget is spent.
    """


class WorkerCrashError(ServiceError):
    """Raised when a shard worker died (or its pipe broke) mid-request.

    Like :class:`DeadlineExceededError` this is retried internally and only
    reaches the caller when the worker keeps dying past the retry budget.
    """
