"""Experiment harness regenerating every table and figure of the paper.

Each experiment of Section V has a dedicated runner:

* :func:`run_user_study` — Table V (simulated respondents).
* :func:`run_count_vs_n`, :func:`run_count_vs_d`, :func:`run_count_vs_ratio`
  — Tables VI, VII, VIII (expected number of eclipse points).
* :func:`run_impact_of_n`, :func:`run_impact_of_d`, :func:`run_impact_of_ratio`
  — Figures 10, 11, 12 (average-case timing of BASE/TRAN/QUAD/CUTTING).
* :func:`run_worst_case_n`, :func:`run_worst_case_d` — Figures 13, 14.

The default parameter sweeps are scaled down so the whole suite runs on a
laptop in minutes; setting the environment variable ``REPRO_FULL_SWEEP=1``
restores the paper's full ranges (``n`` up to ``2^20``).  Results are plain
dataclasses with a ``to_text()`` renderer so they can be diffed against the
numbers recorded in ``EXPERIMENTS.md``.
"""

from repro.experiments.harness import (
    AlgorithmTiming,
    ExperimentResult,
    full_sweep_enabled,
    time_callable,
)
from repro.experiments.tables import (
    run_count_vs_d,
    run_count_vs_n,
    run_count_vs_ratio,
)
from repro.experiments.figures import (
    run_impact_of_d,
    run_impact_of_n,
    run_impact_of_ratio,
    run_worst_case_d,
    run_worst_case_n,
)
from repro.experiments.user_study import run_user_study
from repro.experiments.report import render_series_table, render_simple_table

__all__ = [
    "AlgorithmTiming",
    "ExperimentResult",
    "full_sweep_enabled",
    "time_callable",
    "run_count_vs_d",
    "run_count_vs_n",
    "run_count_vs_ratio",
    "run_impact_of_d",
    "run_impact_of_n",
    "run_impact_of_ratio",
    "run_worst_case_d",
    "run_worst_case_n",
    "run_user_study",
    "render_series_table",
    "render_simple_table",
]
