"""Figures 10–14: timing sweeps of the four eclipse algorithms.

Each runner mirrors one figure of Section V:

* **Figure 10** — query time versus the number of points ``n`` on the CORR,
  INDE, ANTI, and NBA datasets (``d = 3``, ``r = [0.36, 2.75]``).
* **Figure 11** — query time versus the dimensionality ``d``
  (``n = 2^10``, NBA ``n = 1000``).
* **Figure 12** — query time of the index-based algorithms versus the ratio
  range (the transformation-based algorithms are insensitive to it).
* **Figures 13/14** — worst-case (clustered) inputs where the line quadtree
  degenerates and the cutting tree keeps its balance, swept over the number
  of (skyline) points and over ``d``.

The default sweeps are laptop-sized; ``REPRO_FULL_SWEEP=1`` restores the
paper's ranges.  The reproduced quantity is the *relative ordering* of the
algorithms (index ≪ TRAN ≪ BASE; QUAD vs CUTTING flipping between the
average and the worst case), not the absolute seconds of the authors'
machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.data.nba import nba_minimization_points
from repro.data.worst_case import generate_worst_case
from repro.experiments.harness import (
    ALGORITHMS,
    AlgorithmTiming,
    ExperimentResult,
    full_sweep_enabled,
    time_algorithms,
    time_callable,
)
from repro.index.eclipse_index import EclipseIndex

#: Default ratio range (bold column of Table IV).
DEFAULT_RATIO = (0.36, 2.75)

#: Table IV ratio settings used by Figure 12.
RATIO_SETTINGS: Tuple[Tuple[float, float], ...] = (
    (0.18, 5.67),
    (0.36, 2.75),
    (0.58, 1.73),
    (0.84, 1.19),
)

#: Datasets of Figures 10–12, in the paper's panel order.
DATASET_NAMES = ("CORR", "INDE", "ANTI", "NBA")

#: BASE is skipped above this many points in the default sweeps (its
#: quadratic cost would dwarf every other measurement).
DEFAULT_BASELINE_LIMIT = 4096


def _dataset(name: str, n: int, dimensions: int, seed: int = 0) -> np.ndarray:
    """Materialise one of the four experiment datasets."""
    if name.upper() == "NBA":
        return nba_minimization_points(n=max(n, 1), dimensions=dimensions, seed=7)[:n]
    return generate_dataset(name, n, dimensions, seed=seed)


def default_n_sweep(dataset: str) -> List[int]:
    """Cardinality sweep of Figure 10 for one dataset."""
    if dataset.upper() == "NBA":
        return [500, 1000, 1500, 2000]
    if full_sweep_enabled():
        return [2**7, 2**10, 2**13, 2**17, 2**20]
    return [2**7, 2**10, 2**13]


def run_impact_of_n(
    dataset: str = "INDE",
    n_values: Optional[Sequence[int]] = None,
    dimensions: int = 3,
    ratio: Tuple[float, float] = DEFAULT_RATIO,
    algorithms: Optional[Sequence[str]] = None,
    baseline_limit: Optional[int] = DEFAULT_BASELINE_LIMIT,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 10: query time versus the number of points on one dataset."""
    values = list(n_values) if n_values is not None else default_n_sweep(dataset)
    result = ExperimentResult(
        name=f"Figure 10 — impact of n ({dataset})",
        parameter="n",
        metadata={"dataset": dataset, "d": dimensions, "ratio": ratio},
    )
    for n in values:
        data = _dataset(dataset, n, dimensions, seed=seed)
        ratios = RatioVector.uniform(ratio[0], ratio[1], dimensions)
        result.add(
            n,
            time_algorithms(
                data,
                ratios,
                algorithms=list(algorithms) if algorithms else list(ALGORITHMS),
                baseline_limit=baseline_limit,
            ),
        )
    return result


def run_impact_of_d(
    dataset: str = "INDE",
    d_values: Sequence[int] = (2, 3, 4, 5),
    n: int = 2**10,
    ratio: Tuple[float, float] = DEFAULT_RATIO,
    algorithms: Optional[Sequence[str]] = None,
    baseline_limit: Optional[int] = DEFAULT_BASELINE_LIMIT,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 11: query time versus the dimensionality on one dataset."""
    if dataset.upper() == "NBA":
        n = min(n, 1000)
    result = ExperimentResult(
        name=f"Figure 11 — impact of d ({dataset})",
        parameter="d",
        metadata={"dataset": dataset, "n": n, "ratio": ratio},
    )
    for d in d_values:
        data = _dataset(dataset, n, d, seed=seed)
        ratios = RatioVector.uniform(ratio[0], ratio[1], d)
        result.add(
            d,
            time_algorithms(
                data,
                ratios,
                algorithms=list(algorithms) if algorithms else list(ALGORITHMS),
                baseline_limit=baseline_limit,
            ),
        )
    return result


def run_impact_of_ratio(
    dataset: str = "INDE",
    ratio_values: Sequence[Tuple[float, float]] = RATIO_SETTINGS,
    n: int = 2**10,
    dimensions: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 12: index-based query time versus the ratio range.

    The index is built once per dataset and queried with every ratio range,
    which is the usage pattern the figure measures (the build cost is not
    part of the reported query time).
    """
    if dataset.upper() == "NBA":
        n = min(n, 1000)
    data = _dataset(dataset, n, dimensions, seed=seed)
    indexes: Dict[str, EclipseIndex] = {
        "QUAD": EclipseIndex(backend="quadtree").build(data),
        "CUTTING": EclipseIndex(backend="cutting").build(data),
    }
    result = ExperimentResult(
        name=f"Figure 12 — impact of the ratio range ({dataset})",
        parameter="r",
        metadata={"dataset": dataset, "n": n, "d": dimensions},
    )
    for ratio in ratio_values:
        ratios = RatioVector.uniform(ratio[0], ratio[1], dimensions)
        timings = []
        for name, index in indexes.items():
            seconds = time_callable(lambda: index.query_indices(ratios), repeats=3)
            size = int(index.query_indices(ratios).size)
            timings.append(AlgorithmTiming(name, seconds, size))
        result.add(tuple(ratio), timings)
    return result


def default_worst_case_n_sweep() -> List[int]:
    """Skyline-size sweep of Figure 13."""
    if full_sweep_enabled():
        return [2**7, 2**8, 2**9, 2**10]
    return [2**7, 2**8, 2**9]


def run_worst_case_n(
    n_values: Optional[Sequence[int]] = None,
    dimensions: int = 3,
    ratio: Tuple[float, float] = DEFAULT_RATIO,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 13: worst-case (clustered) inputs, query time versus ``n``.

    Every generated point is a skyline point, so ``n`` equals the number of
    indexed dual hyperplanes, matching the figure's x-axis ("number of
    skyline points").
    """
    values = list(n_values) if n_values is not None else default_worst_case_n_sweep()
    result = ExperimentResult(
        name="Figure 13 — worst case vs number of skyline points",
        parameter="n",
        metadata={"d": dimensions, "ratio": ratio},
    )
    for n in values:
        data = generate_worst_case(n, dimensions, seed=seed)
        ratios = RatioVector.uniform(ratio[0], ratio[1], dimensions)
        result.add(n, _time_index_algorithms(data, ratios))
    return result


def run_worst_case_d(
    d_values: Sequence[int] = (3, 4, 5),
    n: int = 2**7,
    ratio: Tuple[float, float] = DEFAULT_RATIO,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 14: worst-case (clustered) inputs, query time versus ``d``."""
    result = ExperimentResult(
        name="Figure 14 — worst case vs number of dimensions",
        parameter="d",
        metadata={"n": n, "ratio": ratio},
    )
    for d in d_values:
        data = generate_worst_case(n, d, seed=seed)
        ratios = RatioVector.uniform(ratio[0], ratio[1], d)
        result.add(d, _time_index_algorithms(data, ratios))
    return result


def _time_index_algorithms(
    data: np.ndarray, ratios: RatioVector
) -> List[AlgorithmTiming]:
    """Time QUAD and CUTTING (query only) on one dataset.

    The worst-case figures compare only the index-based algorithms, and the
    paper reports query time with a small per-leaf capacity so the index
    structure (not the post-filter) dominates; a fixed capacity of 8 keeps
    the comparison faithful.
    """
    timings: List[AlgorithmTiming] = []
    for name, backend in (("QUAD", "quadtree"), ("CUTTING", "cutting")):
        index = EclipseIndex(backend=backend, capacity=8).build(data)
        seconds = time_callable(lambda: index.query_indices(ratios), repeats=3)
        size = int(index.query_indices(ratios).size)
        timings.append(AlgorithmTiming(name, seconds, size))
    return timings
