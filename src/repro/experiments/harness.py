"""Timing harness shared by all experiment runners.

The harness keeps the experiment code declarative: a runner describes the
parameter sweep and which algorithms to time, and the harness handles
repetition, warm-up, index-build/query separation, and result records.  It
runs on the session layer: each sweep point gets one
:class:`~repro.core.session.DatasetSession` per algorithm so index builds
are timed through the same code path applications use, and
:func:`time_batched_vs_independent` measures the amortisation that
:meth:`~repro.core.session.DatasetSession.run_batch` buys over independent
facade queries.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.baseline import eclipse_baseline_indices
from repro.core.query import EclipseQuery
from repro.core.session import DatasetSession
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector

#: Environment variable that switches the sweeps to the paper's full ranges.
FULL_SWEEP_ENV = "REPRO_FULL_SWEEP"

#: The four algorithms of the paper, in presentation order.
ALGORITHMS = ("BASE", "TRAN", "QUAD", "CUTTING")


def full_sweep_enabled() -> bool:
    """``True`` when ``REPRO_FULL_SWEEP=1`` (or any truthy value) is set."""
    return os.environ.get(FULL_SWEEP_ENV, "").strip() not in ("", "0", "false", "no")


@dataclass(frozen=True)
class AlgorithmTiming:
    """Timing of one algorithm at one sweep point."""

    algorithm: str
    seconds: float
    result_size: int
    build_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Query time plus (for the index-based algorithms) build time."""
        return self.seconds + self.build_seconds


@dataclass
class ExperimentResult:
    """A full sweep: one row per sweep value, one timing per algorithm."""

    name: str
    parameter: str
    values: List = field(default_factory=list)
    timings: Dict[str, List[AlgorithmTiming]] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add(self, value, timings: List[AlgorithmTiming]) -> None:
        """Record the timings measured at one sweep value."""
        self.values.append(value)
        for timing in timings:
            self.timings.setdefault(timing.algorithm, []).append(timing)

    def series(self, algorithm: str) -> List[float]:
        """Query-time series (seconds) of one algorithm across the sweep."""
        return [t.seconds for t in self.timings.get(algorithm, [])]

    def result_sizes(self, algorithm: str) -> List[int]:
        """Result-size series of one algorithm across the sweep."""
        return [t.result_size for t in self.timings.get(algorithm, [])]

    def to_text(self) -> str:
        """Render the sweep as an aligned text table (one row per value)."""
        algorithms = list(self.timings)
        header = [self.parameter] + algorithms
        rows = []
        for i, value in enumerate(self.values):
            row = [str(value)]
            for algorithm in algorithms:
                series = self.timings[algorithm]
                row.append(f"{series[i].seconds:.6f}s" if i < len(series) else "-")
            rows.append(row)
        widths = [max(len(r[c]) for r in [header] + rows) for c in range(len(header))]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for row in rows:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)


def time_callable(fn: Callable[[], object], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def time_algorithms(
    data: np.ndarray,
    ratios: RatioVector,
    algorithms: Optional[List[str]] = None,
    repeats: int = 1,
    baseline_limit: Optional[int] = None,
) -> List[AlgorithmTiming]:
    """Time the requested eclipse algorithms on one dataset/query pair.

    Parameters
    ----------
    data, ratios:
        The dataset and the query.
    algorithms:
        Subset of :data:`ALGORITHMS` (default: all four).
    repeats:
        Repetitions per measurement (best-of).
    baseline_limit:
        Skip BASE when the dataset exceeds this many points (its quadratic
        cost would dominate the whole sweep); ``None`` never skips.
    """
    chosen = list(algorithms) if algorithms else list(ALGORITHMS)
    timings: List[AlgorithmTiming] = []
    for algorithm in chosen:
        if algorithm == "BASE":
            if baseline_limit is not None and data.shape[0] > baseline_limit:
                continue
            seconds = time_callable(
                lambda: eclipse_baseline_indices(data, ratios), repeats
            )
            size = int(eclipse_baseline_indices(data, ratios).size)
            timings.append(AlgorithmTiming(algorithm, seconds, size))
        elif algorithm == "TRAN":
            seconds = time_callable(
                lambda: eclipse_transform_indices(data, ratios), repeats
            )
            size = int(eclipse_transform_indices(data, ratios).size)
            timings.append(AlgorithmTiming(algorithm, seconds, size))
        elif algorithm in ("QUAD", "CUTTING"):
            backend = "quadtree" if algorithm == "QUAD" else "cutting"
            # A fresh session per algorithm so the build (skyline included)
            # is timed end to end, exactly as a cold application would pay it.
            session = DatasetSession(data)
            build_start = time.perf_counter()
            index = session.index_for(backend)
            build_seconds = time.perf_counter() - build_start
            seconds = time_callable(lambda: index.query_indices(ratios), repeats)
            size = int(index.query_indices(ratios).size)
            timings.append(
                AlgorithmTiming(algorithm, seconds, size, build_seconds=build_seconds)
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown algorithm {algorithm!r}")
    return timings


@dataclass(frozen=True)
class BatchTiming:
    """Timing of one batched-vs-independent comparison.

    Attributes
    ----------
    batched_seconds:
        Wall-clock of one :meth:`DatasetSession.run_batch` over all specs
        (cold session: includes the shared skyline/corner/index builds).
    independent_seconds:
        Wall-clock of answering every spec through a fresh
        :class:`EclipseQuery` (no artifact sharing).
    identical:
        ``True`` when both strategies returned identical index arrays for
        every specification.
    method:
        The method the batch plan actually executed.
    """

    batched_seconds: float
    independent_seconds: float
    identical: bool
    method: str

    @property
    def speedup(self) -> float:
        """Independent-over-batched wall-clock ratio."""
        if self.batched_seconds <= 0:
            return float("inf")
        return self.independent_seconds / self.batched_seconds


def time_batched_vs_independent(
    data: np.ndarray,
    ratio_specs: Sequence[RatioVector],
    method: str = "auto",
    repeats: int = 1,
) -> BatchTiming:
    """Measure one batched session run against per-query facade runs.

    The independent side constructs a fresh :class:`EclipseQuery` per
    specification, so no artifact is reused — the workload the batch API
    exists to replace.  Both sides are checked for identical result indices.
    """
    specs = list(ratio_specs)

    def batched() -> List[np.ndarray]:
        session = DatasetSession(data)
        results = session.run_batch(specs, method=method)
        return [r.indices for r in results]

    def independent() -> Tuple[List[np.ndarray], str]:
        outputs = []
        used = method
        for ratio_vector in specs:
            result = EclipseQuery(data).run(ratios=ratio_vector, method=method)
            outputs.append(result.indices)
            used = result.method
        return outputs, used

    probe_session = DatasetSession(data)
    batch_indices = [r.indices for r in probe_session.run_batch(specs, method=method)]
    executed_method = (
        probe_session.last_plan.method if probe_session.last_plan else method
    )
    independent_indices, _ = independent()
    identical = all(
        np.array_equal(b, i) for b, i in zip(batch_indices, independent_indices)
    )
    batched_seconds = time_callable(batched, repeats)
    independent_seconds = time_callable(independent, repeats)
    return BatchTiming(
        batched_seconds=batched_seconds,
        independent_seconds=independent_seconds,
        identical=identical,
        method=executed_method,
    )
