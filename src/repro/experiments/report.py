"""Plain-text rendering helpers for experiment results.

The paper presents its evaluation as tables (Tables V–VIII) and log-scale
timing figures (Figures 10–14).  A headless reproduction cannot draw the
figures, so every experiment is rendered as an aligned text table whose rows
are the x-axis values and whose columns are the series — the same data the
figures plot.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_simple_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render ``rows`` under ``header`` as an aligned text table."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    str_header = [str(cell) for cell in header]
    widths = [
        max(len(str_header[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(str_header[c])
        for c in range(len(str_header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(str_header, widths)))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series_table(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    value_format: str = "{:.6f}",
) -> str:
    """Render one figure-style result: x values against one column per series."""
    header = [x_label] + list(series)
    rows: List[List[object]] = []
    for i, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(value_format.format(values[i]) if i < len(values) else "-")
        rows.append(row)
    return render_simple_table(title, header, rows)
