"""Tables VI–VIII: expected number of eclipse points.

Section V-C measures how the expected eclipse result size reacts to the
dataset cardinality ``n`` (Table VI), the dimensionality ``d`` (Table VII),
and the ratio range ``r`` (Table VIII) on independent and identically
distributed data.  The paper's qualitative findings — ``n`` barely matters,
``d`` and the range width matter a lot — are what the reproduction checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import expected_eclipse_points
from repro.experiments.harness import full_sweep_enabled
from repro.experiments.report import render_simple_table

#: Default ratio range used throughout Section V (bold column of Table IV).
DEFAULT_RATIO = (0.36, 2.75)

#: Paper-reported values, kept here so EXPERIMENTS.md and the tests can
#: compare shapes without re-reading the paper.
PAPER_TABLE6 = {2**7: 3.71, 2**10: 3.83, 2**13: 3.91, 2**17: 4.03, 2**20: 4.13}
PAPER_TABLE7 = {2: 1.8, 3: 3.8, 4: 8.5, 5: 17.2}
PAPER_TABLE8 = {
    (0.18, 5.67): 7.2,
    (0.36, 2.75): 3.8,
    (0.58, 1.73): 2.2,
    (0.84, 1.19): 1.3,
}

#: Table IV ratio settings.
RATIO_SETTINGS: Tuple[Tuple[float, float], ...] = (
    (0.18, 5.67),
    (0.36, 2.75),
    (0.58, 1.73),
    (0.84, 1.19),
)


@dataclass
class CountTableResult:
    """One reproduced count table: parameter values and mean eclipse counts."""

    name: str
    parameter: str
    values: List = field(default_factory=list)
    counts: List[float] = field(default_factory=list)
    paper_counts: Dict = field(default_factory=dict)

    def add(self, value, count: float) -> None:
        """Record the estimate measured at one parameter value."""
        self.values.append(value)
        self.counts.append(count)

    def to_text(self) -> str:
        """Render the table with the paper's numbers alongside, when known."""
        rows = []
        for value, count in zip(self.values, self.counts):
            paper = self.paper_counts.get(value, "-")
            rows.append([value, f"{count:.2f}", paper])
        return render_simple_table(
            self.name, [self.parameter, "measured", "paper"], rows
        )


def default_n_sweep() -> List[int]:
    """The cardinality sweep: the paper's full range or a laptop-sized prefix."""
    if full_sweep_enabled():
        return [2**7, 2**10, 2**13, 2**17, 2**20]
    return [2**7, 2**10, 2**13]


def run_count_vs_n(
    n_values: Optional[Sequence[int]] = None,
    dimensions: int = 3,
    ratio: Tuple[float, float] = DEFAULT_RATIO,
    trials: int = 10,
    seed: int = 0,
) -> CountTableResult:
    """Table VI: expected number of eclipse points versus ``n``."""
    values = list(n_values) if n_values is not None else default_n_sweep()
    result = CountTableResult(
        name="Table VI — expected number of eclipse points vs n",
        parameter="n",
        paper_counts=dict(PAPER_TABLE6),
    )
    for n in values:
        estimate = expected_eclipse_points(
            n, dimensions, ratio[0], ratio[1], trials=trials, seed=seed
        )
        result.add(n, estimate.mean)
    return result


def run_count_vs_d(
    d_values: Sequence[int] = (2, 3, 4, 5),
    n: int = 2**10,
    ratio: Tuple[float, float] = DEFAULT_RATIO,
    trials: int = 10,
    seed: int = 0,
) -> CountTableResult:
    """Table VII: expected number of eclipse points versus ``d``."""
    result = CountTableResult(
        name="Table VII — expected number of eclipse points vs d",
        parameter="d",
        paper_counts=dict(PAPER_TABLE7),
    )
    for d in d_values:
        estimate = expected_eclipse_points(
            n, d, ratio[0], ratio[1], trials=trials, seed=seed
        )
        result.add(d, estimate.mean)
    return result


def run_count_vs_ratio(
    ratio_values: Sequence[Tuple[float, float]] = RATIO_SETTINGS,
    n: int = 2**10,
    dimensions: int = 3,
    trials: int = 10,
    seed: int = 0,
) -> CountTableResult:
    """Table VIII: expected number of eclipse points versus the ratio range."""
    result = CountTableResult(
        name="Table VIII — expected number of eclipse points vs r",
        parameter="r",
        paper_counts=dict(PAPER_TABLE8),
    )
    for ratio in ratio_values:
        estimate = expected_eclipse_points(
            n, dimensions, ratio[0], ratio[1], trials=trials, seed=seed
        )
        result.add(tuple(ratio), estimate.mean)
    return result
