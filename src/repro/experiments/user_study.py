"""Simulated case study (Table V).

The paper asked 38 department members and 30 Mechanical Turk workers (61
responses) to pick the hotel-reservation interface they found most useful
among five systems: skyline, top-k, eclipse-ratio, eclipse-weight, and
eclipse-category.  Table V reports the answer counts, with eclipse-category
receiving the plurality (25 of 61).

A questionnaire cannot be re-run offline, so this module *simulates* the
study with a simple utility model: each respondent values how expressive a
system is (can it encode "price matters more, but I can't give an exact
weight"?) and how low its specification burden is (exact weights and raw
ratio ranges are harder to produce than categories), plus individual noise.
The model's purpose is to exercise the five eclipse front-ends end to end
and reproduce the qualitative outcome of Table V (category-based eclipse
preferred, skyline second); it is documented as a substitution in
``DESIGN.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.report import render_simple_table

#: The five systems of Table V, in the paper's column order.
SYSTEMS = ("skyline", "top-k", "eclipse-ratio", "eclipse-weight", "eclipse-category")

#: Paper-reported counts for Table V (for comparison in EXPERIMENTS.md).
PAPER_TABLE5 = {
    "skyline": 13,
    "top-k": 7,
    "eclipse-ratio": 8,
    "eclipse-weight": 8,
    "eclipse-category": 25,
}

#: Utility model: (expressiveness, ease-of-specification) in [0, 1].
_SYSTEM_TRAITS = {
    "skyline": (0.55, 0.75),
    "top-k": (0.35, 0.55),
    "eclipse-ratio": (0.80, 0.35),
    "eclipse-weight": (0.80, 0.40),
    "eclipse-category": (0.85, 0.85),
}


@dataclass(frozen=True)
class UserStudyResult:
    """Simulated Table V: answer counts per hotel-reservation system."""

    counts: Dict[str, int]
    respondents: int

    @property
    def preferred_system(self) -> str:
        """The system with the most answers."""
        return max(self.counts, key=lambda name: self.counts[name])

    def to_text(self) -> str:
        """Render the counts as a Table V-style text table."""
        rows = [[system, self.counts[system]] for system in SYSTEMS]
        return render_simple_table(
            "Table V — case study answer counts (simulated)",
            ["system", "answers"],
            rows,
        )


def run_user_study(
    respondents: int = 61,
    seed: Optional[int] = 17,
    expressiveness_weight: float = 0.55,
) -> UserStudyResult:
    """Simulate the case study and return the per-system answer counts.

    Parameters
    ----------
    respondents:
        Number of simulated respondents (61 in the paper: 38 department
        members + 30 MTurk workers minus non-responses).
    seed:
        Random seed; the default reproduces the counts recorded in
        ``EXPERIMENTS.md``.
    expressiveness_weight:
        Relative weight of expressiveness against ease of specification in
        the respondents' utility (the remainder goes to ease).
    """
    rng = np.random.default_rng(seed)
    counts: Dict[str, int] = {system: 0 for system in SYSTEMS}
    ease_weight = 1.0 - expressiveness_weight
    for _ in range(respondents):
        utilities: List[float] = []
        for system in SYSTEMS:
            expressiveness, ease = _SYSTEM_TRAITS[system]
            noise = rng.normal(scale=0.18)
            utilities.append(
                expressiveness_weight * expressiveness + ease_weight * ease + noise
            )
        counts[SYSTEMS[int(np.argmax(utilities))]] += 1
    return UserStudyResult(counts=counts, respondents=respondents)
