"""Computational-geometry substrate used by the index-based algorithms.

The index-based eclipse algorithms of Section IV work in the *dual space*:
every data point becomes a hyperplane, an eclipse query becomes an axis-
aligned box of that space, and dominance becomes "consistently closer to the
``x_d = 0`` hyperplane over the whole box".  This subpackage provides the
geometric building blocks:

* :mod:`repro.geometry.boxes` — axis-aligned boxes and interval arithmetic.
* :mod:`repro.geometry.dual` — the duality transform and dual hyperplanes.
* :mod:`repro.geometry.hyperplane` — pairwise intersection hyperplanes.
* :mod:`repro.geometry.arrangement2d` — the one-dimensional arrangement of
  intersection x-coordinates used by the two-dimensional Order Vector Index.
* :mod:`repro.geometry.flattree` — the flattened, CSR-backed spatial-tree
  engine (breadth-first array-native build, iterative batched queries).
* :mod:`repro.geometry.quadtree` — the line quadtree / hyperplane
  ``2^k``-tree, a midpoint-split strategy wrapper over the flat engine.
* :mod:`repro.geometry.cutting` — the randomised cutting tree, a
  sampled-cut strategy wrapper over the same engine.
"""

from repro.geometry.boxes import Box
from repro.geometry.dual import DualHyperplane, dual_hyperplane, dual_hyperplanes
from repro.geometry.hyperplane import IntersectionHyperplane, pairwise_intersections
from repro.geometry.arrangement2d import Arrangement2D, ArrangementInterval
from repro.geometry.flattree import FlatTree, auto_capacity
from repro.geometry.quadtree import LineQuadtree
from repro.geometry.cutting import CuttingTree

__all__ = [
    "Box",
    "DualHyperplane",
    "dual_hyperplane",
    "dual_hyperplanes",
    "IntersectionHyperplane",
    "pairwise_intersections",
    "Arrangement2D",
    "ArrangementInterval",
    "FlatTree",
    "auto_capacity",
    "LineQuadtree",
    "CuttingTree",
]
