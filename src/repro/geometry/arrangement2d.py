"""One-dimensional arrangement of dual-line intersections (two-dimensional data).

For two-dimensional datasets the dual space is the plane and the dual objects
are lines ``y = p[1]·x - p[2]``.  The x-axis is partitioned by the
x-coordinates of the ``(u choose 2)`` pairwise intersections into intervals;
inside one interval the vertical order of the lines never changes
(Algorithm 4 of the paper).  :class:`Arrangement2D` stores, per interval, the
*order vector*: ``ov[k]`` is the number of lines strictly closer to the
x-axis than line ``k`` anywhere in that interval, which is exactly the
quantity the two-dimensional query (Algorithm 5) initialises from.

Storing every interval explicitly costs ``O(u^3)`` memory (``O(u^2)``
intervals × ``O(u)`` entries), which the paper accepts for its index but
which becomes prohibitive for large skyline sets.  This implementation
therefore precomputes the full table only up to
``dense_threshold`` lines and otherwise materialises interval order vectors
lazily (an ``O(u log u)`` evaluation at query time) — the interval
boundaries and the sorted Intersection Index are always precomputed, so the
query complexity of Algorithm 5 is unchanged.

The build is array-native: the pairwise intersection x-coordinates come from
the blocked kernel
(:func:`repro.geometry.hyperplane.pairwise_intersection_arrays_from`), the
dense interval table is filled by a memory-capped broadcast over interval
representatives, and :class:`IntersectionHyperplane` objects are only
materialised lazily for the introspection accessors — building an
arrangement no longer enumerates pairs in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, InvalidDatasetError
from repro.geometry.dual import DualHyperplane
from repro.geometry.hyperplane import (
    IntersectionHyperplane,
    pairwise_intersection_arrays_from,
)
from repro.perf.blocking import iter_blocks, memory_cap_bytes

#: Above this many lines the per-interval order vectors are computed lazily.
DEFAULT_DENSE_THRESHOLD = 128


@dataclass(frozen=True)
class ArrangementInterval:
    """One interval ``(start, end]`` of the x-axis with its order vector.

    ``order_vector[k]`` counts the lines strictly closer to the x-axis than
    line ``k`` within the interval; :attr:`ranking` lists line positions from
    the closest to the farthest (the presentation used in Figure 7 of the
    paper).
    """

    start: float
    end: float
    order_vector: np.ndarray = field(repr=False)

    @property
    def ranking(self) -> List[int]:
        """Line positions ordered from closest to farthest from the x-axis."""
        return [int(i) for i in np.argsort(self.order_vector, kind="stable")]

    def contains(self, x: float) -> bool:
        """Return ``True`` when ``x`` lies in the half-open interval ``(start, end]``."""
        return self.start < x <= self.end


class Arrangement2D:
    """Interval decomposition of the x-axis for a set of dual lines.

    Parameters
    ----------
    lines:
        Dual lines (each with a one-dimensional coefficient vector, i.e. the
        dataset is two-dimensional).  The kernelised build path avoids the
        per-line objects entirely via :meth:`from_arrays`.
    dense_threshold:
        Maximum number of lines for which all interval order vectors are
        precomputed eagerly.  ``None`` uses :data:`DEFAULT_DENSE_THRESHOLD`.

    Notes
    -----
    The arrangement covers the whole x-axis, not just the negative half, so
    it can answer queries for any ratio range.  Interval boundaries are the
    sorted distinct intersection x-coordinates; the leftmost interval is
    ``(-inf, v_1]`` and the rightmost ``(v_last, +inf)``.
    """

    def __init__(
        self,
        lines: Sequence[DualHyperplane],
        dense_threshold: Optional[int] = None,
    ):
        lines = list(lines)
        for line in lines:
            if line.dual_dimensions != 1:
                raise DimensionMismatchError(
                    "Arrangement2D requires dual lines (two-dimensional data)"
                )
        slopes = np.array([line.coefficients[0] for line in lines], dtype=float)
        offsets = np.array([line.offset for line in lines], dtype=float)
        indices = np.array([line.index for line in lines], dtype=np.intp)
        self._init_from_arrays(slopes, offsets, indices, dense_threshold)

    @classmethod
    def from_arrays(
        cls,
        slopes: np.ndarray,
        offsets: np.ndarray,
        indices: Optional[np.ndarray] = None,
        dense_threshold: Optional[int] = None,
    ) -> "Arrangement2D":
        """Build an arrangement straight from slope/offset arrays.

        This is the kernelised build entry point: no :class:`DualHyperplane`
        objects are created.  ``indices`` gives the identifiers reported for
        pairs (default positional).
        """
        self = cls.__new__(cls)
        slopes = np.asarray(slopes, dtype=float).reshape(-1)
        offsets = np.asarray(offsets, dtype=float).reshape(-1)
        if slopes.shape[0] != offsets.shape[0]:
            raise DimensionMismatchError(
                "slopes and offsets must have the same length"
            )
        if indices is None:
            indices = np.arange(slopes.shape[0], dtype=np.intp)
        else:
            indices = np.asarray(indices, dtype=np.intp)
        self._init_from_arrays(slopes, offsets, indices, dense_threshold)
        return self

    def _init_from_arrays(
        self,
        slopes: np.ndarray,
        offsets: np.ndarray,
        indices: np.ndarray,
        dense_threshold: Optional[int],
    ) -> None:
        self._slopes = slopes
        self._offsets = offsets
        self._line_indices = indices
        self._dense_threshold = (
            DEFAULT_DENSE_THRESHOLD if dense_threshold is None else int(dense_threshold)
        )

        pairs, coeffs, rhs = pairwise_intersection_arrays_from(
            slopes[:, None], offsets, indices=None, skip_degenerate=True
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            xs = rhs / coeffs[:, 0] if len(rhs) else rhs
        order = np.argsort(xs, kind="stable")
        self._pair_positions = pairs[order]
        self._pair_slopes = coeffs[order, 0] if len(rhs) else coeffs[:, 0]
        self._pair_rhs = rhs[order]
        self._intersection_xs = xs[order]
        self._object_cache: Optional[List[IntersectionHyperplane]] = None

        self._boundaries = (
            np.unique(self._intersection_xs)
            if self._intersection_xs.size
            else np.empty(0, dtype=float)
        )
        self._edges = np.concatenate(([-np.inf], self._boundaries, [np.inf]))
        num_lines = slopes.shape[0]
        self._dense = num_lines <= self._dense_threshold
        self._interval_cache: List[Optional[ArrangementInterval]] = [
            None
        ] * (self._edges.size - 1)
        if self._dense and num_lines:
            self._materialise_dense_intervals()

    # ------------------------------------------------------------------
    # Public accessors
    # ------------------------------------------------------------------
    @property
    def lines(self) -> List[DualHyperplane]:
        """The dual lines the arrangement was built from (materialised)."""
        return [
            DualHyperplane(
                coefficients=np.array([self._slopes[i]]),
                offset=float(self._offsets[i]),
                index=int(self._line_indices[i]),
            )
            for i in range(self.num_lines)
        ]

    @property
    def num_lines(self) -> int:
        """Number of dual lines."""
        return int(self._slopes.shape[0])

    def nbytes(self) -> int:
        """Resident bytes of the arrangement arrays and interval cache."""
        arrays = (
            self._slopes,
            self._offsets,
            self._line_indices,
            self._pair_positions,
            self._pair_slopes,
            self._pair_rhs,
            self._intersection_xs,
            self._boundaries,
            self._edges,
        )
        total = sum(int(a.nbytes) for a in arrays)
        total += sum(
            int(interval.order_vector.nbytes)
            for interval in self._interval_cache
            if interval is not None
        )
        return total

    @property
    def intersections(self) -> List[IntersectionHyperplane]:
        """All non-degenerate pairwise intersections, sorted by x-coordinate.

        Materialised lazily: the query path works on the underlying arrays
        and never pays for these objects.
        """
        if self._object_cache is None:
            self._object_cache = [
                self._intersection_object(i)
                for i in range(self._intersection_xs.size)
            ]
        return list(self._object_cache)

    @property
    def boundaries(self) -> np.ndarray:
        """Sorted distinct intersection x-coordinates."""
        return self._boundaries.copy()

    @property
    def num_intervals(self) -> int:
        """Number of intervals (``#distinct boundaries + 1``)."""
        return self._edges.size - 1

    @property
    def is_dense(self) -> bool:
        """``True`` when every interval order vector was precomputed."""
        return self._dense

    @property
    def intervals(self) -> List[ArrangementInterval]:
        """All intervals, ordered from left to right (materialised on demand)."""
        return [self._get_interval(i) for i in range(self.num_intervals)]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def interval_containing(self, x: float) -> ArrangementInterval:
        """Return the interval whose half-open range ``(start, end]`` holds ``x``.

        Implemented with binary search over the boundary array (Line 1 of
        Algorithm 5).
        """
        if not self.num_lines:
            raise InvalidDatasetError("the arrangement has no lines")
        position = int(np.searchsorted(self._boundaries, x, side="left"))
        return self._get_interval(position)

    def order_vector_at(self, x: float) -> np.ndarray:
        """Return a copy of the order vector of the interval containing ``x``."""
        return self.interval_containing(x).order_vector.copy()

    def order_vectors_at(self, xs: Sequence[float]) -> np.ndarray:
        """Order vectors of many query locations as one ``(q, u)`` array.

        The batched probe path: one vectorised binary search locates every
        query's interval, and each *distinct* interval is materialised once
        (and cached) no matter how many queries land in it.  Row ``i`` is a
        copy of ``order_vector_at(xs[i])``.
        """
        if not self.num_lines:
            raise InvalidDatasetError("the arrangement has no lines")
        xs = np.asarray(xs, dtype=float).reshape(-1)
        positions = np.searchsorted(self._boundaries, xs, side="left")
        distinct, inverse = np.unique(positions, return_inverse=True)
        table = np.stack(
            [self._get_interval(int(position)).order_vector for position in distinct]
        )
        return table[inverse]

    def line_values_at(self, x: float) -> np.ndarray:
        """Dual values ``f_k(x)`` of every line at ``x`` (vectorised)."""
        return self._slopes * x - self._offsets

    def intersections_in_range(
        self, low: float, high: float
    ) -> List[IntersectionHyperplane]:
        """Return intersections whose x-coordinate lies in the closed ``[low, high]``.

        This is the two-dimensional Intersection Index lookup (Line 2 of
        Algorithm 5): a binary search over the sorted x-coordinates followed
        by a scan of the matching slice.
        """
        if high < low:
            low, high = high, low
        start = int(np.searchsorted(self._intersection_xs, low, side="left"))
        end = int(np.searchsorted(self._intersection_xs, high, side="right"))
        if self._object_cache is not None:
            return self._object_cache[start:end]
        return [self._intersection_object(i) for i in range(start, end)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _intersection_object(self, position: int) -> IntersectionHyperplane:
        first, second = self._pair_positions[position]
        return IntersectionHyperplane(
            coefficients=np.array([self._pair_slopes[position]]),
            rhs=float(self._pair_rhs[position]),
            first=int(self._line_indices[first]),
            second=int(self._line_indices[second]),
        )

    def _get_interval(self, position: int) -> ArrangementInterval:
        cached = self._interval_cache[position]
        if cached is None:
            cached = self._materialise_interval(position)
            self._interval_cache[position] = cached
        return cached

    def _materialise_interval(self, position: int) -> ArrangementInterval:
        start = float(self._edges[position])
        end = float(self._edges[position + 1])
        representative = self._representative_point(start, end)
        order_vector = self._order_vector_at_point(representative)
        return ArrangementInterval(start=start, end=end, order_vector=order_vector)

    def _materialise_dense_intervals(self) -> None:
        """Fill the whole interval table with one chunked broadcast.

        For a chunk of ``C`` interval representatives the line values form a
        ``(C, u)`` matrix and the order vectors drop out of one boolean
        ``(C, u, u)`` comparison (``counts[c, k] = #{j : value[c, j] >
        value[c, k]}``).  The chunk size is picked so the boolean scratch
        respects the shared kernel memory cap; dense mode is bounded by
        ``dense_threshold`` lines so the scratch per representative is tiny.
        """
        reps = np.array(
            [
                self._representative_point(
                    float(self._edges[i]), float(self._edges[i + 1])
                )
                for i in range(self.num_intervals)
            ],
            dtype=float,
        )
        u = self.num_lines
        chunk_rows = max(1, memory_cap_bytes(None) // max(1, u * u))
        for start, stop in iter_blocks(reps.size, chunk_rows):
            values = self._slopes[None, :] * reps[start:stop, None] - self._offsets
            greater = values[:, :, None] > values[:, None, :]
            counts = greater.sum(axis=1).astype(np.intp)
            for local, position in enumerate(range(start, stop)):
                self._interval_cache[position] = ArrangementInterval(
                    start=float(self._edges[position]),
                    end=float(self._edges[position + 1]),
                    order_vector=counts[local],
                )

    @staticmethod
    def _representative_point(start: float, end: float) -> float:
        """A point strictly inside ``(start, end)`` used to sample the order.

        For the half-infinite outer intervals the offset from the finite
        boundary scales with its magnitude so that the representative remains
        strictly inside the interval even when the boundary is so large that
        ``boundary ± 1`` rounds back onto the boundary itself.
        """
        if np.isinf(start) and np.isinf(end):
            return 0.0
        if np.isinf(start):
            return end - max(1.0, abs(end) / 2.0)
        if np.isinf(end):
            return start + max(1.0, abs(start) / 2.0)
        return start + (end - start) / 2.0

    def _order_vector_at_point(self, x: float) -> np.ndarray:
        """Order vector at ``x``: ``ov[k]`` = #lines strictly above line ``k``.

        "Above" means strictly closer to the x-axis, i.e. a strictly larger
        dual value (dual values are negative for positive scores).  Computed
        in ``O(u log u)`` with a sort.  Ties inside an open interval can only
        come from identical lines, which never dominate each other.
        """
        values = self.line_values_at(x)
        sorted_values = np.sort(values)
        greater = values.size - np.searchsorted(sorted_values, values, side="right")
        return greater.astype(np.intp)

    def __len__(self) -> int:
        return self.num_intervals
