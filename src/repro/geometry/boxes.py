"""Axis-aligned boxes and interval arithmetic over linear functions.

A :class:`Box` is the set ``{x : lows[j] <= x[j] <= highs[j]}``.  The eclipse
query range maps to the dual-space box with ``lows = -h`` and ``highs = -l``,
and every geometric index in this package partitions the dual domain into
boxes.  Interval arithmetic over a box (the exact minimum and maximum of a
linear function) is what makes hyperplane/box intersection tests exact and
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import DimensionMismatchError, InvalidDatasetError


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box in ``k`` dimensions."""

    lows: np.ndarray
    highs: np.ndarray

    def __post_init__(self) -> None:
        lows = np.asarray(self.lows, dtype=float)
        highs = np.asarray(self.highs, dtype=float)
        if lows.ndim != 1 or highs.ndim != 1 or lows.shape != highs.shape:
            raise InvalidDatasetError("box bounds must be 1-D arrays of equal length")
        if lows.size == 0:
            raise InvalidDatasetError("a box needs at least one dimension")
        if not (np.all(np.isfinite(lows)) and np.all(np.isfinite(highs))):
            raise InvalidDatasetError("box bounds must be finite")
        if np.any(lows > highs):
            raise InvalidDatasetError("box lows must not exceed highs")
        object.__setattr__(self, "lows", lows)
        object.__setattr__(self, "highs", highs)

    # ------------------------------------------------------------------
    @classmethod
    def from_intervals(cls, intervals: Sequence[Sequence[float]]) -> "Box":
        """Build a box from a sequence of ``(low, high)`` pairs."""
        lows = [float(iv[0]) for iv in intervals]
        highs = [float(iv[1]) for iv in intervals]
        return cls(np.array(lows), np.array(highs))

    @property
    def dimensions(self) -> int:
        """Number of spatial dimensions of the box."""
        return int(self.lows.size)

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return (self.lows + self.highs) / 2.0

    @property
    def widths(self) -> np.ndarray:
        """Per-dimension extents ``highs - lows``."""
        return self.highs - self.lows

    def volume(self) -> float:
        """Product of the extents (zero for degenerate boxes)."""
        return float(np.prod(self.widths))

    # ------------------------------------------------------------------
    def contains_point(self, point: Sequence[float]) -> bool:
        """Return ``True`` when ``point`` lies inside the closed box."""
        p = np.asarray(point, dtype=float)
        if p.shape != self.lows.shape:
            raise DimensionMismatchError("point and box dimensionality differ")
        return bool(np.all(p >= self.lows) and np.all(p <= self.highs))

    def contains_box(self, other: "Box") -> bool:
        """Return ``True`` when ``other`` lies entirely inside this box."""
        self._check_dims(other)
        return bool(np.all(other.lows >= self.lows) and np.all(other.highs <= self.highs))

    def intersects_box(self, other: "Box") -> bool:
        """Return ``True`` when the two closed boxes share at least one point."""
        self._check_dims(other)
        return bool(np.all(self.lows <= other.highs) and np.all(other.lows <= self.highs))

    def clip(self, other: "Box") -> "Box":
        """Return the intersection of this box with ``other``.

        Raises :class:`~repro.errors.InvalidDatasetError` when the boxes are
        disjoint (the intersection would be empty).
        """
        self._check_dims(other)
        lows = np.maximum(self.lows, other.lows)
        highs = np.minimum(self.highs, other.highs)
        return Box(lows, highs)

    # ------------------------------------------------------------------
    def linear_range(self, coefficients: Sequence[float], offset: float = 0.0):
        """Exact ``(min, max)`` of ``coefficients @ x + offset`` over the box.

        The extremes of a linear function over a box are attained by choosing,
        per coordinate, the endpoint matching the sign of the coefficient, so
        both bounds come from one pass of interval arithmetic.
        """
        a = np.asarray(coefficients, dtype=float)
        if a.shape != self.lows.shape:
            raise DimensionMismatchError(
                "coefficient vector and box dimensionality differ"
            )
        lo_contrib = np.where(a >= 0, a * self.lows, a * self.highs)
        hi_contrib = np.where(a >= 0, a * self.highs, a * self.lows)
        return float(lo_contrib.sum() + offset), float(hi_contrib.sum() + offset)

    def corners(self) -> np.ndarray:
        """Return all ``2^k`` corner points of the box as a ``(2^k, k)`` array."""
        k = self.dimensions
        corners = np.empty((2**k, k), dtype=float)
        for mask in range(2**k):
            for j in range(k):
                corners[mask, j] = (
                    self.highs[j] if (mask >> (k - 1 - j)) & 1 else self.lows[j]
                )
        return corners

    def split(self) -> List["Box"]:
        """Split the box into its ``2^k`` equal child boxes (quadtree split)."""
        mid = self.center
        children: List[Box] = []
        k = self.dimensions
        for mask in range(2**k):
            lows = self.lows.copy()
            highs = self.highs.copy()
            for j in range(k):
                if (mask >> (k - 1 - j)) & 1:
                    lows[j] = mid[j]
                else:
                    highs[j] = mid[j]
            children.append(Box(lows, highs))
        return children

    def split_at(self, dimension: int, value: float) -> List["Box"]:
        """Split the box into two children along ``dimension`` at ``value``.

        ``value`` is clamped into the box so the children are always valid.
        """
        value = float(min(max(value, self.lows[dimension]), self.highs[dimension]))
        left_highs = self.highs.copy()
        left_highs[dimension] = value
        right_lows = self.lows.copy()
        right_lows[dimension] = value
        return [Box(self.lows.copy(), left_highs), Box(right_lows, self.highs.copy())]

    # ------------------------------------------------------------------
    def _check_dims(self, other: "Box") -> None:
        if other.dimensions != self.dimensions:
            raise DimensionMismatchError("boxes have different dimensionality")

    def __iter__(self) -> Iterator[np.ndarray]:
        yield self.lows
        yield self.highs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(
            f"[{lo:g}, {hi:g}]" for lo, hi in zip(self.lows, self.highs)
        )
        return f"Box({pairs})"
