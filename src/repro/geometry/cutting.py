"""Randomised cutting tree (the CUTTING Intersection Index).

A *(1/t)-cutting* partitions space into cells such that no cell is crossed
by more than ``n / t`` of the indexed hyperplanes, giving logarithmic query
time in the worst case.  The deterministic constructions are, as the paper
notes, "theoretical in nature and involve large constant factors"; the paper
therefore implements the cutting probabilistically (Clarkson-style random
sampling, Section V "Cutting Tree Implementation"): sample points from the
set of hyperplane intersections — regions crossed by many hyperplanes
contain more intersections and are therefore sampled, and hence subdivided,
more often.

This module follows the same scheme with a tree-shaped realisation.  Each
node covers a box of the dual domain; a node crossed by more than
``capacity`` hyperplanes is split along one coordinate at a position sampled
from the *median region of the crossing hyperplanes* (the coordinate where a
randomly chosen crossing hyperplane meets the cell, falling back to the
coordinate median of the hyperplane/cell crossing extents).  Because split
positions track the hyperplane density instead of the geometric midpoint,
the resulting tree stays balanced on the clustered inputs that degrade the
plain quadtree — reproducing the QUAD vs CUTTING worst-case behaviour of
Figures 13 and 14.

Like :class:`~repro.geometry.quadtree.LineQuadtree`, the tree is built over
coefficient/right-hand-side arrays and every node stores an index array, so
construction and queries are vectorised.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.hyperplane import hyperplanes_intersect_box_mask

#: Default per-cell capacity; ``None`` lets the tree pick a size-aware value.
DEFAULT_CAPACITY: Optional[int] = None

#: Hard cap on the tree depth so degenerate inputs terminate.
DEFAULT_MAX_DEPTH = 32

#: Global budget on the number of cells; once exhausted remaining cells stay
#: leaves (queries remain exact because leaves are post-filtered).
DEFAULT_MAX_NODES = 8192


def _auto_capacity(num_hyperplanes: int) -> int:
    """Size-aware cell capacity, same rationale as the quadtree's."""
    return max(8, int(np.sqrt(max(num_hyperplanes, 1))))


class _CuttingNode:
    """A cell of the cutting: its box and either stored indices or two children."""

    __slots__ = ("box", "indices", "children", "depth", "split_dim", "split_value")

    def __init__(self, box: Box, indices: np.ndarray, depth: int):
        self.box = box
        self.indices = indices
        self.children: Optional[List["_CuttingNode"]] = None
        self.depth = depth
        self.split_dim = -1
        self.split_value = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class CuttingTree:
    """Randomised cutting over intersection hyperplanes.

    Parameters
    ----------
    coefficients, rhs:
        The hyperplanes ``coefficients[i] · x = rhs[i]`` to index.
    domain:
        Dual-domain box covered by the root cell.
    capacity:
        Maximum number of crossing hyperplanes per cell before subdivision
        (``None`` picks a size-aware default).
    max_depth:
        Depth cap guaranteeing termination.
    seed:
        Seed of the random generator used to sample split positions; fixing
        it makes index construction deterministic.
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        rhs: np.ndarray,
        domain: Box,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_nodes: int = DEFAULT_MAX_NODES,
        seed: Optional[int] = 0,
    ):
        coefficients = np.asarray(coefficients, dtype=float)
        rhs = np.asarray(rhs, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != rhs.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (m, k) and rhs must be (m,)"
            )
        if coefficients.size and coefficients.shape[1] != domain.dimensions:
            raise DimensionMismatchError(
                "hyperplane dimensionality does not match the tree domain"
            )
        self._coefficients = coefficients
        self._rhs = rhs
        self._domain = domain
        self._capacity = (
            _auto_capacity(coefficients.shape[0]) if capacity is None else int(capacity)
        )
        if self._capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._max_depth = int(max_depth)
        if max_nodes < 1:
            raise ValueError("max_nodes must be at least 1")
        self._max_nodes = int(max_nodes)
        self._nodes_created = 0
        self._rng = np.random.default_rng(seed)

        all_indices = np.arange(coefficients.shape[0], dtype=np.intp)
        in_domain = hyperplanes_intersect_box_mask(coefficients, rhs, domain)
        self._outside = all_indices[~in_domain]
        self._root = self._build(domain, all_indices[in_domain], depth=0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> Box:
        """The dual-domain box covered by the root cell."""
        return self._domain

    @property
    def size(self) -> int:
        """Number of indexed hyperplanes."""
        return int(self._coefficients.shape[0])

    @property
    def capacity(self) -> int:
        """Cell capacity actually in use."""
        return self._capacity

    @property
    def depth(self) -> int:
        """Maximum depth of the tree."""
        return self._max_depth_of(self._root)

    def node_count(self) -> int:
        """Total number of cells (for diagnostics and tests)."""
        return self._count_nodes(self._root)

    def max_cell_load(self) -> int:
        """Largest number of hyperplanes crossing a single leaf cell.

        This is the quantity the (1/t)-cutting guarantee bounds; tests use it
        to verify the subdivision actually reduces per-cell load.
        """
        return self._max_load(self._root)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, box: Box) -> np.ndarray:
        """Indices of hyperplanes intersecting the query ``box`` (exact)."""
        if box.dimensions != self._domain.dimensions:
            raise DimensionMismatchError(
                "query box dimensionality does not match the tree domain"
            )
        collected: List[np.ndarray] = [self._outside]
        self._collect(self._root, box, collected)
        candidates = np.unique(np.concatenate(collected)) if collected else np.empty(0, dtype=np.intp)
        if candidates.size == 0:
            return candidates.astype(np.intp)
        mask = hyperplanes_intersect_box_mask(
            self._coefficients[candidates], self._rhs[candidates], box
        )
        return candidates[mask]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(self, box: Box, indices: np.ndarray, depth: int) -> _CuttingNode:
        node = _CuttingNode(box, indices, depth)
        self._nodes_created += 1
        if (
            indices.size <= self._capacity
            or depth >= self._max_depth
            or self._nodes_created + 2 > self._max_nodes
        ):
            return node
        split_dim = depth % box.dimensions
        split_value = self._sample_split_value(box, indices, split_dim)
        left_box, right_box = box.split_at(split_dim, split_value)
        if left_box.widths[split_dim] <= 0 or right_box.widths[split_dim] <= 0:
            return node
        left_mask = hyperplanes_intersect_box_mask(
            self._coefficients[indices], self._rhs[indices], left_box
        )
        right_mask = hyperplanes_intersect_box_mask(
            self._coefficients[indices], self._rhs[indices], right_box
        )
        left_indices = indices[left_mask]
        right_indices = indices[right_mask]
        if left_indices.size == indices.size and right_indices.size == indices.size:
            # Every hyperplane crosses both children: this cut cannot reduce
            # the load, so keep the cell as a leaf.
            return node
        node.split_dim = split_dim
        node.split_value = split_value
        node.children = [
            self._build(left_box, left_indices, depth + 1),
            self._build(right_box, right_indices, depth + 1),
        ]
        node.indices = np.empty(0, dtype=np.intp)
        return node

    def _sample_split_value(
        self, box: Box, indices: np.ndarray, split_dim: int
    ) -> float:
        """Sample a split coordinate from the crossing hyperplanes.

        For a random subset of the crossing hyperplanes the coordinate where
        each crosses the cell (with the other coordinates fixed at the cell
        centre) is computed; the median of those crossing coordinates is the
        split position.  Hyperplanes nearly parallel to the split axis are
        skipped; if no usable sample remains the cell midpoint is used.
        """
        midpoint = float(box.center[split_dim])
        sample_size = min(indices.size, 64)
        if sample_size == 0:
            return midpoint
        sampled = self._rng.choice(indices, size=sample_size, replace=False)
        coeffs = self._coefficients[sampled]
        rhs = self._rhs[sampled]
        center = box.center
        axis_coeff = coeffs[:, split_dim]
        usable = np.abs(axis_coeff) > 1e-12
        if not np.any(usable):
            return midpoint
        rest = rhs[usable] - (
            coeffs[usable] @ center - axis_coeff[usable] * center[split_dim]
        )
        crossings = rest / axis_coeff[usable]
        crossings = crossings[
            (crossings > box.lows[split_dim]) & (crossings < box.highs[split_dim])
        ]
        if crossings.size == 0:
            return midpoint
        return float(np.median(crossings))

    def _collect(self, node: _CuttingNode, box: Box, out: List[np.ndarray]) -> None:
        if not node.box.intersects_box(box):
            return
        if node.is_leaf:
            if node.indices.size:
                out.append(node.indices)
            return
        for child in node.children:
            self._collect(child, box, out)

    def _max_depth_of(self, node: _CuttingNode) -> int:
        if node.is_leaf:
            return node.depth
        return max(self._max_depth_of(child) for child in node.children)

    def _count_nodes(self, node: _CuttingNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(child) for child in node.children)

    def _max_load(self, node: _CuttingNode) -> int:
        if node.is_leaf:
            return int(node.indices.size)
        return max(self._max_load(child) for child in node.children)
