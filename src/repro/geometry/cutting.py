"""Randomised cutting tree (the CUTTING Intersection Index).

A *(1/t)-cutting* partitions space into cells such that no cell is crossed
by more than ``n / t`` of the indexed hyperplanes, giving logarithmic query
time in the worst case.  The deterministic constructions are, as the paper
notes, "theoretical in nature and involve large constant factors"; the paper
therefore implements the cutting probabilistically (Clarkson-style random
sampling, Section V "Cutting Tree Implementation"): sample points from the
set of hyperplane intersections — regions crossed by many hyperplanes
contain more intersections and are therefore sampled, and hence subdivided,
more often.

This module follows the same scheme with a tree-shaped realisation.  Each
node covers a box of the dual domain; a node crossed by more than
``capacity`` hyperplanes is split along one coordinate at a position sampled
from the *median region of the crossing hyperplanes* (the coordinate where a
randomly chosen crossing hyperplane meets the cell, falling back to the
coordinate median of the hyperplane/cell crossing extents).  Because split
positions track the hyperplane density instead of the geometric midpoint,
the resulting tree stays balanced on the clustered inputs that degrade the
plain quadtree — reproducing the QUAD vs CUTTING worst-case behaviour of
Figures 13 and 14.

Like :class:`~repro.geometry.quadtree.LineQuadtree`, this class is a thin
*strategy wrapper* — sampled binary cuts plus the cutting stopping policy —
over the shared flattened tree engine
(:class:`repro.geometry.flattree.FlatTree`): breadth-first CSR build, one
batched intersection kernel per level, iterative stack-free queries.  Split
positions are sampled in breadth-first frontier order, so a fixed ``seed``
still makes construction fully deterministic.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.boxes import Box
from repro.geometry.flattree import (
    FlatTree,
    boxes_to_bounds,
    build_cutting_core,
)

#: Default per-cell capacity; ``None`` lets the tree pick a size-aware value.
DEFAULT_CAPACITY: Optional[int] = None

#: Hard cap on the tree depth so degenerate inputs terminate.
DEFAULT_MAX_DEPTH = 32

#: Global budget on the number of cells; once exhausted remaining cells stay
#: leaves (queries remain exact because leaves are post-filtered).
DEFAULT_MAX_NODES = 8192


class CuttingTree:
    """Randomised cutting over intersection hyperplanes.

    Parameters
    ----------
    coefficients, rhs:
        The hyperplanes ``coefficients[i] · x = rhs[i]`` to index.
    domain:
        Dual-domain box covered by the root cell.
    capacity:
        Maximum number of crossing hyperplanes per cell before subdivision
        (``None`` picks a size-aware default).
    max_depth:
        Depth cap guaranteeing termination.
    seed:
        Seed of the random generator used to sample split positions; fixing
        it makes index construction deterministic.
    on_unsplittable:
        Forwarded to :class:`~repro.geometry.flattree.FlatTree` (``"keep"``
        or ``"raise"``), see there.
    shrink_domain:
        Opt-in root fitting, as on
        :class:`~repro.geometry.quadtree.LineQuadtree`.  The cutting rule's
        sampled positions already track hyperplane density, so the fitted
        root buys far less here than for the midpoint quadtree — the flag
        is honoured for consistency (a session-level ``shrink_domain``
        applies to whichever backend the planner picks).
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        rhs: np.ndarray,
        domain: Box,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_nodes: int = DEFAULT_MAX_NODES,
        seed: Optional[int] = 0,
        on_unsplittable: str = "keep",
        shrink_domain: bool = False,
    ):
        self._core = build_cutting_core(
            coefficients,
            rhs,
            domain,
            capacity=capacity,
            max_depth=max_depth,
            max_nodes=max_nodes,
            seed=seed,
            on_unsplittable=on_unsplittable,
            shrink_domain=shrink_domain,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def core(self) -> FlatTree:
        """The shared flattened tree engine backing this index."""
        return self._core

    @property
    def domain(self) -> Box:
        """The dual-domain box covered by the root cell."""
        return self._core.domain

    @property
    def size(self) -> int:
        """Number of indexed hyperplanes."""
        return self._core.size

    @property
    def capacity(self) -> int:
        """Cell capacity actually in use."""
        return self._core.capacity

    @property
    def depth(self) -> int:
        """Maximum depth of the tree."""
        return self._core.depth

    def node_count(self) -> int:
        """Total number of cells (for diagnostics and tests)."""
        return self._core.node_count()

    def max_cell_load(self) -> int:
        """Largest number of hyperplanes crossing a single leaf cell.

        This is the quantity the (1/t)-cutting guarantee bounds; tests use it
        to verify the subdivision actually reduces per-cell load.
        """
        return self._core.max_leaf_load()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, box: Box) -> np.ndarray:
        """Indices of hyperplanes intersecting the query ``box`` (exact)."""
        return self._core.query(box)

    def query_many(self, boxes) -> List[np.ndarray]:
        """Exact per-box candidate indices for many boxes in one traversal.

        Positionally parallel and identical to calling :meth:`query` per
        box; the traversal, collection, and exact post-filter are batched.
        """
        lows, highs = boxes_to_bounds(boxes, self._core.domain.dimensions)
        return self._core.query_many(lows, highs)

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def insert_hyperplanes(
        self, coefficients: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """Append hyperplanes to the index; returns their new item indices.

        Delegates to :meth:`repro.geometry.flattree.FlatTree.insert_hyperplanes`
        (per-leaf overflow buffers with threshold-triggered subtree rebuilds).
        """
        return self._core.insert_hyperplanes(coefficients, rhs)

    def compact_items(self, keep: np.ndarray, remap: np.ndarray) -> None:
        """Drop dead items and renumber the rest in place (arena compaction).

        Delegates to :meth:`repro.geometry.flattree.FlatTree.compact_items`.
        """
        self._core.compact_items(keep, remap)

    @property
    def arena_grows(self) -> int:
        """Buffer reallocations of the core's arenas since construction."""
        return self._core.arena_grows

    def nbytes(self) -> int:
        """Resident bytes of the core's arenas, headroom included."""
        return self._core.nbytes()
