"""Duality transform between primal points and dual hyperplanes.

Following Section IV of the paper (and de Berg et al.), a primal point
``p = (p[1], ..., p[d])`` maps to the dual hyperplane

    ``x_d = p[1] x_1 + p[2] x_2 + ... + p[d-1] x_{d-1} - p[d]``.

We represent that hyperplane by the function ``f(x) = a · x - b`` over the
``(d-1)``-dimensional dual domain, with ``a = p[1..d-1]`` and ``b = p[d]``.
The connection to eclipse scoring is direct: evaluating at ``x = -r`` (the
negated ratio vector) gives ``f(-r) = -(r · p[1..d-1] + p[d]) = -S(p)``, so a
hyperplane being *closer to the* ``x_d = 0`` *hyperplane from below* (larger
``f`` value) is the same as the point having a *smaller score*.  Dominance
over a ratio range therefore becomes "consistently larger ``f`` over the dual
query box".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro._types import ArrayLike2D, PointLike
from repro.core.dominance import as_dataset, as_point
from repro.errors import DimensionMismatchError, InvalidDatasetError
from repro.geometry.boxes import Box


@dataclass(frozen=True)
class DualHyperplane:
    """The dual hyperplane ``f(x) = coefficients · x - offset`` of a point.

    Attributes
    ----------
    coefficients:
        The first ``d - 1`` attributes of the primal point.
    offset:
        The last attribute of the primal point.
    index:
        Position of the primal point in the dataset it came from (``-1`` when
        the hyperplane was built from a free-standing point).
    """

    coefficients: np.ndarray
    offset: float
    index: int = -1

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=float)
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise InvalidDatasetError(
                "dual hyperplane coefficients must be a non-empty 1-D array"
            )
        object.__setattr__(self, "coefficients", coeffs)
        object.__setattr__(self, "offset", float(self.offset))

    @property
    def dual_dimensions(self) -> int:
        """Dimensionality of the dual domain (``d - 1``)."""
        return int(self.coefficients.size)

    def evaluate(self, x: Sequence[float]) -> float:
        """Evaluate ``f(x) = a · x - b`` at a dual-domain location ``x``."""
        xa = np.asarray(x, dtype=float)
        if xa.shape != self.coefficients.shape:
            raise DimensionMismatchError(
                "evaluation point and dual hyperplane dimensionality differ"
            )
        return float(self.coefficients @ xa - self.offset)

    def value_range(self, box: Box) -> Tuple[float, float]:
        """Exact ``(min, max)`` of ``f`` over a dual-domain box."""
        return box.linear_range(self.coefficients, -self.offset)

    def score_at_ratio(self, ratios: Sequence[float]) -> float:
        """Return the primal score ``S(p)`` for a ratio vector ``r``.

        Uses the identity ``S(p) = -f(-r)``.
        """
        r = np.asarray(ratios, dtype=float)
        return -self.evaluate(-r)

    def to_point(self) -> np.ndarray:
        """Recover the primal point ``(a_1, ..., a_{d-1}, b)``."""
        return np.append(self.coefficients, self.offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(
            f"{c:g}*x{j + 1}" for j, c in enumerate(self.coefficients)
        )
        return f"DualHyperplane(x{self.dual_dimensions + 1} = {terms} - {self.offset:g})"


def dual_hyperplane(point: PointLike, index: int = -1) -> DualHyperplane:
    """Return the dual hyperplane of a single primal point."""
    p = as_point(point)
    if p.size < 2:
        raise InvalidDatasetError("the duality transform needs d >= 2 attributes")
    return DualHyperplane(coefficients=p[:-1].copy(), offset=float(p[-1]), index=index)


def dual_hyperplanes(points: ArrayLike2D) -> List[DualHyperplane]:
    """Return the dual hyperplanes of every point in a dataset.

    The ``index`` of each hyperplane records the row position of its primal
    point, so index-based query results can be mapped back to the dataset.

    This materialises one Python object per point; the index build path uses
    :func:`dual_coefficient_arrays` instead, which stays in array land.
    """
    data = as_dataset(points)
    if data.shape[0] and data.shape[1] < 2:
        raise InvalidDatasetError("the duality transform needs d >= 2 attributes")
    return [
        DualHyperplane(coefficients=row[:-1].copy(), offset=float(row[-1]), index=i)
        for i, row in enumerate(data)
    ]


def dual_coefficient_arrays(points: ArrayLike2D) -> Tuple[np.ndarray, np.ndarray]:
    """Array form of the duality transform: ``(coefficients, offsets)``.

    Returns the ``(n, d-1)`` coefficient matrix and the ``(n,)`` offset
    vector of the dual hyperplanes of every point — the same data
    :func:`dual_hyperplanes` wraps in per-point objects, without creating a
    single Python object.  Row ``i`` of both arrays belongs to point ``i``,
    so positional identity doubles as the hyperplane index.
    """
    data = as_dataset(points)
    if data.shape[0] and data.shape[1] < 2:
        raise InvalidDatasetError("the duality transform needs d >= 2 attributes")
    if data.shape[0] == 0:
        width = max(0, data.shape[1] - 1)
        return np.empty((0, width)), np.empty(0)
    return (
        np.ascontiguousarray(data[:, :-1], dtype=float),
        np.ascontiguousarray(data[:, -1], dtype=float),
    )
