"""Flattened, array-native spatial-tree engine (CSR node store).

Both Intersection-Index tree backends — the line quadtree of Section IV and
the randomised cutting tree of Section V — are *the same machine* wearing
different split rules: a rooted tree of axis-aligned cells over the dual
domain in which every node keeps the subset of hyperplanes crossing its
cell, split until a capacity/depth/budget policy says stop.  Up to PR 2 each
backend carried its own recursive Python builder (one interpreter frame and
one mask kernel call *per node*, ~10 µs per indexed pair); this module
replaces both with one flattened engine:

* **CSR node store** — nodes live in parallel arrays (``cell_lows``/
  ``cell_highs``, ``first_child``, ``node_depth``, ``item_start``/
  ``item_end``) in breadth-first order; the children of an internal node are
  ``branching`` consecutive rows, and every leaf's hyperplane indices are one
  contiguous slice of a single ``items`` arena.  No per-node Python objects
  exist at any point, during or after the build.
* **Level-order build** — the frontier of one depth level is processed as
  arrays: each level issues one batched box-vs-hyperplane intersection
  kernel per child slot (``branching`` calls covering *every* splitting cell
  of the level) instead of one call per node, and one stable argsort
  regroups the surviving incidences into the next frontier.
* **Iterative queries** — :meth:`FlatTree.query` walks the CSR store with
  a vectorised node frontier (no recursion, no node objects), and
  :meth:`FlatTree.query_many` runs *many* boxes through one traversal by
  keeping a ``(query, node)`` pair frontier, which is what the batched
  session probe path calls.

The split policy is pluggable (:class:`SplitRule`): the quadtree rule cuts
every cell into its ``2^k`` midpoint quadrants and keeps the recursive
builder's stopping rules bit for bit on non-degenerate inputs (a cell with
at most ``capacity`` hyperplanes stays a leaf, ``max_depth`` bounds
pathological recursion, a split in which no child is strictly smaller than
its parent is rolled back).  The cutting rule samples one data-driven
binary split per cell and deliberately *tightens* the rollback: a cut
whose largest child keeps more than
:attr:`SampledCutSplitRule.LOAD_REDUCTION` of the parent's hyperplanes is
abandoned, so cutting trees can legitimately differ from the PR 2
recursive builder wherever a cut barely separates.  A soft ``max_nodes``
budget turns the remaining frontier into leaves once exhausted — rationed
cheapest-cells-first rather than in the recursive builders' depth-first
order, so budget-bound trees may differ structurally too.  Queries stay
exact in every case because leaf candidates are post-filtered with the
exact kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DegenerateHyperplaneError, DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.hyperplane import hyperplanes_intersect_box_mask
from repro.perf.arena import GrowableArena
from repro.perf.blocking import iter_blocks, memory_cap_bytes
from repro.perf.executor import (
    ShmKernel,
    resolve_threads,
    run_tasks,
    split_memory_cap,
)

#: Unsplittable-duplicate policies (see :class:`FlatTree`).
UNSPLITTABLE_POLICIES = ("keep", "raise")


def fit_root_box(
    coefficients: np.ndarray, rhs: np.ndarray, domain: Box
) -> Box:
    """Tight root cell around the hyperplane cluster inside ``domain``.

    A single hyperplane crosses almost every cell of the huge default dual
    domain, so fitting to where hyperplanes *individually* cross shrinks
    nothing; what localises them is where they *concentrate*.  The fit
    therefore solves the least-squares point ``c`` minimising the summed
    squared (normalised) distances to all hyperplanes — for eclipse
    workloads that is the region where the skyline duals mutually intersect
    (e.g. near ``(-1, ..., -1)`` for anticorrelated data, whose attribute
    sums are nearly constant) — and takes the bounding box of every
    hyperplane's closest point to ``c``, clipped into the domain and padded
    by a few ulps.

    Every hyperplane whose closest point survives the clipping crosses the
    fitted box (it contains that point); the rest land in the tree's
    always-scanned overflow set, so nothing is lost.  Queries against a
    tree rooted at the fitted box are exact **for boxes inside the fitted
    box**; callers accepting arbitrary boxes must fall back to a scan
    outside it, exactly as :class:`repro.index.intersection.IntersectionIndex`
    already does for boxes escaping the indexed domain.

    This closes the PR 3 "domain-shrinking root" gap: the default domain
    dwarfs the cluster, so midpoint quadrant splits spend whole levels
    separating nothing; rooting at the cluster restores their pruning
    power without touching the split rule.
    """
    norms = np.linalg.norm(coefficients, axis=1)
    usable = norms > 0.0
    if not usable.any():
        return domain
    unit = coefficients[usable] / norms[usable, None]
    offsets = rhs[usable] / norms[usable]
    # Least-squares concentration point (minimum-norm solution when the
    # normal matrix is singular, e.g. all hyperplanes parallel).
    center, *_ = np.linalg.lstsq(unit, offsets, rcond=None)
    closest = center[None, :] - (unit @ center - offsets)[:, None] * unit
    lows, highs = domain.lows, domain.highs
    closest = np.clip(closest, lows[None, :], highs[None, :])
    pad = 4.0 * np.spacing(
        max(float(np.abs(lows).max()), float(np.abs(highs).max()), 1.0)
    )
    out_lo = np.maximum(lows, closest.min(axis=0) - pad)
    out_hi = np.minimum(highs, closest.max(axis=0) + pad)
    return Box(out_lo, out_hi)


def auto_capacity(num_hyperplanes: int) -> int:
    """Size-aware leaf capacity shared by every tree backend: ``max(8, sqrt(m))``.

    Pushing the capacity all the way down to a small constant forces
    ``Θ((m/c)^k)`` cells; a capacity of ``sqrt(m)`` keeps the total number of
    hyperplane/cell incidences near-linear while still giving queries a
    large pruning factor.  (Single source of truth — the quadtree and the
    cutting tree used to carry duplicate copies of this policy.)
    """
    return max(8, int(np.sqrt(max(num_hyperplanes, 1))))


# ----------------------------------------------------------------------
# Split rules
# ----------------------------------------------------------------------
class SplitRule:
    """Strategy object: how one level of cells is cut into children.

    ``branching`` is the fixed number of children per split.  ``plan_level``
    receives the cells that passed the capacity/depth/budget gates as arrays
    and returns, for each, the child boxes plus a mask of cells whose split
    must be abandoned before any intersection test runs (e.g. a degenerate
    cut position).  Abandoned cells become leaves, exactly like the
    recursive builders' early returns.
    """

    branching: int

    def plan_level(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        depth: int,
        items_concat: np.ndarray,
        offsets: np.ndarray,
        coefficients: np.ndarray,
        rhs: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(child_lows, child_highs, ok)``.

        ``child_lows``/``child_highs`` have shape ``(cells, branching, k)``;
        ``ok`` is a boolean mask of cells whose split should proceed.
        """
        raise NotImplementedError

    def child_ranges(
        self,
        rows: np.ndarray,
        parent_lows: np.ndarray,
        parent_highs: np.ndarray,
        cells: np.ndarray,
        depth: int,
        child_lows: np.ndarray,
        child_highs: np.ndarray,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Exact ``(gmin, gmax)`` of every child slot for one item chunk.

        ``rows`` are the hyperplane coefficient rows of the chunk and
        ``parent_lows``/``parent_highs`` the per-item *parent* cell bounds;
        ``cells`` maps each item to its cell row in the cell-level
        ``child_lows``/``child_highs`` arrays of shape
        ``(cells, branching, k)``.  Implementations must replicate the exact
        interval arithmetic of
        :func:`repro.geometry.hyperplane.hyperplanes_intersect_box_mask` —
        same products, same left-to-right per-dimension summation order —
        so the flattened build is bit-identical to the recursive reference.
        They exploit that a child differs from its parent in few bounds,
        which avoids materialising per-child per-item box arrays.
        """
        raise NotImplementedError

    def plan_level_ranges(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        depth: int,
        arena: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        coefficients: np.ndarray,
        rhs: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Variant of :meth:`plan_level` for the sorted one-dimensional build.

        There each cell's hyperplane set is the slice ``arena[starts[c] :
        ends[c]]`` of one coordinate-sorted arena instead of a packed CSR.
        """
        return self.plan_level(lows, highs, depth, arena, None, coefficients, rhs)

    def split_makes_progress(
        self, parent_counts: np.ndarray, child_counts: np.ndarray
    ) -> np.ndarray:
        """Which planned splits are worth keeping (vectorised rollback rule).

        The default reproduces the recursive builders: a split survives when
        *any* child is strictly smaller than its parent.  Rules may tighten
        this — a subdivision scheme whose value is a per-cell load guarantee
        gains nothing from splits that barely reduce the load.
        """
        return (child_counts < parent_counts[:, None]).any(axis=1)


class MidpointSplitRule(SplitRule):
    """The quadtree rule: cut every cell into its ``2^k`` midpoint quadrants.

    Child ordering replicates :meth:`repro.geometry.boxes.Box.split`: child
    ``mask`` takes the upper half of dimension ``j`` iff bit ``k - 1 - j`` of
    ``mask`` is set.
    """

    def __init__(self, dimensions: int):
        self._k = int(dimensions)
        self.branching = 2 ** self._k
        # (branching, k) boolean: True where the child takes the upper half.
        bits = np.array(
            [
                [(mask >> (self._k - 1 - j)) & 1 for j in range(self._k)]
                for mask in range(self.branching)
            ],
            dtype=bool,
        )
        self._upper = bits

    def plan_level(self, lows, highs, depth, items_concat, offsets, coefficients, rhs):
        mid = (lows + highs) / 2.0
        upper = self._upper[None, :, :]  # (1, B, k)
        child_lows = np.where(upper, mid[:, None, :], lows[:, None, :])
        child_highs = np.where(upper, highs[:, None, :], mid[:, None, :])
        ok = np.ones(lows.shape[0], dtype=bool)
        return child_lows, child_highs, ok

    def child_ranges(self, rows, parent_lows, parent_highs, cells, depth, child_lows, child_highs):
        # Every child bound is the parent low, the parent mid, or the parent
        # high, so three per-dimension product tables cover all 2^k children.
        # Selected per child bit pattern and summed dimension by dimension in
        # natural order, the result is bit-identical to evaluating
        # hyperplanes_intersect_box_mask against each child box.
        mids = (parent_lows + parent_highs) / 2.0
        sign = rows >= 0
        prod_low = rows * parent_lows
        prod_mid = rows * mids
        prod_high = rows * parent_highs
        min_lower = np.where(sign, prod_low, prod_mid)  # child on [low, mid]
        min_upper = np.where(sign, prod_mid, prod_high)  # child on [mid, high]
        max_lower = np.where(sign, prod_mid, prod_low)
        max_upper = np.where(sign, prod_high, prod_mid)
        out = []
        for c in range(self.branching):
            bits = self._upper[c]
            gmin = (min_upper if bits[0] else min_lower)[:, 0].copy()
            gmax = (max_upper if bits[0] else max_lower)[:, 0].copy()
            for j in range(1, self._k):
                gmin += (min_upper if bits[j] else min_lower)[:, j]
                gmax += (max_upper if bits[j] else max_lower)[:, j]
            out.append((gmin, gmax))
        return out


class SampledCutSplitRule(SplitRule):
    """The cutting rule: one binary cut per cell at a sampled position.

    The cut coordinate cycles through the dimensions by depth (every cell of
    one level shares ``split_dim = depth % k``, which is what lets the level
    batch cleanly); the cut *position* is the median of where a random
    sample of the cell's crossing hyperplanes meets the cell, falling back
    to the midpoint.  Because positions track hyperplane density instead of
    geometry, the tree stays balanced on the clustered inputs that degrade
    the midpoint quadtree (the QUAD vs CUTTING worst case of Figs. 13/14).

    The generator is consumed in breadth-first frontier order (level by
    level, cells left to right), which is the documented deterministic order
    of the flattened build; the slow reference builder used by the parity
    tests replicates it with a per-node queue.
    """

    #: At most this many crossing hyperplanes are sampled per cell.
    SAMPLE_SIZE = 64

    #: A cut must reduce the largest child load to at most this fraction of
    #: the parent's load, or it is rolled back.  The (1/t)-cutting guarantee
    #: is a *load bound* — a cut whose children keep essentially the whole
    #: parent set (as happens when the domain dwarfs the region where the
    #: hyperplanes vary) buys no bound while doubling the build's incidence
    #: mass per level; rolling such cuts back keeps degenerate builds from
    #: burning the whole node budget on separation that never comes.  The
    #: recursive builder only rolled back fully useless cuts (both children
    #: == parent) and relied on its depth-first budget order to abandon the
    #: non-separating regions instead.
    LOAD_REDUCTION = 0.98

    def __init__(self, dimensions: int, rng: np.random.Generator):
        self._k = int(dimensions)
        self.branching = 2
        self._rng = rng

    def sample_split_value(
        self,
        low: np.ndarray,
        high: np.ndarray,
        indices: np.ndarray,
        split_dim: int,
        coefficients: np.ndarray,
        rhs: np.ndarray,
    ) -> float:
        """Median crossing coordinate of a random sample (midpoint fallback)."""
        midpoint = float((low[split_dim] + high[split_dim]) / 2.0)
        sample_size = min(indices.size, self.SAMPLE_SIZE)
        if sample_size == 0:
            return midpoint
        sampled = self._rng.choice(indices, size=sample_size, replace=False)
        coeffs = coefficients[sampled]
        sampled_rhs = rhs[sampled]
        center = (low + high) / 2.0
        axis_coeff = coeffs[:, split_dim]
        usable = np.abs(axis_coeff) > 1e-12
        if not np.any(usable):
            return midpoint
        rest = sampled_rhs[usable] - (
            coeffs[usable] @ center - axis_coeff[usable] * center[split_dim]
        )
        crossings = rest / axis_coeff[usable]
        crossings = crossings[(crossings > low[split_dim]) & (crossings < high[split_dim])]
        if crossings.size == 0:
            return midpoint
        return float(np.median(crossings))

    def _plan_cuts(self, lows, highs, split_dim, cell_indices, coefficients, rhs):
        """Shared per-cell cut planning for both build representations.

        ``cell_indices`` yields each cell's hyperplane index array in
        frontier order (the rng consumption order).  Cuts are clamped into
        the cell (``Box.split_at`` semantics) and abandoned when they would
        leave a zero-width child.
        """
        cells = lows.shape[0]
        child_lows = np.repeat(lows[:, None, :], 2, axis=1)
        child_highs = np.repeat(highs[:, None, :], 2, axis=1)
        ok = np.ones(cells, dtype=bool)
        for c, indices in enumerate(cell_indices):
            value = self.sample_split_value(
                lows[c], highs[c], indices, split_dim, coefficients, rhs
            )
            value = min(max(value, lows[c, split_dim]), highs[c, split_dim])
            if not (lows[c, split_dim] < value < highs[c, split_dim]):
                ok[c] = False
                continue
            child_highs[c, 0, split_dim] = value
            child_lows[c, 1, split_dim] = value
        return child_lows, child_highs, ok

    def plan_level(self, lows, highs, depth, items_concat, offsets, coefficients, rhs):
        return self._plan_cuts(
            lows,
            highs,
            depth % self._k,
            (
                items_concat[offsets[c] : offsets[c + 1]]
                for c in range(lows.shape[0])
            ),
            coefficients,
            rhs,
        )

    def plan_level_ranges(self, lows, highs, depth, arena, starts, ends, coefficients, rhs):
        return self._plan_cuts(
            lows,
            highs,
            0,
            (arena[starts[c] : ends[c]] for c in range(lows.shape[0])),
            coefficients,
            rhs,
        )

    def child_ranges(self, rows, parent_lows, parent_highs, cells, depth, child_lows, child_highs):
        # The two children differ from the parent only in the split
        # dimension's bound, so the other dimensions' contributions are the
        # parent's own; only the split-dimension column is swapped for the
        # cut position (read back from the planned child boxes).  Summation
        # runs dimension by dimension in natural order for bit-parity with
        # hyperplanes_intersect_box_mask.
        sd = depth % self._k
        sign = rows >= 0
        prod_low = rows * parent_lows
        prod_high = rows * parent_highs
        par_min = np.where(sign, prod_low, prod_high)
        par_max = np.where(sign, prod_high, prod_low)
        axis = rows[:, sd]
        axis_sign = sign[:, sd]
        cut = axis * child_highs[cells, 0, sd]
        # Child 0 spans [low, cut], child 1 spans [cut, high] along sd.
        sd_cols = (
            (np.where(axis_sign, prod_low[:, sd], cut), np.where(axis_sign, cut, prod_low[:, sd])),
            (np.where(axis_sign, cut, prod_high[:, sd]), np.where(axis_sign, prod_high[:, sd], cut)),
        )
        out = []
        for c in range(2):
            min_sd, max_sd = sd_cols[c]
            gmin = min_sd.copy() if sd == 0 else par_min[:, 0].copy()
            gmax = max_sd.copy() if sd == 0 else par_max[:, 0].copy()
            for j in range(1, self._k):
                gmin += min_sd if j == sd else par_min[:, j]
                gmax += max_sd if j == sd else par_max[:, j]
            out.append((gmin, gmax))
        return out

    def split_makes_progress(self, parent_counts, child_counts):
        limit = np.minimum(
            parent_counts - 1,
            np.floor(self.LOAD_REDUCTION * parent_counts).astype(np.intp),
        )
        return child_counts.max(axis=1) <= limit


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class FlatTree:
    """Flattened level-order spatial tree over a set of hyperplanes.

    Parameters
    ----------
    coefficients, rhs:
        The hyperplanes ``coefficients[i] · x = rhs[i]``, as parallel
        ``(m, k)`` / ``(m,)`` arrays.
    domain:
        The dual-domain box the root covers.  Hyperplanes that do not cross
        the domain go to an overflow set.  Queries are exact for boxes
        contained in the domain; for ``k = 1`` they are exact for *every*
        box (each hyperplane is a point, held either in the tree or in the
        overflow set), but in higher dimensions a box that only partially
        overlaps the domain can miss hyperplanes whose crossing with the
        box lies entirely outside the domain — callers that accept
        domain-escaping boxes must fall back to a scan, as
        :class:`repro.index.intersection.IntersectionIndex` does.
    split_rule:
        A :class:`SplitRule` instance (midpoint quadrants or sampled cuts).
    capacity, max_depth, max_nodes:
        Stopping policy (see the module docstring).
    on_unsplittable:
        ``"keep"`` (default) reproduces the recursive builders: a cell of
        coincident duplicate hyperplanes that exceeds the capacity is split
        all the way to ``max_depth`` and kept as an oversized leaf.
        ``"raise"`` surfaces the pathology as a clear
        :class:`~repro.errors.DegenerateHyperplaneError` instead — used by
        :meth:`repro.index.eclipse_index.EclipseIndex.build` so degenerate
        inputs fail with one actionable message, not a deep useless build.
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        rhs: np.ndarray,
        domain: Box,
        split_rule: SplitRule,
        capacity: Optional[int] = None,
        max_depth: int = 12,
        max_nodes: int = 4096,
        on_unsplittable: str = "keep",
        shrink_domain: bool = False,
    ):
        coefficients = np.asarray(coefficients, dtype=float)
        rhs = np.asarray(rhs, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != rhs.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (m, k) and rhs must be (m,)"
            )
        if coefficients.size and coefficients.shape[1] != domain.dimensions:
            raise DimensionMismatchError(
                "hyperplane dimensionality does not match the tree domain"
            )
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if max_nodes < 1:
            raise ValueError("max_nodes must be at least 1")
        if on_unsplittable not in UNSPLITTABLE_POLICIES:
            raise ValueError(
                f"on_unsplittable must be one of {UNSPLITTABLE_POLICIES}"
            )
        if shrink_domain and coefficients.shape[0]:
            # Opt-in root fitting (see fit_root_box): the root is shrunk to
            # the hyperplane cluster, so queries are exact for boxes inside
            # the *fitted* root (hyperplanes missing it land in the
            # always-scanned overflow set); callers accepting arbitrary
            # boxes must scan outside it, as IntersectionIndex does.
            domain = fit_root_box(coefficients, rhs, domain)
        # Hyperplane arenas: dynamically inserted rows append into spare
        # capacity instead of re-concatenating the whole store.
        self._coeff_arena = GrowableArena(coefficients)
        self._rhs_arena = GrowableArena(rhs)
        self._domain = domain
        self._rule = split_rule
        self._capacity = (
            auto_capacity(coefficients.shape[0]) if capacity is None else int(capacity)
        )
        if self._capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._max_depth = int(max_depth)
        self._max_nodes = int(max_nodes)
        self._on_unsplittable = on_unsplittable

        # Per-node overflow buffers of dynamically inserted hyperplanes (see
        # insert_hyperplanes); empty until the first insert.  Each buffer is
        # its own small arena so repeated inserts into the same leaf append
        # instead of re-concatenating.
        self._overflow: Dict[int, GrowableArena] = {}
        self._overflow_nodes = np.empty(0, dtype=np.intp)
        self._overflow_total = 0

        all_indices = np.arange(coefficients.shape[0], dtype=np.intp)
        in_domain = hyperplanes_intersect_box_mask(coefficients, rhs, domain)
        self._outside_arena = GrowableArena(all_indices[~in_domain])
        # Pruning slack for the sorted 1-D representation (see _build_1d);
        # zero for the mask-based general build.
        self._prune_pad = 0.0
        if domain.dimensions == 1:
            self._build_1d(all_indices[in_domain])
        else:
            self._build(all_indices[in_domain])
        if self._on_unsplittable == "raise":
            self._check_unsplittable_leaves()

    # ------------------------------------------------------------------
    # Arena-backed stores
    # ------------------------------------------------------------------
    # The CSR node arrays and the item/hyperplane stores live in
    # capacity-doubling arenas so subtree grafts and dynamic inserts append
    # into spare capacity.  The properties below are zero-copy views of the
    # valid prefixes — always re-read them, never cache across an append.
    @property
    def _coefficients(self) -> np.ndarray:
        return self._coeff_arena.view

    @property
    def _rhs(self) -> np.ndarray:
        return self._rhs_arena.view

    @property
    def _outside(self) -> np.ndarray:
        return self._outside_arena.view

    @property
    def cell_lows(self) -> np.ndarray:
        return self._cell_lows_a.view

    @property
    def cell_highs(self) -> np.ndarray:
        return self._cell_highs_a.view

    @property
    def node_depth(self) -> np.ndarray:
        return self._node_depth_a.view

    @property
    def first_child(self) -> np.ndarray:
        return self._first_child_a.view

    @property
    def item_start(self) -> np.ndarray:
        return self._item_start_a.view

    @property
    def item_end(self) -> np.ndarray:
        return self._item_end_a.view

    @property
    def items(self) -> np.ndarray:
        return self._items_a.view

    def _store_nodes(
        self,
        cell_lows: np.ndarray,
        cell_highs: np.ndarray,
        node_depth: np.ndarray,
        first_child: np.ndarray,
        item_start: np.ndarray,
        item_end: np.ndarray,
        items: np.ndarray,
        num_nodes: int,
    ) -> None:
        """Wrap the freshly built CSR store into the growable arenas."""
        self._cell_lows_a = GrowableArena(cell_lows)
        self._cell_highs_a = GrowableArena(cell_highs)
        self._node_depth_a = GrowableArena(node_depth)
        self._first_child_a = GrowableArena(first_child)
        self._item_start_a = GrowableArena(item_start)
        self._item_end_a = GrowableArena(item_end)
        self._items_a = GrowableArena(np.asarray(items, dtype=np.intp))
        self.num_nodes = num_nodes

    @property
    def arena_grows(self) -> int:
        """Buffer reallocations of every arena this tree owns."""
        grows = (
            self._coeff_arena.grows
            + self._rhs_arena.grows
            + self._outside_arena.grows
            + self._cell_lows_a.grows
            + self._cell_highs_a.grows
            + self._node_depth_a.grows
            + self._first_child_a.grows
            + self._item_start_a.grows
            + self._item_end_a.grows
            + self._items_a.grows
        )
        grows += sum(buffer.grows for buffer in self._overflow.values())
        return int(grows)

    def nbytes(self) -> int:
        """Resident bytes of every arena this tree owns, headroom included."""
        total = (
            self._coeff_arena.nbytes()
            + self._rhs_arena.nbytes()
            + self._outside_arena.nbytes()
            + self._cell_lows_a.nbytes()
            + self._cell_highs_a.nbytes()
            + self._node_depth_a.nbytes()
            + self._first_child_a.nbytes()
            + self._item_start_a.nbytes()
            + self._item_end_a.nbytes()
            + self._items_a.nbytes()
        )
        total += sum(buffer.nbytes() for buffer in self._overflow.values())
        total += int(self._overflow_nodes.nbytes)
        return int(total)

    # ------------------------------------------------------------------
    # Build (one-dimensional fast path)
    # ------------------------------------------------------------------
    def _build_1d(self, root_items: np.ndarray) -> None:
        """Sorted-interval build for a one-dimensional dual domain.

        For ``k = 1`` every non-degenerate hyperplane is the *point*
        ``x = rhs / coefficient``, so the whole build collapses into
        interval partitioning of one coordinate-sorted arena: a cell's
        hyperplane set is a contiguous slice of the arena, a split costs two
        vectorised binary searches per child instead of a mask kernel over
        every incidence, and the leaf "slices" are literal views into the
        arena (boundary points belong to both neighbouring cells, so slices
        may overlap).  This is what makes the worst-case ``d = 2`` build —
        hundreds of thousands of clustered intersection points that midpoint
        splits barely separate — cheap: the work per level is proportional
        to the number of *cells*, not the number of incidences.

        Quotients are clamped into the domain (an in-domain hyperplane whose
        rounded quotient falls an ulp outside must not vanish from every
        leaf), and queries on one-dimensional trees pad their *pruning*
        bounds by a few ulps to absorb the quotient rounding; the exact
        post-filter keeps results identical to the mask-based build.
        """
        coef = self._coefficients[root_items, 0]
        points = self._rhs[root_items] / coef if root_items.size else np.empty(0)
        points = np.clip(points, self._domain.lows[0], self._domain.highs[0])
        order = np.argsort(points)
        arena = np.asarray(root_items, dtype=np.intp)[order]
        qs = points[order]
        self._prune_pad = 4.0 * np.spacing(
            max(abs(float(self._domain.lows[0])), abs(float(self._domain.highs[0])), 1.0)
        )

        rule = self._rule
        branching = rule.branching
        store_lows: List[np.ndarray] = [self._domain.lows[None, :]]
        store_highs: List[np.ndarray] = [self._domain.highs[None, :]]
        store_depth: List[np.ndarray] = [np.zeros(1, dtype=np.intp)]
        first_child_chunks: List[np.ndarray] = [np.full(1, -1, dtype=np.intp)]
        first_child_updates: List[Tuple[np.ndarray, np.ndarray]] = []
        nodes_created = 1

        leaf_ids: List[np.ndarray] = []
        leaf_starts: List[np.ndarray] = []
        leaf_ends: List[np.ndarray] = []

        frontier_ids = np.zeros(1, dtype=np.intp)
        frontier_lows = self._domain.lows[None, :].copy()
        frontier_highs = self._domain.highs[None, :].copy()
        starts = np.zeros(1, dtype=np.intp)
        ends = np.array([arena.size], dtype=np.intp)
        depth = 0

        while frontier_ids.size:
            counts = ends - starts
            want_split = (counts > self._capacity) & (depth < self._max_depth)

            def _leaf_out(mask: np.ndarray) -> None:
                sel = np.flatnonzero(mask)
                if sel.size:
                    leaf_ids.append(frontier_ids[sel])
                    leaf_starts.append(starts[sel])
                    leaf_ends.append(ends[sel])

            cand = np.flatnonzero(want_split)
            allowed = self._budget_allowance(cand.size, nodes_created, depth)
            if cand.size > allowed:
                if allowed == 0:
                    cand = cand[:0]
                else:
                    cheap = np.argsort(counts[cand], kind="stable")
                    cand = np.sort(cand[cheap[:allowed]])
            if cand.size == 0:
                _leaf_out(np.ones(frontier_ids.size, dtype=bool))
                break

            child_lows, child_highs, ok = rule.plan_level_ranges(
                frontier_lows[cand],
                frontier_highs[cand],
                depth,
                arena,
                starts[cand],
                ends[cand],
                self._coefficients,
                self._rhs,
            )
            keep = np.flatnonzero(ok)
            kept = cand[keep]
            clo = child_lows[keep][:, :, 0]
            chi = child_highs[keep][:, :, 0]
            cstart = np.searchsorted(qs, clo, side="left")
            cend = np.searchsorted(qs, chi, side="right")
            cstart = np.maximum(cstart, starts[kept][:, None])
            cend = np.minimum(cend, ends[kept][:, None])
            cend = np.maximum(cend, cstart)
            child_counts = cend - cstart
            will_split = rule.split_makes_progress(counts[kept], child_counts)

            split_cell_ids = kept[will_split]
            is_leaf_cell = np.ones(frontier_ids.size, dtype=bool)
            is_leaf_cell[split_cell_ids] = False
            _leaf_out(is_leaf_cell)

            num_split = int(np.count_nonzero(will_split))
            if num_split == 0:
                break
            new_first = nodes_created + branching * np.arange(
                num_split, dtype=np.intp
            )
            first_child_updates.append((frontier_ids[split_cell_ids], new_first))
            sel_lows = child_lows[keep[will_split]].reshape(-1, 1)
            sel_highs = child_highs[keep[will_split]].reshape(-1, 1)
            store_lows.append(sel_lows)
            store_highs.append(sel_highs)
            store_depth.append(
                np.full(num_split * branching, depth + 1, dtype=np.intp)
            )
            first_child_chunks.append(
                np.full(num_split * branching, -1, dtype=np.intp)
            )
            child_ids = nodes_created + np.arange(
                num_split * branching, dtype=np.intp
            )
            nodes_created += num_split * branching

            frontier_ids = child_ids
            frontier_lows = sel_lows
            frontier_highs = sel_highs
            starts = cstart[will_split].reshape(-1)
            ends = cend[will_split].reshape(-1)
            depth += 1

        first_child = np.concatenate(first_child_chunks)
        for parents, firsts in first_child_updates:
            first_child[parents] = firsts
        item_start = np.zeros(nodes_created, dtype=np.intp)
        item_end = np.zeros(nodes_created, dtype=np.intp)
        if leaf_ids:
            ids = np.concatenate(leaf_ids)
            item_start[ids] = np.concatenate(leaf_starts)
            item_end[ids] = np.concatenate(leaf_ends)
        self._store_nodes(
            np.concatenate(store_lows, axis=0),
            np.concatenate(store_highs, axis=0),
            np.concatenate(store_depth),
            first_child,
            item_start,
            item_end,
            arena,
            nodes_created,
        )

    # ------------------------------------------------------------------
    # Build (general case)
    # ------------------------------------------------------------------
    def _build(self, root_items: np.ndarray) -> None:
        k = self._domain.dimensions
        rule = self._rule
        branching = rule.branching
        coeffs, rhs = self._coefficients, self._rhs

        # Node store, grown level by level then finalised into flat arrays.
        store_lows: List[np.ndarray] = [self._domain.lows[None, :]]
        store_highs: List[np.ndarray] = [self._domain.highs[None, :]]
        store_depth: List[np.ndarray] = [np.zeros(1, dtype=np.intp)]
        first_child_chunks: List[np.ndarray] = [np.full(1, -1, dtype=np.intp)]
        nodes_created = 1

        # Leaf item arena, recorded in (ascending) node-id order.
        leaf_node_ids: List[np.ndarray] = []
        leaf_counts: List[np.ndarray] = []
        arena_chunks: List[np.ndarray] = []

        # Frontier: CSR over the cells of the current level.
        frontier_ids = np.zeros(1, dtype=np.intp)
        frontier_lows = self._domain.lows[None, :].copy()
        frontier_highs = self._domain.highs[None, :].copy()
        frontier_items = np.asarray(root_items, dtype=np.intp)
        frontier_offsets = np.array([0, frontier_items.size], dtype=np.intp)
        depth = 0

        # first_child is scattered into this after the loop (ids are global).
        first_child_updates: List[Tuple[np.ndarray, np.ndarray]] = []

        while frontier_ids.size:
            counts = np.diff(frontier_offsets)
            want_split = (counts > self._capacity) & (depth < self._max_depth)

            if not want_split.any():
                self._record_leaves(
                    frontier_ids,
                    counts,
                    frontier_items,
                    frontier_offsets,
                    np.ones(frontier_ids.size, dtype=bool),
                    leaf_node_ids,
                    leaf_counts,
                    arena_chunks,
                )
                break

            cand = np.flatnonzero(want_split)
            allowed = self._budget_allowance(cand.size, nodes_created, depth)
            if cand.size > allowed:
                if allowed == 0:
                    self._record_leaves(
                        frontier_ids,
                        counts,
                        frontier_items,
                        frontier_offsets,
                        np.ones(frontier_ids.size, dtype=bool),
                        leaf_node_ids,
                        leaf_counts,
                        arena_chunks,
                    )
                    break
                cheap = np.argsort(counts[cand], kind="stable")
                cand = np.sort(cand[cheap[:allowed]])
            # Gather the candidate cells' incidences into one contiguous CSR.
            cand_counts = counts[cand]
            cand_offsets = np.concatenate(([0], np.cumsum(cand_counts)))
            cand_items = frontier_items[_csr_take(frontier_offsets, cand)]

            child_lows, child_highs, ok = rule.plan_level(
                frontier_lows[cand],
                frontier_highs[cand],
                depth,
                cand_items,
                cand_offsets,
                coeffs,
                rhs,
            )

            # Batched per-child intersection masks over the ok cells only.
            keep = np.flatnonzero(ok)
            split_counts = cand_counts[keep]
            split_offsets = np.concatenate(([0], np.cumsum(split_counts)))
            if keep.size == cand.size:
                split_items = cand_items
            else:
                split_items = cand_items[_csr_take(cand_offsets, keep)]
            cell_of_item = np.repeat(
                np.arange(keep.size, dtype=np.intp), split_counts
            )
            masks = self._child_masks(
                split_items,
                cell_of_item,
                frontier_lows[cand[keep]],
                frontier_highs[cand[keep]],
                child_lows[keep],
                child_highs[keep],
                depth,
            )
            # Per (cell, child) candidate counts via segment sums.
            child_counts = np.empty((keep.size, branching), dtype=np.intp)
            seg_starts = split_offsets[:-1]
            for c in range(branching):
                if keep.size:
                    # reduceat keeps the bool dtype (logical or), so widen
                    # to integers before segment-summing.
                    child_counts[:, c] = np.add.reduceat(
                        masks[c].astype(np.int64), seg_starts
                    )

            will_split = self._rule.split_makes_progress(split_counts, child_counts)

            # Cells that do not split at this level become leaves:
            # under-capacity cells, depth-capped cells, abandoned cuts,
            # rolled-back (no-progress) splits, budget-denied splits.
            split_cell_ids = cand[keep[will_split]]
            is_leaf_cell = np.ones(frontier_ids.size, dtype=bool)
            is_leaf_cell[split_cell_ids] = False
            self._record_leaves(
                frontier_ids,
                counts,
                frontier_items,
                frontier_offsets,
                is_leaf_cell,
                leaf_node_ids,
                leaf_counts,
                arena_chunks,
            )

            num_split = int(np.count_nonzero(will_split))
            if num_split == 0:
                break

            # Append the new child nodes (branching per splitting cell,
            # breadth-first ids) and remember the parents' first_child.
            new_first = nodes_created + branching * np.arange(
                num_split, dtype=np.intp
            )
            first_child_updates.append((frontier_ids[split_cell_ids], new_first))
            sel_lows = child_lows[keep[will_split]].reshape(-1, k)
            sel_highs = child_highs[keep[will_split]].reshape(-1, k)
            store_lows.append(sel_lows)
            store_highs.append(sel_highs)
            store_depth.append(
                np.full(num_split * branching, depth + 1, dtype=np.intp)
            )
            first_child_chunks.append(
                np.full(num_split * branching, -1, dtype=np.intp)
            )
            child_ids = nodes_created + np.arange(
                num_split * branching, dtype=np.intp
            )
            nodes_created += num_split * branching

            # Regroup the surviving incidences into the next frontier.  No
            # sort is needed: within each child slot the hits are already
            # ordered by cell rank (and by parent item order inside a cell),
            # so each hit's destination slot is its group offset plus its
            # running position within the group — one linear scatter.
            split_rank = np.full(keep.size, -1, dtype=np.intp)
            split_rank[will_split] = np.arange(num_split, dtype=np.intp)
            item_rank = split_rank[cell_of_item]
            live = item_rank >= 0
            sel_counts = child_counts[will_split]  # (num_split, branching)
            group_counts = sel_counts.reshape(-1)  # (rank, child) row-major
            next_offsets = np.concatenate(([0], np.cumsum(group_counts))).astype(
                np.intp
            )
            next_items = np.empty(next_offsets[-1], dtype=np.intp)
            for c in range(branching):
                hit = masks[c] & live
                items_c = split_items[hit]
                if items_c.size == 0:
                    continue
                ranks_c = item_rank[hit]
                counts_c = sel_counts[:, c]
                group_starts = np.cumsum(counts_c) - counts_c
                within = np.arange(items_c.size, dtype=np.intp) - np.repeat(
                    group_starts, counts_c
                )
                next_items[next_offsets[ranks_c * branching + c] + within] = items_c

            frontier_ids = child_ids
            frontier_lows = sel_lows
            frontier_highs = sel_highs
            frontier_items = next_items
            frontier_offsets = next_offsets
            depth += 1

        # Finalise the CSR store.
        first_child = np.concatenate(first_child_chunks)
        for parents, firsts in first_child_updates:
            first_child[parents] = firsts
        item_start = np.zeros(nodes_created, dtype=np.intp)
        item_end = np.zeros(nodes_created, dtype=np.intp)
        if leaf_node_ids:
            ids = np.concatenate(leaf_node_ids)
            lens = np.concatenate(leaf_counts)
            ends = np.cumsum(lens)
            item_start[ids] = ends - lens
            item_end[ids] = ends
            items = (
                np.concatenate(arena_chunks) if arena_chunks else np.empty(0, np.intp)
            )
        else:
            items = np.empty(0, dtype=np.intp)
        self._store_nodes(
            np.concatenate(store_lows, axis=0),
            np.concatenate(store_highs, axis=0),
            np.concatenate(store_depth),
            first_child,
            item_start,
            item_end,
            items,
            nodes_created,
        )

    def _budget_allowance(
        self, candidates: int, nodes_created: int, depth: int
    ) -> int:
        """How many cells of this level the soft node budget lets split.

        Applied BEFORE any mask work (the recursive builders checked the
        budget at node entry for the same reason).  While the budget covers
        every candidate, all of them split — identical to the recursive
        builders, which is the regime the structural-parity tests pin.

        Once the budget binds, the remaining splits are rationed: at most
        ``remaining / levels-left`` cells split per level, and the cells
        with the fewest incidences go first (ties broken by frontier
        order).  Both choices mimic the cost shape of the recursive
        depth-first budget, which effectively spent its budget on deep,
        cheap subtrees and abandoned the shallow giants — without the
        reserve, a breadth-first build would blow the entire budget on one
        shallow level of maximal cells, paying the maximal mask cost for
        the least useful splits.  (Budget-bound trees may therefore differ
        structurally from the recursive builders — queries stay exact
        either way.)
        """
        branching = self._rule.branching
        remaining = max(0, (self._max_nodes - nodes_created) // branching)
        if remaining == 0:
            return 0
        if candidates * branching <= remaining:
            # The whole next-level frontier still fits: split everything,
            # exactly like the recursive builders.
            return candidates
        # Rationing keeps the build from mass-producing children that the
        # budget will immediately strand as leaves: every split of a cell
        # that barely separates multiplies the *stored* incidences by up to
        # ``branching``, so spending the budget one shallow level at a time
        # would pay maximal mask and copy cost for unrefinable cells.
        levels_left = max(1, self._max_depth - depth)
        return min(remaining, max(1, remaining // (levels_left * branching)))

    @staticmethod
    def _record_leaves(
        frontier_ids,
        counts,
        frontier_items,
        frontier_offsets,
        leaf_mask,
        leaf_node_ids,
        leaf_counts,
        arena_chunks,
    ) -> None:
        sel = np.flatnonzero(leaf_mask)
        if sel.size == 0:
            return
        leaf_node_ids.append(frontier_ids[sel])
        leaf_counts.append(counts[sel])
        arena_chunks.append(frontier_items[_csr_take(frontier_offsets, sel)])

    def _child_masks(
        self,
        split_items: np.ndarray,
        cell_of_item: np.ndarray,
        parent_lows: np.ndarray,
        parent_highs: np.ndarray,
        child_lows: np.ndarray,
        child_highs: np.ndarray,
        depth: int,
    ) -> List[np.ndarray]:
        """One exact intersection mask per child slot, batched over the level.

        ``split_items`` are the hyperplane indices of every splitting cell
        concatenated, ``cell_of_item`` maps each to its cell row in the
        cell-level bound arrays (``parent_*`` of shape ``(cells, k)``,
        ``child_*`` of shape ``(cells, branching, k)``).  The interval
        arithmetic itself lives in the split rule's
        :meth:`SplitRule.child_ranges`, which exploits the rule's child
        geometry; the scratch is chunked so the ``(items, k)`` float
        intermediates respect the shared kernel memory cap.
        """
        total = split_items.size
        branching = self._rule.branching
        k = self._coefficients.shape[1] if self._coefficients.ndim == 2 else 0
        masks = [np.empty(total, dtype=bool) for _ in range(branching)]
        if total == 0:
            return masks
        coeffs_rows = self._coefficients[split_items]
        rhs_rows = self._rhs[split_items]
        nondeg = np.any(np.abs(coeffs_rows) > 0.0, axis=1)
        # ~8 float scratch arrays of (block, k) per chunk evaluation.
        block = max(1, memory_cap_bytes(None) // (max(1, k) * 8 * 8))
        for start, stop in iter_blocks(total, block):
            cells = cell_of_item[start:stop]
            ranges = self._rule.child_ranges(
                coeffs_rows[start:stop],
                parent_lows[cells],
                parent_highs[cells],
                cells,
                depth,
                child_lows,
                child_highs,
            )
            for c, (gmin, gmax) in enumerate(ranges):
                masks[c][start:stop] = (
                    (gmin <= rhs_rows[start:stop])
                    & (rhs_rows[start:stop] <= gmax)
                    & nondeg[start:stop]
                )
        return masks

    def _check_unsplittable_leaves(self) -> None:
        """Raise when an overfull final leaf holds only coincident planes.

        Runs once after the build in ``on_unsplittable="raise"`` mode.  A
        leaf can end up over capacity for three reasons — the depth cap, the
        node budget, or a rolled-back split — and in all three the question
        is the same: was further splitting *impossible* because the cell is
        one stack of coincident duplicate hyperplanes?
        """
        leaves = np.flatnonzero(self.first_child < 0)
        loads = self.item_end[leaves] - self.item_start[leaves]
        for node in leaves[loads > self._capacity]:
            self._raise_if_coincident(
                self.items[self.item_start[node] : self.item_end[node]]
            )

    def _raise_if_coincident(self, indices: np.ndarray) -> None:
        """The unsplittable-duplicate detector behind ``on_unsplittable="raise"``.

        Coincident duplicates (proportional ``(coefficients, rhs)`` rows —
        e.g. every pair of three collinear input points yields the same
        geometric hyperplane) can never be separated by spatial splits, so a
        cell made of them that still exceeds the capacity at ``max_depth``
        means the whole descent was useless.  Surfacing it as one clear
        error beats silently building a maximal-depth tree.
        """
        rows = np.column_stack((self._coefficients[indices], self._rhs[indices]))
        pivot = rows[0]
        j = int(np.argmax(np.abs(pivot)))
        if pivot[j] == 0.0:
            return
        scale = rows[:, j] / pivot[j]
        if np.any(scale == 0.0):
            return
        residual = rows - scale[:, None] * pivot[None, :]
        # Tolerance is per row: a small but genuinely distinct hyperplane
        # stacked with much larger-magnitude duplicates must not be swallowed
        # by the big rows' scale.
        tolerance = 1e-9 * np.maximum(
            np.abs(rows).max(axis=1), np.abs(scale) * np.abs(pivot).max()
        )
        if np.all(np.abs(residual) <= tolerance[:, None]):
            raise DegenerateHyperplaneError(
                f"spatial-tree build ended with {indices.size} coincident "
                f"duplicate intersection hyperplanes stacked in one cell "
                f"(capacity {self._capacity}, max_depth {self._max_depth}); "
                "such duplicates — typically from collinear input points "
                "— can never be separated by spatial splits.  Use the "
                "'scan' backend, raise the capacity, or deduplicate the "
                "input points."
            )

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def insert_hyperplanes(
        self, coefficients: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """Append hyperplanes to the tree; returns their new item indices.

        New hyperplanes are appended to the coefficient arenas and routed to
        every node cell they cross with one batched iterative walk (the same
        frontier machinery as :meth:`query_many`, with a hyperplane-vs-cell
        interval test instead of box overlap).  At the leaves they land in
        *per-leaf overflow buffers* — queries collect the overflow of every
        node they visit, so results stay exact immediately.  A leaf whose
        overflow outgrows ``max(capacity, base load)`` triggers a local
        subtree rebuild (:meth:`_rebuild_subtree`): the flattened
        level-order builder runs over just that cell's items and the
        resulting subtree is grafted onto the CSR store in place, so update
        cost stays proportional to the touched region, never the whole
        tree.  Comparing the *overflow* against the base load (not their
        sum against a fixed multiple) is what keeps rebuilds amortised:
        budget- or rollback-bound leaves legitimately hold more than
        ``capacity`` items, and a sum-based trigger would re-run a futile
        sub-build on every insert touching such a leaf, while this trigger
        doubles the next rebuild point whenever a rebuild ends in a
        write-back.

        In ``on_unsplittable="raise"`` mode a triggered rebuild whose cell
        holds only coincident duplicate hyperplanes raises
        :class:`~repro.errors.DegenerateHyperplaneError`; the tree is left
        consistent (the new items stay in the overflow buffers), but callers
        that treat degeneracy as fatal should discard the index.
        """
        coefficients = np.asarray(coefficients, dtype=float)
        rhs = np.asarray(rhs, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != rhs.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (b, k) and rhs must be (b,)"
            )
        if coefficients.size and coefficients.shape[1] != self._domain.dimensions:
            raise DimensionMismatchError(
                "hyperplane dimensionality does not match the tree domain"
            )
        start = self.size
        new_ids = np.arange(start, start + coefficients.shape[0], dtype=np.intp)
        if coefficients.shape[0] == 0:
            return new_ids
        if start == 0 and self._coeff_arena.view.shape[1:] != coefficients.shape[1:]:
            # A tree built over zero hyperplanes never fixed its row shape;
            # re-seed (carrying the grow counters over).
            grows = self._coeff_arena.grows, self._rhs_arena.grows
            self._coeff_arena = GrowableArena(coefficients)
            self._rhs_arena = GrowableArena(rhs)
            self._coeff_arena.grows, self._rhs_arena.grows = grows
        else:
            self._coeff_arena.append(coefficients)
            self._rhs_arena.append(rhs)

        in_domain = hyperplanes_intersect_box_mask(
            coefficients, rhs, self._domain
        )
        if (~in_domain).any():
            self._outside_arena.append(new_ids[~in_domain])
        items = new_ids[in_domain]
        if items.size == 0 or self.num_nodes == 0:
            return new_ids

        # Route each new hyperplane to every node cell it crosses (exact
        # interval test, so overflow membership matches what a from-scratch
        # build would store at these leaves).
        branching = self._rule.branching
        pair_items = items
        pair_nodes = np.zeros(items.size, dtype=np.intp)
        leaf_item_chunks: List[np.ndarray] = []
        leaf_node_chunks: List[np.ndarray] = []
        while pair_items.size:
            lows = self.cell_lows[pair_nodes]
            highs = self.cell_highs[pair_nodes]
            rows = self._coefficients[pair_items]
            rr = self._rhs[pair_items]
            low_contrib = np.where(rows >= 0, rows * lows, rows * highs)
            high_contrib = np.where(rows >= 0, rows * highs, rows * lows)
            hit = (low_contrib.sum(axis=1) <= rr) & (
                rr <= high_contrib.sum(axis=1)
            )
            pair_items, pair_nodes = pair_items[hit], pair_nodes[hit]
            leaf = self.first_child[pair_nodes] < 0
            if leaf.any():
                leaf_item_chunks.append(pair_items[leaf])
                leaf_node_chunks.append(pair_nodes[leaf])
            inner_items = pair_items[~leaf]
            inner_first = self.first_child[pair_nodes[~leaf]]
            pair_items = np.repeat(inner_items, branching)
            pair_nodes = (
                inner_first[:, None] + np.arange(branching, dtype=np.intp)[None, :]
            ).reshape(-1)

        if not leaf_item_chunks:
            return new_ids
        flat_items = np.concatenate(leaf_item_chunks)
        flat_nodes = np.concatenate(leaf_node_chunks)
        order = np.argsort(flat_nodes, kind="stable")
        flat_items = flat_items[order]
        flat_nodes = flat_nodes[order]
        uniq, starts = np.unique(flat_nodes, return_index=True)
        bounds = np.append(starts, flat_nodes.size)
        for pos, node in enumerate(uniq):
            chunk = flat_items[bounds[pos] : bounds[pos + 1]]
            node = int(node)
            buffer = self._overflow.get(node)
            if buffer is None:
                self._overflow[node] = GrowableArena(chunk)
            else:
                buffer.append(chunk)
            self._overflow_total += chunk.size
        self._overflow_nodes = np.fromiter(
            self._overflow.keys(), dtype=np.intp, count=len(self._overflow)
        )
        for node in uniq:
            node = int(node)
            overflow = self._overflow.get(node)
            if overflow is None:
                continue
            base = int(self.item_end[node] - self.item_start[node])
            if len(overflow) > max(self._capacity, base):
                self._rebuild_subtree(node)
        return new_ids

    def _node_budget(self) -> int:
        """Size-scaled global node budget of a dynamically growing tree.

        The build budget ``max_nodes`` was sized for the initial item count;
        a tree that keeps absorbing inserts legitimately needs more nodes,
        but each subtree rebuild must never get a *fresh* full budget (that
        would let repeated rebuilds grow the store without bound).  The
        budget therefore scales linearly with the item count — roughly two
        branching factors per capacity-full leaf — and every rebuild draws
        from whatever of it is left.
        """
        per_leaf = max(1, self._capacity)
        leaves = -(-self.size // per_leaf)  # ceil division
        return max(self._max_nodes, 2 * self._rule.branching * leaves)

    def _rebuild_subtree(self, node: int) -> None:
        """Rebuild the subtree below one overflowing leaf and graft it in.

        The leaf's base items and overflow buffer are handed to a fresh
        level-order build whose root domain is the leaf's cell (same split
        rule, same capacity, the remaining depth budget, and at most the
        tree's remaining global node budget); the resulting CSR arrays are
        appended to this tree's store with the sub-root mapped onto the
        existing node.  Dead arena slices left behind by the old leaf are
        simply abandoned — the arena is an append-only store.  When the
        global budget is exhausted the rebuild is skipped and the items stay
        in the overflow buffer: queries remain exact, only pruning degrades,
        which is the regime the session's update cost model resolves by
        scheduling a full rebuild.
        """
        depth = int(self.node_depth[node])
        remaining = self._max_depth - depth
        overflow = self._overflow.get(node)
        if overflow is None or remaining < 1:
            return
        base = self.items[self.item_start[node] : self.item_end[node]]
        sub_items = np.concatenate([base, overflow.view])
        branching = self._rule.branching
        remaining_budget = self._node_budget() - self.num_nodes
        local_budget = min(
            remaining_budget, max(2 * branching, 4 * int(sub_items.size))
        )
        if local_budget < 1 + branching:
            return
        cell = Box(self.cell_lows[node].copy(), self.cell_highs[node].copy())
        sub = FlatTree(
            self._coefficients[sub_items],
            self._rhs[sub_items],
            cell,
            self._rule,
            capacity=self._capacity,
            max_depth=remaining,
            max_nodes=local_budget,
            on_unsplittable=self._on_unsplittable,
        )
        # Build succeeded: retire the overflow buffer and graft.  The old
        # leaf's arena slice is abandoned in place (reclaimed by the next
        # compact_items pass); all grafted arrays append into the arenas'
        # spare capacity, so the untouched store is never copied.
        self._overflow.pop(node)
        self._overflow_total -= len(overflow)
        base_len = self.items.size
        self._items_a.append(sub_items[sub.items])
        if sub._outside.size:
            # Items whose crossing test disagrees at the cell boundary stay
            # as overflow of this node (visited whenever the node is), so
            # nothing is ever lost from query results.
            self._overflow[node] = GrowableArena(sub_items[sub._outside])
            self._overflow_total += sub._outside.size
        self._overflow_nodes = np.fromiter(
            self._overflow.keys(), dtype=np.intp, count=len(self._overflow)
        )
        if sub.num_nodes == 1:
            self.item_start[node] = base_len + sub.item_start[0]
            self.item_end[node] = base_len + sub.item_end[0]
            return
        offset = self.num_nodes
        # Sub node s > 0 maps to offset + s - 1; the sub root maps to node.
        self._cell_lows_a.append(sub.cell_lows[1:])
        self._cell_highs_a.append(sub.cell_highs[1:])
        self._node_depth_a.append(sub.node_depth[1:] + depth)
        mapped_first = np.where(
            sub.first_child >= 0, sub.first_child + offset - 1, -1
        )
        self._first_child_a.append(mapped_first[1:])
        self.first_child[node] = mapped_first[0]
        self._item_start_a.append(sub.item_start[1:] + base_len)
        self._item_end_a.append(sub.item_end[1:] + base_len)
        self.item_start[node] = base_len + sub.item_start[0]
        self.item_end[node] = base_len + sub.item_end[0]
        self.num_nodes += sub.num_nodes - 1

    def _overflow_for(self, nodes: np.ndarray) -> List[np.ndarray]:
        """Overflow buffers of the given nodes (empty list when none)."""
        if not self._overflow:
            return []
        present = np.isin(nodes, self._overflow_nodes)
        return [self._overflow[int(n)].view for n in nodes[present]]

    def overflow_size(self) -> int:
        """Total number of items currently parked in overflow buffers."""
        return int(self._overflow_total)

    def compact_items(self, keep: np.ndarray, remap: np.ndarray) -> None:
        """Drop dead items and renumber survivors in one vectorised pass.

        ``keep`` is a boolean mask over item ids (``True`` = alive) and
        ``remap`` the old-id → new-id map of the caller's item renumbering.
        The tree *structure* — cells, split geometry, node ids — is
        untouched; only the item stores are rewritten:

        * the hyperplane arenas keep the alive rows (relative order
          preserved, so the exact post-filter arithmetic is unchanged);
        * the leaf item arena is rewritten without the dead entries *and*
          without the dead slices abandoned by earlier subtree rebuilds
          (positions no leaf references), with every node's
          ``item_start``/``item_end`` shifted by the number of dropped
          positions before it — correct even for the one-dimensional
          build's overlapping boundary slices;
        * overflow buffers and the out-of-domain set are filtered and
          renumbered.

        This is the ``O(m)`` renumbering pass that replaces the full index
        rebuild the dead-fraction trigger used to force.
        """
        keep = np.asarray(keep, dtype=bool)
        remap = np.asarray(remap, dtype=np.intp)
        items = self.items
        # Positions referenced by at least one leaf slice (abandoned
        # rebuild slices are unreferenced and reclaimed here).  Built as an
        # interval-union delta array because 1-D leaf slices may overlap.
        referenced_delta = np.zeros(items.size + 1, dtype=np.int64)
        leaves = np.flatnonzero(self.first_child < 0)
        np.add.at(referenced_delta, self.item_start[leaves], 1)
        np.subtract.at(referenced_delta, self.item_end[leaves], 1)
        referenced = np.cumsum(referenced_delta[:-1]) > 0
        pos_keep = referenced & keep[items]
        # dropped_before[p] = dropped positions strictly before p, for
        # p in [0, size]; shifts every node's slice bounds.
        dropped_before = np.concatenate(
            ([0], np.cumsum(~pos_keep, dtype=np.intp))
        )
        self._items_a.replace(remap[items[pos_keep]])
        self.item_start[:] = self.item_start - dropped_before[self.item_start]
        self.item_end[:] = self.item_end - dropped_before[self.item_end]

        outside = self._outside
        self._outside_arena.replace(remap[outside[keep[outside]]])
        alive_rows = np.flatnonzero(keep[: self.size])
        self._coeff_arena.replace(self._coefficients[alive_rows])
        self._rhs_arena.replace(self._rhs[alive_rows])

        if self._overflow:
            total = 0
            for node in list(self._overflow):
                buffered = self._overflow[node].view
                filtered = remap[buffered[keep[buffered]]]
                if filtered.size == 0:
                    del self._overflow[node]
                else:
                    self._overflow[node].replace(filtered)
                    total += filtered.size
            self._overflow_total = total
            self._overflow_nodes = np.fromiter(
                self._overflow.keys(), dtype=np.intp, count=len(self._overflow)
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> Box:
        """The dual-domain box covered by the root cell."""
        return self._domain

    @property
    def size(self) -> int:
        """Number of indexed hyperplanes."""
        return int(self._coefficients.shape[0])

    @property
    def capacity(self) -> int:
        """Leaf capacity actually in use."""
        return self._capacity

    @property
    def depth(self) -> int:
        """Maximum node depth of the tree."""
        return int(self.node_depth.max()) if self.num_nodes else 0

    def node_count(self) -> int:
        """Total number of tree nodes."""
        return int(self.num_nodes)

    def max_leaf_load(self) -> int:
        """Largest number of hyperplanes stored in a single leaf."""
        leaves = self.first_child < 0
        if not leaves.any():
            return 0
        return int((self.item_end[leaves] - self.item_start[leaves]).max())

    def leaf_slices(self) -> List[Tuple[int, np.ndarray]]:
        """``(depth, hyperplane indices)`` of every leaf, in node-id order.

        The parity tests canonicalise this into leaf partitions; it is also
        a convenient debugging view of the CSR store.
        """
        out: List[Tuple[int, np.ndarray]] = []
        for node in np.flatnonzero(self.first_child < 0):
            out.append(
                (
                    int(self.node_depth[node]),
                    self.items[self.item_start[node] : self.item_end[node]],
                )
            )
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, box: Box) -> np.ndarray:
        """Indices of hyperplanes that intersect the query ``box``.

        The iterative frontier walk prunes subtrees whose cells miss the
        box; candidates collected at the leaves (plus the overflow set) are
        post-filtered with the exact vectorised test.  Exact for boxes
        contained in the domain (see the class docstring for the
        domain-escaping caveat at ``k >= 2``).
        """
        if box.dimensions != self._domain.dimensions:
            raise DimensionMismatchError(
                "query box dimensionality does not match the tree domain"
            )
        candidates = self._collect(
            box.lows - self._prune_pad, box.highs + self._prune_pad
        )
        if self._outside.size:
            candidates = np.concatenate((candidates, self._outside))
        if candidates.size == 0:
            return np.empty(0, dtype=np.intp)
        candidates = np.unique(candidates)
        mask = hyperplanes_intersect_box_mask(
            self._coefficients[candidates], self._rhs[candidates], box
        )
        return candidates[mask]

    def query_many(self, lows: np.ndarray, highs: np.ndarray) -> List[np.ndarray]:
        """Exact candidates of many boxes through ONE shared traversal.

        ``lows``/``highs`` are ``(q, k)`` arrays of box bounds.  The walk
        keeps a frontier of ``(query, node)`` pairs, so the per-level
        pruning and leaf collection are batched across every query of the
        batch — the tree is traversed once, not once per query.  Candidate
        deduplication uses one ``(q, m)`` bitmap (chunked over queries so
        it respects the shared kernel memory cap) instead of per-query
        sorting: leaf hits scatter into the bitmap and ``flatnonzero``
        yields each query's sorted unique candidates for the exact
        post-filter.  Returns one sorted index array per box, each
        identical to :meth:`query` on that box.

        Under an ambient kernel context (or ``REPRO_KERNEL_THREADS``) with
        more than one worker, the query chunks run concurrently on the
        shared executor — workers only read tree state and allocate their
        own bitmaps, and per-chunk result lists are re-concatenated in
        query order, so the answers are byte-identical to the serial walk.
        The bitmap budget is divided across workers, never multiplied.
        """
        lows = np.asarray(lows, dtype=float)
        highs = np.asarray(highs, dtype=float)
        if lows.ndim != 2 or lows.shape != highs.shape:
            raise DimensionMismatchError("query bounds must be (q, k) arrays")
        q = lows.shape[0]
        if q == 0:
            return []
        if lows.shape[1] != self._domain.dimensions:
            raise DimensionMismatchError(
                "query box dimensionality does not match the tree domain"
            )
        count = resolve_threads(None)
        cap = memory_cap_bytes(None) if count <= 1 else split_memory_cap(None, count)
        chunk = max(1, cap // max(1, self.size))
        if count > 1:
            # At least `count` chunks so every worker gets one.
            chunk = max(1, min(chunk, -(-q // count)))
        if q > chunk:
            kernel = ShmKernel(
                self._query_many_block_shm,
                inputs={"lows": lows, "highs": highs},
                work_hint_bytes=q * max(1, self.size),
            )
            chunked = run_tasks(
                lambda start, stop: self._query_many_block(
                    lows[start:stop], highs[start:stop]
                ),
                list(iter_blocks(q, chunk)),
                threads=count,
                shm_kernel=kernel,
            )
            out: List[np.ndarray] = []
            for part in chunked:
                out.extend(part)
            return out
        return self._query_many_block(lows, highs)

    def _query_many_block_shm(self, arrays, start: int, stop: int) -> List[np.ndarray]:
        """Process-backend chunk of :meth:`query_many`.

        The tree itself travels once per worker group inside the pickled
        bound method; only the query bounds go through shared memory.  The
        per-query ``(q, m)`` bitmap work — the real cost — dwarfs those
        bounds, hence the ``work_hint_bytes`` on the dispatching kernel.
        """
        return self._query_many_block(
            arrays["lows"][start:stop], arrays["highs"][start:stop]
        )

    def _query_many_block(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> List[np.ndarray]:
        """One memory-cap-sized chunk of :meth:`query_many` (read-only walk)."""
        q = lows.shape[0]
        seen = np.zeros((q, max(1, self.size)), dtype=bool)
        prune_lows = lows - self._prune_pad
        prune_highs = highs + self._prune_pad
        pair_qs = np.arange(q, dtype=np.intp)
        pair_nodes = np.zeros(q, dtype=np.intp) if self.num_nodes else pair_qs[:0]
        while pair_qs.size:
            cell_lo = self.cell_lows[pair_nodes]
            cell_hi = self.cell_highs[pair_nodes]
            hit = np.all(cell_lo <= prune_highs[pair_qs], axis=1) & np.all(
                prune_lows[pair_qs] <= cell_hi, axis=1
            )
            pair_qs, pair_nodes = pair_qs[hit], pair_nodes[hit]
            if self._overflow:
                present = np.isin(pair_nodes, self._overflow_nodes)
                if present.any():
                    # Group by node: one vectorised scatter per overflow
                    # buffer instead of one per (query, node) pair.
                    sel_nodes = pair_nodes[present]
                    sel_qs = pair_qs[present]
                    order = np.argsort(sel_nodes, kind="stable")
                    sel_nodes = sel_nodes[order]
                    sel_qs = sel_qs[order]
                    uniq, starts = np.unique(sel_nodes, return_index=True)
                    bounds = np.append(starts, sel_nodes.size)
                    for pos, node in enumerate(uniq):
                        queries = sel_qs[bounds[pos] : bounds[pos + 1]]
                        items = self._overflow[int(node)].view
                        seen[queries[:, None], items[None, :]] = True
            leaf = self.first_child[pair_nodes] < 0
            leaf_nodes = pair_nodes[leaf]
            if leaf_nodes.size:
                starts = self.item_start[leaf_nodes]
                lengths = self.item_end[leaf_nodes] - starts
                if lengths.sum():
                    flat = _ranges(starts, lengths)
                    seen[np.repeat(pair_qs[leaf], lengths), self.items[flat]] = True
            inner_qs = pair_qs[~leaf]
            inner_first = self.first_child[pair_nodes[~leaf]]
            branching = self._rule.branching
            pair_qs = np.repeat(inner_qs, branching)
            pair_nodes = (
                inner_first[:, None] + np.arange(branching, dtype=np.intp)[None, :]
            ).reshape(-1)

        if self._outside.size:
            seen[:, self._outside] = True
        results: List[np.ndarray] = []
        for i in range(q):
            candidates = np.flatnonzero(seen[i]).astype(np.intp, copy=False)
            if candidates.size == 0 or self.size == 0:
                results.append(np.empty(0, dtype=np.intp))
                continue
            mask = hyperplanes_intersect_box_mask(
                self._coefficients[candidates],
                self._rhs[candidates],
                Box(lows[i], highs[i]),
            )
            results.append(candidates[mask])
        return results

    def _collect(self, qlows: np.ndarray, qhighs: np.ndarray) -> np.ndarray:
        active = np.zeros(1, dtype=np.intp) if self.num_nodes else np.empty(0, np.intp)
        chunks: List[np.ndarray] = []
        branching = self._rule.branching
        while active.size:
            hit = np.all(self.cell_lows[active] <= qhighs, axis=1) & np.all(
                qlows <= self.cell_highs[active], axis=1
            )
            active = active[hit]
            if self._overflow:
                chunks.extend(self._overflow_for(active))
            leaf = self.first_child[active] < 0
            leaf_nodes = active[leaf]
            if leaf_nodes.size:
                starts = self.item_start[leaf_nodes]
                lengths = self.item_end[leaf_nodes] - starts
                if lengths.sum():
                    chunks.append(self.items[_ranges(starts, lengths)])
            inner_first = self.first_child[active[~leaf]]
            active = (
                inner_first[:, None] + np.arange(branching, dtype=np.intp)[None, :]
            ).reshape(-1)
        if not chunks:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(chunks)


# ----------------------------------------------------------------------
# CSR helpers
# ----------------------------------------------------------------------
def _csr_take(offsets: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Indices selecting the concatenated CSR segments ``rows`` in order."""
    starts = offsets[rows]
    lengths = offsets[rows + 1] - starts
    return _ranges(starts, lengths)


def _ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s + l) for s, l in zip(starts, lengths)])``."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp)
    shifts = np.repeat(starts - (np.cumsum(lengths) - lengths), lengths)
    return np.arange(total, dtype=np.intp) + shifts


def build_quadtree_core(
    coefficients: np.ndarray,
    rhs: np.ndarray,
    domain: Box,
    capacity: Optional[int],
    max_depth: int,
    max_nodes: int,
    on_unsplittable: str = "keep",
    shrink_domain: bool = False,
) -> FlatTree:
    """Flat core of the line quadtree: ``2^k`` midpoint quadrant splits."""
    return FlatTree(
        coefficients,
        rhs,
        domain,
        MidpointSplitRule(domain.dimensions),
        capacity=capacity,
        max_depth=max_depth,
        max_nodes=max_nodes,
        on_unsplittable=on_unsplittable,
        shrink_domain=shrink_domain,
    )


def build_cutting_core(
    coefficients: np.ndarray,
    rhs: np.ndarray,
    domain: Box,
    capacity: Optional[int],
    max_depth: int,
    max_nodes: int,
    seed: Optional[int],
    on_unsplittable: str = "keep",
    shrink_domain: bool = False,
) -> FlatTree:
    """Flat core of the cutting tree: sampled binary cuts, seeded rng."""
    rng = np.random.default_rng(seed)
    return FlatTree(
        coefficients,
        rhs,
        domain,
        SampledCutSplitRule(domain.dimensions, rng),
        capacity=capacity,
        max_depth=max_depth,
        max_nodes=max_nodes,
        on_unsplittable=on_unsplittable,
        shrink_domain=shrink_domain,
    )


def boxes_to_bounds(boxes: Sequence[Box], dimensions: int) -> Tuple[np.ndarray, np.ndarray]:
    """Stack a sequence of boxes into ``(q, k)`` low/high arrays (validated)."""
    if not boxes:
        return np.empty((0, dimensions)), np.empty((0, dimensions))
    for box in boxes:
        if box.dimensions != dimensions:
            raise DimensionMismatchError(
                "query box dimensionality does not match the tree domain"
            )
    lows = np.stack([box.lows for box in boxes])
    highs = np.stack([box.highs for box in boxes])
    return lows, highs
