"""Pairwise intersection hyperplanes of dual hyperplanes.

Two dual hyperplanes ``f_a(x) = a·x - b_a`` and ``f_k(x) = k·x - b_k``
intersect where ``g(x) = f_a(x) - f_k(x) = 0``, i.e. on the
``(d-2)``-dimensional hyperplane ``{x : (a - k) · x = b_a - b_k}`` of the
``(d-1)``-dimensional dual domain.  These intersection hyperplanes are what
the Intersection Index stores: the relative order of the two dual
hyperplanes (and therefore the dominance direction between the two primal
points) can only change across such an intersection, so a pair whose
intersection misses the query box keeps a constant order over the whole box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.dual import DualHyperplane


@dataclass(frozen=True)
class IntersectionHyperplane:
    """The locus where two dual hyperplanes have equal value.

    Attributes
    ----------
    coefficients:
        ``a - k`` — the difference of the two dual-hyperplane coefficient
        vectors (length ``d - 1``).
    rhs:
        ``b_a - b_k`` — the difference of the offsets.  The intersection is
        ``{x : coefficients · x = rhs}``.
    first, second:
        Indices of the two primal points (into the dataset the dual
        hyperplanes came from).
    """

    coefficients: np.ndarray
    rhs: float
    first: int
    second: int

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=float)
        object.__setattr__(self, "coefficients", coeffs)
        object.__setattr__(self, "rhs", float(self.rhs))

    @property
    def dual_dimensions(self) -> int:
        """Dimensionality of the dual domain the hyperplane lives in."""
        return int(self.coefficients.size)

    @property
    def is_degenerate(self) -> bool:
        """``True`` when the two dual hyperplanes are parallel (or identical).

        Parallel hyperplanes never swap order, so degenerate intersections
        are omitted from the Intersection Index.  The test is exact (all
        coefficients identically zero) — tolerances would misclassify pairs
        of primal points whose attribute differences are tiny but real.
        """
        return not bool(np.any(self.coefficients != 0.0))

    @property
    def pair(self) -> Tuple[int, int]:
        """The ``(first, second)`` primal-point index pair."""
        return (self.first, self.second)

    def x_coordinate(self) -> float:
        """The intersection x-coordinate in the two-dimensional case.

        Only meaningful when the dual domain is one-dimensional (``d = 2``);
        this is the quantity written ``p_i p_j [x]`` in the paper.
        """
        if self.dual_dimensions != 1:
            raise DimensionMismatchError(
                "x_coordinate() is only defined for two-dimensional data"
            )
        if self.is_degenerate:
            raise ZeroDivisionError("parallel dual lines have no intersection")
        return float(self.rhs / self.coefficients[0])

    def intersects_box(self, box: Box) -> bool:
        """Exact test: does the intersection hyperplane meet the closed box?

        Uses interval arithmetic: the hyperplane ``c·x = rhs`` meets the box
        exactly when ``rhs`` lies between the minimum and maximum of ``c·x``
        over the box.  Degenerate (parallel) pairs never intersect.
        """
        if self.is_degenerate:
            return False
        lo, hi = box.linear_range(self.coefficients)
        return lo <= self.rhs <= hi

    def side_of_point(self, x: Sequence[float]) -> float:
        """Signed value ``coefficients · x - rhs`` (also ``f_a(x) - f_k(x)``)."""
        xa = np.asarray(x, dtype=float)
        if xa.shape != self.coefficients.shape:
            raise DimensionMismatchError(
                "evaluation point and hyperplane dimensionality differ"
            )
        return float(self.coefficients @ xa - self.rhs)


def intersection_of(
    a: DualHyperplane, b: DualHyperplane
) -> IntersectionHyperplane:
    """Build the intersection hyperplane of two dual hyperplanes."""
    if a.dual_dimensions != b.dual_dimensions:
        raise DimensionMismatchError("dual hyperplanes have different dimensionality")
    return IntersectionHyperplane(
        coefficients=a.coefficients - b.coefficients,
        rhs=a.offset - b.offset,
        first=a.index,
        second=b.index,
    )


def pairwise_intersection_arrays(
    hyperplanes: Sequence[DualHyperplane],
    skip_degenerate: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised pairwise intersections: ``(pairs, coefficients, rhs)``.

    Returns three parallel arrays describing the intersection hyperplane of
    every pair ``(i, j)`` with ``i < j``:

    * ``pairs`` — integer array of shape ``(m, 2)`` holding the hyperplane
      indices (the ``index`` attribute of the inputs);
    * ``coefficients`` — float array of shape ``(m, d-1)``;
    * ``rhs`` — float array of shape ``(m,)``.

    This is the bulk counterpart of :func:`pairwise_intersections`; the tree
    backends operate directly on these arrays so that building an index over
    hundreds of thousands of pairs stays vectorised.
    """
    u = len(hyperplanes)
    if u < 2:
        k = hyperplanes[0].dual_dimensions if hyperplanes else 0
        return (
            np.empty((0, 2), dtype=np.intp),
            np.empty((0, k), dtype=float),
            np.empty(0, dtype=float),
        )
    coeff_matrix = np.array([h.coefficients for h in hyperplanes], dtype=float)
    offsets = np.array([h.offset for h in hyperplanes], dtype=float)
    indices = np.array([h.index for h in hyperplanes], dtype=np.intp)
    ii, jj = np.triu_indices(u, k=1)
    coefficients = coeff_matrix[ii] - coeff_matrix[jj]
    rhs = offsets[ii] - offsets[jj]
    pairs = np.column_stack([indices[ii], indices[jj]])
    if skip_degenerate:
        keep = np.any(np.abs(coefficients) > 0.0, axis=1)
        pairs, coefficients, rhs = pairs[keep], coefficients[keep], rhs[keep]
    return pairs, coefficients, rhs


def hyperplanes_intersect_box_mask(
    coefficients: np.ndarray, rhs: np.ndarray, box: Box
) -> np.ndarray:
    """Vectorised exact hyperplane/box intersection test.

    ``coefficients`` has shape ``(m, k)`` and ``rhs`` shape ``(m,)``; the
    result is a boolean mask of length ``m`` that is ``True`` where the
    hyperplane ``coefficients[i] · x = rhs[i]`` meets the closed ``box``.
    Degenerate rows (all-zero coefficients) are reported as non-intersecting,
    consistent with :meth:`IntersectionHyperplane.intersects_box`.
    """
    if coefficients.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    lows, highs = box.lows, box.highs
    low_contrib = np.where(coefficients >= 0, coefficients * lows, coefficients * highs)
    high_contrib = np.where(coefficients >= 0, coefficients * highs, coefficients * lows)
    gmin = low_contrib.sum(axis=1)
    gmax = high_contrib.sum(axis=1)
    nondegenerate = np.any(np.abs(coefficients) > 0.0, axis=1)
    return (gmin <= rhs) & (rhs <= gmax) & nondegenerate


def pairwise_intersections(
    hyperplanes: Sequence[DualHyperplane],
    skip_degenerate: bool = True,
) -> List[IntersectionHyperplane]:
    """Return the intersection hyperplanes of all ``(u choose 2)`` pairs.

    Parameters
    ----------
    hyperplanes:
        Dual hyperplanes (typically of the skyline points only, as in
        Algorithms 4 and 6).
    skip_degenerate:
        When ``True`` (default) parallel pairs are omitted — they never swap
        order, so the Intersection Index has no use for them.
    """
    result: List[IntersectionHyperplane] = []
    n = len(hyperplanes)
    for i in range(n):
        for j in range(i + 1, n):
            inter = intersection_of(hyperplanes[i], hyperplanes[j])
            if skip_degenerate and inter.is_degenerate:
                continue
            result.append(inter)
    return result
