"""Pairwise intersection hyperplanes of dual hyperplanes.

Two dual hyperplanes ``f_a(x) = a·x - b_a`` and ``f_k(x) = k·x - b_k``
intersect where ``g(x) = f_a(x) - f_k(x) = 0``, i.e. on the
``(d-2)``-dimensional hyperplane ``{x : (a - k) · x = b_a - b_k}`` of the
``(d-1)``-dimensional dual domain.  These intersection hyperplanes are what
the Intersection Index stores: the relative order of the two dual
hyperplanes (and therefore the dominance direction between the two primal
points) can only change across such an intersection, so a pair whose
intersection misses the query box keeps a constant order over the whole box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.dual import DualHyperplane
from repro.perf.blocking import memory_cap_bytes
from repro.perf.executor import (
    ShmKernel,
    resolve_threads,
    run_tasks,
    split_memory_cap,
)


@dataclass(frozen=True)
class IntersectionHyperplane:
    """The locus where two dual hyperplanes have equal value.

    Attributes
    ----------
    coefficients:
        ``a - k`` — the difference of the two dual-hyperplane coefficient
        vectors (length ``d - 1``).
    rhs:
        ``b_a - b_k`` — the difference of the offsets.  The intersection is
        ``{x : coefficients · x = rhs}``.
    first, second:
        Indices of the two primal points (into the dataset the dual
        hyperplanes came from).
    """

    coefficients: np.ndarray
    rhs: float
    first: int
    second: int

    def __post_init__(self) -> None:
        coeffs = np.asarray(self.coefficients, dtype=float)
        object.__setattr__(self, "coefficients", coeffs)
        object.__setattr__(self, "rhs", float(self.rhs))

    @property
    def dual_dimensions(self) -> int:
        """Dimensionality of the dual domain the hyperplane lives in."""
        return int(self.coefficients.size)

    @property
    def is_degenerate(self) -> bool:
        """``True`` when the two dual hyperplanes are parallel (or identical).

        Parallel hyperplanes never swap order, so degenerate intersections
        are omitted from the Intersection Index.  The test is exact (all
        coefficients identically zero) — tolerances would misclassify pairs
        of primal points whose attribute differences are tiny but real.
        """
        return not bool(np.any(self.coefficients != 0.0))

    @property
    def pair(self) -> Tuple[int, int]:
        """The ``(first, second)`` primal-point index pair."""
        return (self.first, self.second)

    def x_coordinate(self) -> float:
        """The intersection x-coordinate in the two-dimensional case.

        Only meaningful when the dual domain is one-dimensional (``d = 2``);
        this is the quantity written ``p_i p_j [x]`` in the paper.
        """
        if self.dual_dimensions != 1:
            raise DimensionMismatchError(
                "x_coordinate() is only defined for two-dimensional data"
            )
        if self.is_degenerate:
            raise ZeroDivisionError("parallel dual lines have no intersection")
        return float(self.rhs / self.coefficients[0])

    def intersects_box(self, box: Box) -> bool:
        """Exact test: does the intersection hyperplane meet the closed box?

        Uses interval arithmetic: the hyperplane ``c·x = rhs`` meets the box
        exactly when ``rhs`` lies between the minimum and maximum of ``c·x``
        over the box.  Degenerate (parallel) pairs never intersect.
        """
        if self.is_degenerate:
            return False
        lo, hi = box.linear_range(self.coefficients)
        return lo <= self.rhs <= hi

    def side_of_point(self, x: Sequence[float]) -> float:
        """Signed value ``coefficients · x - rhs`` (also ``f_a(x) - f_k(x)``)."""
        xa = np.asarray(x, dtype=float)
        if xa.shape != self.coefficients.shape:
            raise DimensionMismatchError(
                "evaluation point and hyperplane dimensionality differ"
            )
        return float(self.coefficients @ xa - self.rhs)


def intersection_of(
    a: DualHyperplane, b: DualHyperplane
) -> IntersectionHyperplane:
    """Build the intersection hyperplane of two dual hyperplanes."""
    if a.dual_dimensions != b.dual_dimensions:
        raise DimensionMismatchError("dual hyperplanes have different dimensionality")
    return IntersectionHyperplane(
        coefficients=a.coefficients - b.coefficients,
        rhs=a.offset - b.offset,
        first=a.index,
        second=b.index,
    )


def pairwise_intersection_arrays(
    hyperplanes: Sequence[DualHyperplane],
    skip_degenerate: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised pairwise intersections: ``(pairs, coefficients, rhs)``.

    Returns three parallel arrays describing the intersection hyperplane of
    every pair ``(i, j)`` with ``i < j``:

    * ``pairs`` — integer array of shape ``(m, 2)`` holding the hyperplane
      indices (the ``index`` attribute of the inputs);
    * ``coefficients`` — float array of shape ``(m, d-1)``;
    * ``rhs`` — float array of shape ``(m,)``.

    This is the bulk counterpart of :func:`pairwise_intersections`; the tree
    backends operate directly on these arrays so that building an index over
    hundreds of thousands of pairs stays vectorised.
    """
    u = len(hyperplanes)
    if u < 2:
        k = hyperplanes[0].dual_dimensions if hyperplanes else 0
        return (
            np.empty((0, 2), dtype=np.intp),
            np.empty((0, k), dtype=float),
            np.empty(0, dtype=float),
        )
    coeff_matrix = np.array([h.coefficients for h in hyperplanes], dtype=float)
    offsets = np.array([h.offset for h in hyperplanes], dtype=float)
    indices = np.array([h.index for h in hyperplanes], dtype=np.intp)
    return pairwise_intersection_arrays_from(
        coeff_matrix, offsets, indices=indices, skip_degenerate=skip_degenerate
    )


def _fill_pair_chunk(
    coefficients,
    offsets,
    indices,
    counts,
    out_pairs,
    out_coeffs,
    out_rhs,
    start,
    stop,
    pos,
    chunk,
):
    """Fill one ``[pos, pos + chunk)`` output slice of the pair enumeration.

    The single implementation behind both dispatch paths of
    :func:`pairwise_intersection_arrays_from` — the thread closure and the
    process-backend worker call exactly this, so the two are identical by
    construction.
    """
    rows = np.arange(start, stop, dtype=np.intp)
    row_counts = counts[start:stop]
    ii = np.repeat(rows, row_counts)
    jj = (
        np.arange(chunk, dtype=np.intp)
        - np.repeat(np.cumsum(row_counts) - row_counts, row_counts)
        + ii
        + 1
    )
    np.subtract(
        coefficients[ii], coefficients[jj], out=out_coeffs[pos : pos + chunk]
    )
    np.subtract(offsets[ii], offsets[jj], out=out_rhs[pos : pos + chunk])
    out_pairs[pos : pos + chunk, 0] = indices[ii]
    out_pairs[pos : pos + chunk, 1] = indices[jj]


def _fill_pair_chunk_shm(arrays, start, stop, pos, chunk):
    """Process-backend chunk of the pair enumeration (same output slices)."""
    _fill_pair_chunk(
        arrays["coefficients"],
        arrays["offsets"],
        arrays["indices"],
        arrays["counts"],
        arrays["out_pairs"],
        arrays["out_coeffs"],
        arrays["out_rhs"],
        start,
        stop,
        pos,
        chunk,
    )


def pairwise_intersection_arrays_from(
    coefficients: np.ndarray,
    offsets: np.ndarray,
    indices: Optional[np.ndarray] = None,
    skip_degenerate: bool = True,
    memory_cap: Optional[int] = None,
    threads: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-native core of :func:`pairwise_intersection_arrays`.

    Takes the dual hyperplanes as parallel ``(u, k)`` / ``(u,)`` arrays
    (typically straight from
    :func:`repro.geometry.dual.dual_coefficient_arrays`) and enumerates all
    ``(u choose 2)`` intersection hyperplanes in row-major ``i < j`` order
    without constructing a single per-pair Python object.  The enumeration
    is chunked over source rows so the fancy-indexing scratch respects the
    shared kernel memory cap (:func:`repro.perf.blocking.memory_cap_bytes`);
    the full output arrays are the result and are allocated once up front.

    With ``threads > 1`` (explicit, ambient kernel context, or the
    ``REPRO_KERNEL_THREADS`` environment variable) the chunks are dispatched
    across the shared kernel executor: every chunk writes a disjoint
    ``[pos, pos + chunk)`` slice of the preallocated outputs, so the result
    is byte-identical to the serial enumeration.  The memory cap is divided
    across workers, never multiplied.

    ``indices`` supplies the per-hyperplane identifiers reported in
    ``pairs`` (default: positional ``0 .. u-1``).
    """
    coefficients = np.asarray(coefficients, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    u = coefficients.shape[0]
    k = coefficients.shape[1] if coefficients.ndim == 2 else 0
    if u != offsets.shape[0]:
        raise DimensionMismatchError(
            "coefficients and offsets must have the same number of rows"
        )
    if u < 2:
        return (
            np.empty((0, 2), dtype=np.intp),
            np.empty((0, k), dtype=float),
            np.empty(0, dtype=float),
        )
    if indices is None:
        indices = np.arange(u, dtype=np.intp)
    else:
        indices = np.asarray(indices, dtype=np.intp)

    total_pairs = u * (u - 1) // 2
    out_pairs = np.empty((total_pairs, 2), dtype=np.intp)
    out_coeffs = np.empty((total_pairs, max(1, k)), dtype=float)
    out_rhs = np.empty(total_pairs, dtype=float)

    # Scratch per pair: two gathered coefficient rows plus the pair/rhs
    # bookkeeping, ~4 arrays of k doubles.  Never go below one full source
    # row per chunk.
    count = resolve_threads(threads)
    effective_cap = (
        memory_cap if count <= 1 else split_memory_cap(memory_cap, count)
    )
    budget = memory_cap_bytes(effective_cap) // (max(1, k) * 32)
    if count > 1:
        # Make sure at least `count` chunks exist so every worker gets one.
        budget = min(budget, -(-total_pairs // count))
    pairs_budget = max(u, budget)
    counts = (u - 1) - np.arange(u - 1, dtype=np.int64)
    cumulative = np.cumsum(counts)

    # Chunk descriptors are computed sequentially (each chunk's output
    # offset depends on the previous chunks); the chunk bodies write
    # disjoint output slices and run on the executor.
    tasks = []
    pos = 0
    start = 0
    while start < u - 1:
        consumed = cumulative[start - 1] if start else 0
        stop = int(np.searchsorted(cumulative, consumed + pairs_budget, side="left")) + 1
        stop = min(max(stop, start + 1), u - 1)
        chunk = int((cumulative[stop - 1] if stop else 0) - consumed)
        tasks.append((start, stop, pos, chunk))
        pos += chunk
        start = stop

    def _fill_chunk(start, stop, pos, chunk):
        _fill_pair_chunk(
            coefficients,
            offsets,
            indices,
            counts,
            out_pairs,
            out_coeffs,
            out_rhs,
            start,
            stop,
            pos,
            chunk,
        )

    kernel = ShmKernel(
        _fill_pair_chunk_shm,
        inputs={
            "coefficients": coefficients,
            "offsets": offsets,
            "indices": indices,
            "counts": counts,
        },
        outputs={
            "out_pairs": out_pairs,
            "out_coeffs": out_coeffs,
            "out_rhs": out_rhs,
        },
    )
    run_tasks(_fill_chunk, tasks, threads=count, shm_kernel=kernel)

    if skip_degenerate:
        keep = np.any(np.abs(out_coeffs) > 0.0, axis=1)
        if not keep.all():
            return out_pairs[keep], out_coeffs[keep], out_rhs[keep]
    return out_pairs, out_coeffs, out_rhs


def hyperplanes_intersect_box_mask(
    coefficients: np.ndarray, rhs: np.ndarray, box: Box
) -> np.ndarray:
    """Vectorised exact hyperplane/box intersection test.

    ``coefficients`` has shape ``(m, k)`` and ``rhs`` shape ``(m,)``; the
    result is a boolean mask of length ``m`` that is ``True`` where the
    hyperplane ``coefficients[i] · x = rhs[i]`` meets the closed ``box``.
    Degenerate rows (all-zero coefficients) are reported as non-intersecting,
    consistent with :meth:`IntersectionHyperplane.intersects_box`.
    """
    if coefficients.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    lows, highs = box.lows, box.highs
    low_contrib = np.where(coefficients >= 0, coefficients * lows, coefficients * highs)
    high_contrib = np.where(coefficients >= 0, coefficients * highs, coefficients * lows)
    gmin = low_contrib.sum(axis=1)
    gmax = high_contrib.sum(axis=1)
    nondegenerate = np.any(np.abs(coefficients) > 0.0, axis=1)
    return (gmin <= rhs) & (rhs <= gmax) & nondegenerate


def pairwise_intersections(
    hyperplanes: Sequence[DualHyperplane],
    skip_degenerate: bool = True,
) -> List[IntersectionHyperplane]:
    """Return the intersection hyperplanes of all ``(u choose 2)`` pairs.

    Parameters
    ----------
    hyperplanes:
        Dual hyperplanes (typically of the skyline points only, as in
        Algorithms 4 and 6).
    skip_degenerate:
        When ``True`` (default) parallel pairs are omitted — they never swap
        order, so the Intersection Index has no use for them.
    """
    result: List[IntersectionHyperplane] = []
    n = len(hyperplanes)
    for i in range(n):
        for j in range(i + 1, n):
            inter = intersection_of(hyperplanes[i], hyperplanes[j])
            if skip_degenerate and inter.is_degenerate:
                continue
            result.append(inter)
    return result
