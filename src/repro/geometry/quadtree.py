"""Line quadtree / hyperplane ``2^k``-tree (the QUAD Intersection Index).

Section IV of the paper indexes the ``(u choose 2)`` intersection
hyperplanes with a *line quadtree*: a rooted tree in which every internal
node covers an axis-aligned cell of the dual domain and has ``2^k`` children
(the cell's quadrants), where ``k = d - 1`` is the dual-domain
dimensionality.  A hyperplane is stored in every leaf cell it crosses; a
node whose hyperplane set exceeds the capacity is split into its quadrants.

Average-case queries are fast because the recursion only descends into
quadrants touched by the query box, but the tree can degenerate when all
hyperplanes crowd into the same quadrant at every level — exactly the worst
case the paper constructs for Figures 13 and 14 (where the cutting tree
wins).

Implementation notes
--------------------
The tree is built in bulk over *arrays* — a coefficient matrix of shape
``(m, k)`` and a right-hand-side vector of shape ``(m,)`` — and every node
keeps an index array into them, so the per-level hyperplane/cell
intersection tests are single vectorised numpy operations rather than
``m`` Python calls.  The stopping rules are:

* a cell crossed by at most ``capacity`` hyperplanes stays a leaf;
* the depth cap ``max_depth`` bounds pathological recursion;
* a split that fails to separate the hyperplanes (every child inherits the
  whole set) is rolled back, because midpoint splits cannot help such cells.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.hyperplane import hyperplanes_intersect_box_mask

#: Default per-leaf capacity; ``None`` lets the tree pick a size-aware value.
DEFAULT_CAPACITY: Optional[int] = None

#: Hard cap on the tree depth so degenerate inputs terminate.
DEFAULT_MAX_DEPTH = 12

#: Soft budget on the number of tree nodes.  A cell of a ``k``-dimensional
#: quadtree at depth ``t`` is crossed by roughly ``m / 2^t`` of ``m``
#: well-spread hyperplanes while the number of cells grows like ``2^{kt}``,
#: so an unbounded build can explode combinatorially for ``k >= 3``; once the
#: budget is exhausted remaining cells simply stay leaves (queries remain
#: exact because leaves are post-filtered).  The final node count can exceed
#: the budget by at most ``2^k`` nodes per level of the recursion stack that
#: was in flight when the budget ran out.
DEFAULT_MAX_NODES = 4096


def _auto_capacity(num_hyperplanes: int) -> int:
    """Size-aware leaf capacity: ``max(8, sqrt(m))``.

    Pushing the capacity all the way down to a small constant forces
    ``Θ((m/c)^k)`` cells; a capacity of ``sqrt(m)`` keeps the total number of
    hyperplane/cell incidences near-linear while still giving queries a
    large pruning factor.
    """
    return max(8, int(np.sqrt(max(num_hyperplanes, 1))))


class _QuadtreeNode:
    """One cell: its box, the indices stored at it (leaves) or its children."""

    __slots__ = ("box", "indices", "children", "depth")

    def __init__(self, box: Box, indices: np.ndarray, depth: int):
        self.box = box
        self.indices = indices
        self.children: Optional[List["_QuadtreeNode"]] = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class LineQuadtree:
    """A ``2^k``-ary spatial index over intersection hyperplanes.

    Parameters
    ----------
    coefficients, rhs:
        The hyperplanes ``coefficients[i] · x = rhs[i]`` to index, as
        parallel arrays of shape ``(m, k)`` and ``(m,)``.
    domain:
        The dual-domain box the tree covers.  Hyperplanes that do not cross
        the domain are kept in an overflow set so queries remain exact even
        for query boxes that (partially) leave the domain.
    capacity:
        Maximum number of hyperplanes per leaf before it splits; ``None``
        picks :func:`_auto_capacity`.
    max_depth:
        Depth cap guaranteeing termination on degenerate inputs.
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        rhs: np.ndarray,
        domain: Box,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_nodes: int = DEFAULT_MAX_NODES,
    ):
        coefficients = np.asarray(coefficients, dtype=float)
        rhs = np.asarray(rhs, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != rhs.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (m, k) and rhs must be (m,)"
            )
        if coefficients.size and coefficients.shape[1] != domain.dimensions:
            raise DimensionMismatchError(
                "hyperplane dimensionality does not match the tree domain"
            )
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self._coefficients = coefficients
        self._rhs = rhs
        self._domain = domain
        self._capacity = (
            _auto_capacity(coefficients.shape[0]) if capacity is None else int(capacity)
        )
        if self._capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._max_depth = int(max_depth)
        if max_nodes < 1:
            raise ValueError("max_nodes must be at least 1")
        self._max_nodes = int(max_nodes)
        self._nodes_created = 0

        all_indices = np.arange(coefficients.shape[0], dtype=np.intp)
        in_domain = hyperplanes_intersect_box_mask(coefficients, rhs, domain)
        self._outside = all_indices[~in_domain]
        self._root = self._build(domain, all_indices[in_domain], depth=0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def domain(self) -> Box:
        """The dual-domain box covered by the root."""
        return self._domain

    @property
    def size(self) -> int:
        """Number of indexed hyperplanes."""
        return int(self._coefficients.shape[0])

    @property
    def capacity(self) -> int:
        """Leaf capacity actually in use."""
        return self._capacity

    @property
    def depth(self) -> int:
        """Maximum depth of the tree."""
        return self._max_depth_of(self._root)

    def node_count(self) -> int:
        """Total number of tree nodes (for diagnostics and tests)."""
        return self._count_nodes(self._root)

    def max_leaf_load(self) -> int:
        """Largest number of hyperplanes stored in a single leaf."""
        return self._max_load(self._root)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, box: Box) -> np.ndarray:
        """Indices of hyperplanes that intersect the query ``box`` (exact).

        The recursion prunes cells disjoint from the query; candidates
        collected at the leaves (plus the overflow set) are filtered with the
        exact vectorised hyperplane/box test, so the result is exact for any
        query box.
        """
        if box.dimensions != self._domain.dimensions:
            raise DimensionMismatchError(
                "query box dimensionality does not match the tree domain"
            )
        collected: List[np.ndarray] = [self._outside]
        self._collect(self._root, box, collected)
        if not collected:
            return np.empty(0, dtype=np.intp)
        candidates = np.unique(np.concatenate(collected))
        if candidates.size == 0:
            return candidates
        mask = hyperplanes_intersect_box_mask(
            self._coefficients[candidates], self._rhs[candidates], box
        )
        return candidates[mask]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _build(self, box: Box, indices: np.ndarray, depth: int) -> _QuadtreeNode:
        node = _QuadtreeNode(box, indices, depth)
        self._nodes_created += 1
        if (
            indices.size <= self._capacity
            or depth >= self._max_depth
            or self._nodes_created + 2**box.dimensions > self._max_nodes
        ):
            return node
        child_boxes = box.split()
        child_index_sets = []
        for child_box in child_boxes:
            mask = hyperplanes_intersect_box_mask(
                self._coefficients[indices], self._rhs[indices], child_box
            )
            child_index_sets.append(indices[mask])
        made_progress = any(ci.size < indices.size for ci in child_index_sets)
        if not made_progress:
            # Every quadrant is crossed by every hyperplane: splitting at the
            # midpoint cannot help, keep the cell as a (large) leaf.
            return node
        node.children = [
            self._build(child_box, child_indices, depth + 1)
            for child_box, child_indices in zip(child_boxes, child_index_sets)
        ]
        node.indices = np.empty(0, dtype=np.intp)
        return node

    def _collect(self, node: _QuadtreeNode, box: Box, out: List[np.ndarray]) -> None:
        if not node.box.intersects_box(box):
            return
        if node.is_leaf:
            if node.indices.size:
                out.append(node.indices)
            return
        for child in node.children:
            self._collect(child, box, out)

    def _max_depth_of(self, node: _QuadtreeNode) -> int:
        if node.is_leaf:
            return node.depth
        return max(self._max_depth_of(child) for child in node.children)

    def _count_nodes(self, node: _QuadtreeNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(child) for child in node.children)

    def _max_load(self, node: _QuadtreeNode) -> int:
        if node.is_leaf:
            return int(node.indices.size)
        return max(self._max_load(child) for child in node.children)
