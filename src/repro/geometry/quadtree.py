"""Line quadtree / hyperplane ``2^k``-tree (the QUAD Intersection Index).

Section IV of the paper indexes the ``(u choose 2)`` intersection
hyperplanes with a *line quadtree*: a rooted tree in which every internal
node covers an axis-aligned cell of the dual domain and has ``2^k`` children
(the cell's quadrants), where ``k = d - 1`` is the dual-domain
dimensionality.  A hyperplane is stored in every leaf cell it crosses; a
node whose hyperplane set exceeds the capacity is split into its quadrants.

Average-case queries are fast because the traversal only descends into
quadrants touched by the query box, but the tree can degenerate when all
hyperplanes crowd into the same quadrant at every level — exactly the worst
case the paper constructs for Figures 13 and 14 (where the cutting tree
wins).

Implementation notes
--------------------
This class is a thin *strategy wrapper* — midpoint ``2^k``-quadrant splits
plus the quadtree's stopping policy — over the shared flattened tree engine
(:class:`repro.geometry.flattree.FlatTree`).  The build is breadth-first
and array-native: one CSR node store, one batched box-vs-hyperplane
intersection kernel per child slot per *level* (instead of one Python frame
per node), and iterative stack-free queries.  The stopping rules are
unchanged from the recursive builder:

* a cell crossed by at most ``capacity`` hyperplanes stays a leaf;
* the depth cap ``max_depth`` bounds pathological recursion;
* a split that fails to separate the hyperplanes (every child inherits the
  whole set) is rolled back, because midpoint splits cannot help such cells.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.boxes import Box
from repro.geometry.flattree import (
    FlatTree,
    boxes_to_bounds,
    build_quadtree_core,
)

#: Default per-leaf capacity; ``None`` lets the tree pick a size-aware value.
DEFAULT_CAPACITY: Optional[int] = None

#: Hard cap on the tree depth so degenerate inputs terminate.
DEFAULT_MAX_DEPTH = 12

#: Soft budget on the number of tree nodes.  A cell of a ``k``-dimensional
#: quadtree at depth ``t`` is crossed by roughly ``m / 2^t`` of ``m``
#: well-spread hyperplanes while the number of cells grows like ``2^{kt}``,
#: so an unbounded build can explode combinatorially for ``k >= 3``; once the
#: budget is exhausted remaining cells simply stay leaves (queries remain
#: exact because leaves are post-filtered).
DEFAULT_MAX_NODES = 4096


class LineQuadtree:
    """A ``2^k``-ary spatial index over intersection hyperplanes.

    Parameters
    ----------
    coefficients, rhs:
        The hyperplanes ``coefficients[i] · x = rhs[i]`` to index, as
        parallel arrays of shape ``(m, k)`` and ``(m,)``.
    domain:
        The dual-domain box the tree covers.  Hyperplanes that do not cross
        the domain are kept in an overflow set; queries are exact for boxes
        contained in the domain (and for every box when the dual domain is
        one-dimensional) — see :class:`~repro.geometry.flattree.FlatTree`
        for the partial-overlap caveat in higher dimensions.
    capacity:
        Maximum number of hyperplanes per leaf before it splits; ``None``
        picks :func:`repro.geometry.flattree.auto_capacity`.
    max_depth:
        Depth cap guaranteeing termination on degenerate inputs.
    on_unsplittable:
        Forwarded to :class:`~repro.geometry.flattree.FlatTree`: ``"keep"``
        (default) keeps depth-capped cells of coincident duplicate
        hyperplanes as oversized leaves, ``"raise"`` surfaces them as a
        clear :class:`~repro.errors.DegenerateHyperplaneError`.
    shrink_domain:
        Opt-in root fitting (:func:`~repro.geometry.flattree.fit_root_box`):
        the root cell is shrunk to the hyperplane *cluster* (the bounding
        box of each hyperplane's closest point to their least-squares
        concentration point), which restores the midpoint splits' pruning
        power when the default dual domain dwarfs the cluster (the typical
        ``d >= 3`` regime).  Queries are exact for boxes inside the fitted
        root (exposed as :attr:`domain`); callers accepting arbitrary boxes
        must fall back to a scan outside it, as
        :class:`~repro.index.intersection.IntersectionIndex` does.
    """

    def __init__(
        self,
        coefficients: np.ndarray,
        rhs: np.ndarray,
        domain: Box,
        capacity: Optional[int] = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
        max_nodes: int = DEFAULT_MAX_NODES,
        on_unsplittable: str = "keep",
        shrink_domain: bool = False,
    ):
        self._core = build_quadtree_core(
            coefficients,
            rhs,
            domain,
            capacity=capacity,
            max_depth=max_depth,
            max_nodes=max_nodes,
            on_unsplittable=on_unsplittable,
            shrink_domain=shrink_domain,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def core(self) -> FlatTree:
        """The shared flattened tree engine backing this index."""
        return self._core

    @property
    def domain(self) -> Box:
        """The dual-domain box covered by the root."""
        return self._core.domain

    @property
    def size(self) -> int:
        """Number of indexed hyperplanes."""
        return self._core.size

    @property
    def capacity(self) -> int:
        """Leaf capacity actually in use."""
        return self._core.capacity

    @property
    def depth(self) -> int:
        """Maximum depth of the tree."""
        return self._core.depth

    def node_count(self) -> int:
        """Total number of tree nodes (for diagnostics and tests)."""
        return self._core.node_count()

    def max_leaf_load(self) -> int:
        """Largest number of hyperplanes stored in a single leaf."""
        return self._core.max_leaf_load()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, box: Box) -> np.ndarray:
        """Indices of hyperplanes that intersect the query ``box`` (exact)."""
        return self._core.query(box)

    def query_many(self, boxes) -> List[np.ndarray]:
        """Exact per-box candidate indices for many boxes in one traversal.

        ``boxes`` is a sequence of :class:`~repro.geometry.boxes.Box`; the
        result is positionally parallel and identical to calling
        :meth:`query` per box, but the tree walk, the candidate collection
        and the exact post-filter are batched across the whole sequence.
        """
        lows, highs = boxes_to_bounds(boxes, self._core.domain.dimensions)
        return self._core.query_many(lows, highs)

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def insert_hyperplanes(
        self, coefficients: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """Append hyperplanes to the index; returns their new item indices.

        Delegates to :meth:`repro.geometry.flattree.FlatTree.insert_hyperplanes`
        (per-leaf overflow buffers with threshold-triggered subtree rebuilds).
        """
        return self._core.insert_hyperplanes(coefficients, rhs)

    def compact_items(self, keep: np.ndarray, remap: np.ndarray) -> None:
        """Drop dead items and renumber the rest in place (arena compaction).

        Delegates to :meth:`repro.geometry.flattree.FlatTree.compact_items`.
        """
        self._core.compact_items(keep, remap)

    @property
    def arena_grows(self) -> int:
        """Buffer reallocations of the core's arenas since construction."""
        return self._core.arena_grows

    def nbytes(self) -> int:
        """Resident bytes of the core's arenas, headroom included."""
        return self._core.nbytes()
