"""Index structures for the index-based eclipse algorithms (Section IV).

Two cooperating indexes are built over the *skyline* points of the dataset
(eclipse points are always a subset of the skyline):

* :class:`OrderVectorIndex` — for a query reference corner of the dual-space
  box, the number of dual hyperplanes strictly closer to ``x_d = 0`` than
  each hyperplane (the *order vector*).
* :class:`IntersectionIndex` — the pairwise intersection hyperplanes, indexed
  so that the pairs whose relative order may change inside a query box can be
  retrieved quickly (sorted x-coordinates in two dimensions, a line quadtree
  or cutting tree in higher dimensions).

:class:`EclipseIndex` combines both and implements the query procedure of
Algorithms 5 and 7: start from the order vector at the reference corner and
correct it using the intersections that cross the query box; hyperplanes
whose final count is zero correspond to the eclipse points.
"""

from repro.index.order_vector import OrderVectorIndex
from repro.index.intersection import IntersectionIndex
from repro.index.eclipse_index import EclipseIndex, eclipse_index_query

__all__ = [
    "OrderVectorIndex",
    "IntersectionIndex",
    "EclipseIndex",
    "eclipse_index_query",
]
