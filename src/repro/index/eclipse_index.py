"""The combined eclipse index and its query procedure (Algorithms 4–7).

Building (:meth:`EclipseIndex.build`):

1. compute the skyline of the dataset — eclipse points are always skyline
   points, so only the ``u`` skyline points need indexing (Line 1 of
   Algorithms 4 and 6);
2. map each skyline point to its dual hyperplane;
3. build the :class:`~repro.index.order_vector.OrderVectorIndex` and the
   :class:`~repro.index.intersection.IntersectionIndex` (backed by the
   sorted structure, the line quadtree, or the cutting tree).

Querying (:meth:`EclipseIndex.query`): the ratio ranges become the dual box
``x_j ∈ [-h_j, -l_j]``; the order vector at the reference corner counts, for
every hyperplane, how many others dominate it there; every pair whose
intersection hyperplane meets the box is then re-examined exactly and the
counts corrected.  Hyperplanes whose final count is zero are not dominated
anywhere in the box — their primal points are the eclipse points.

Compared to the pseudo-code of Algorithms 5 and 7 the correction step does
an exact per-pair dominance test (an ``O(d)`` interval-arithmetic
evaluation, vectorised over all candidate pairs) instead of a blind
decrement; this keeps the ``O(u + m)`` query complexity while making the
result correct even for inputs with ties at the reference corner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import (
    DimensionMismatchError,
    IndexNotBuiltError,
    InvalidDatasetError,
)
from repro.geometry.boxes import Box
from repro.geometry.dual import dual_coefficient_arrays
from repro.index.intersection import (
    DEFAULT_MAX_RATIO,
    CandidateSet,
    IntersectionIndex,
)
from repro.index.order_vector import OrderVectorIndex, OrderVectorState
from repro.perf.arena import GrowableArena
from repro.perf.blocking import iter_blocks, memory_cap_bytes
from repro.skyline.api import skyline_indices


@dataclass
class IndexQueryStats:
    """Diagnostics of a single index query (useful in experiments and tests)."""

    num_skyline: int
    num_candidates: int
    num_eclipse: int


class EclipseIndex:
    """Order Vector Index + Intersection Index over one dataset.

    Parameters
    ----------
    backend:
        Intersection-index backend: ``"quadtree"`` (QUAD), ``"cutting"``
        (CUTTING), ``"sorted"``, ``"scan"`` or ``"auto"``.  For
        two-dimensional data every backend uses the sorted structure, as in
        the paper.
    skyline_method:
        Skyline algorithm used during the build step.
    max_ratio, capacity, seed:
        Forwarded to :class:`~repro.index.intersection.IntersectionIndex`.
    dense_threshold:
        Forwarded to the two-dimensional Order Vector Index (how many lines
        may be indexed with eagerly materialised interval order vectors).
    """

    def __init__(
        self,
        backend: str = "auto",
        skyline_method: str = "auto",
        max_ratio: float = DEFAULT_MAX_RATIO,
        capacity: Optional[int] = None,
        seed: Optional[int] = 0,
        dense_threshold: Optional[int] = None,
        shrink_domain: bool = False,
    ):
        self._backend = backend
        self._skyline_method = skyline_method
        self._max_ratio = max_ratio
        self._capacity = capacity
        self._seed = seed
        self._dense_threshold = dense_threshold
        self._shrink_domain = bool(shrink_domain)

        self._data: Optional[np.ndarray] = None
        self._order_index: Optional[OrderVectorIndex] = None
        self._intersection_index: Optional[IntersectionIndex] = None
        self._last_stats: Optional[IndexQueryStats] = None
        # Hyperplane slot arenas under dynamic updates: slot i holds the
        # dual hyperplane of dataset row _skyline_idx[i].  Dead slots keep
        # their arena rows — excluded from counts, candidates and results —
        # until :meth:`compact` renumbers the alive slots in place (no
        # rebuild).  Both stores grow geometrically, so appends never
        # re-copy the untouched slots.
        self._slots_a: Optional[GrowableArena] = None
        self._alive_a: Optional[GrowableArena] = None
        self._has_dead = False

    @property
    def _skyline_idx(self) -> Optional[np.ndarray]:
        return None if self._slots_a is None else self._slots_a.view

    @property
    def _slot_alive(self) -> Optional[np.ndarray]:
        return None if self._alive_a is None else self._alive_a.view

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(
        self, points: ArrayLike2D, skyline_idx: Optional[IndexArray] = None
    ) -> "EclipseIndex":
        """Build the index over ``points`` and return ``self``.

        The build path is array-native end to end: the skyline prefilter
        runs on the broadcast kernels, the duality transform is two array
        slices (:func:`~repro.geometry.dual.dual_coefficient_arrays`), and
        the order-vector/intersection structures are built through their
        ``from_arrays`` entry points — no per-point or per-pair Python
        objects are created.

        Parameters
        ----------
        points:
            Dataset of shape ``(n, d)``.
        skyline_idx:
            Precomputed raw-space skyline indices of ``points``, when the
            caller (typically a :class:`~repro.core.session.DatasetSession`)
            already has them; ``None`` computes them here with the
            configured ``skyline_method``.
        """
        data = as_dataset(points)
        if data.shape[0] and data.shape[1] < 2:
            raise DimensionMismatchError("eclipse indexing needs d >= 2 attributes")
        self._data = data
        if skyline_idx is None:
            skyline_idx = skyline_indices(data, method=self._skyline_method)
        # The arena copies into its own buffer, so a caller-supplied
        # skyline array (typically the session's memoised one, shared
        # across every cached index) is never remapped in place by this
        # index's delete_points.
        self._slots_a = GrowableArena(np.asarray(skyline_idx, dtype=np.intp))
        self._alive_a = GrowableArena(np.ones(len(self._slots_a), dtype=bool))
        self._has_dead = False
        coefficients, offsets = dual_coefficient_arrays(data[self._skyline_idx])
        self._order_index = OrderVectorIndex.from_arrays(
            coefficients, offsets, dense_threshold=self._dense_threshold
        )
        backend = self._backend
        if data.shape[1] == 2 and backend in ("quadtree", "cutting", "auto"):
            # In two dimensions both QUAD and CUTTING share the sorted
            # binary-search structure (Section IV-A of the paper).
            backend = "sorted"
        # on_unsplittable="raise": a tree backend chasing coincident
        # duplicate intersection hyperplanes (typically collinear input
        # points) to its depth cap fails here with one clear
        # DegenerateHyperplaneError instead of silently building a
        # maximal-depth tree that cannot prune anything.
        self._intersection_index = IntersectionIndex.from_arrays(
            coefficients,
            offsets,
            backend=backend,
            max_ratio=self._max_ratio,
            capacity=self._capacity,
            seed=self._seed,
            on_unsplittable="raise",
            shrink_domain=self._shrink_domain,
        )
        return self

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def delete_points(
        self, remap: np.ndarray, removed_positions: np.ndarray
    ) -> "EclipseIndex":
        """Retire skyline points and renumber the survivors.

        Parameters
        ----------
        remap:
            Old-dataset-position → new-dataset-position map (``-1`` for
            deleted rows), e.g. from
            :func:`repro.skyline.incremental.remap_after_delete`.  Always
            applied — a pure-insert update passes the identity.
        removed_positions:
            *Old* positions of indexed skyline points leaving the skyline
            (rows that were deleted, or demoted by an arriving dominator).
            Their hyperplane slots are marked dead; the Order Vector Index
            switches to the alive-aware on-demand path and the Intersection
            Index masks every pair with a dead endpoint.
        """
        self._require_built()
        remap = np.asarray(remap, dtype=np.intp)
        removed = np.asarray(removed_positions, dtype=np.intp)
        # Resolve and validate everything on scratch state BEFORE mutating:
        # a failed call must leave the index exactly as it was, not with
        # half-retired slots or half-remapped positions that would silently
        # answer queries with wrong row ids.
        newly_dead = np.empty(0, dtype=np.intp)
        if removed.size:
            alive_slots = np.flatnonzero(self._slot_alive)
            positions = self._skyline_idx[alive_slots]
            order = np.argsort(positions, kind="stable")
            sorted_positions = positions[order]
            located = np.searchsorted(sorted_positions, removed)
            if np.any(located >= sorted_positions.size) or np.any(
                sorted_positions[np.minimum(located, sorted_positions.size - 1)]
                != removed
            ):
                raise InvalidDatasetError(
                    "removed positions must be currently indexed skyline points"
                )
            newly_dead = alive_slots[order[located]]
        alive_after = self._slot_alive.copy()
        alive_after[newly_dead] = False
        remapped = remap[self._skyline_idx[alive_after]]
        if np.any(remapped < 0):
            raise InvalidDatasetError(
                "a deleted row is still indexed; pass its position in "
                "removed_positions"
            )
        # Commit.
        if newly_dead.size:
            self._alive_a.view[:] = alive_after
            self._has_dead = True
            self._order_index.drop_arrangement()
            self._intersection_index.refresh_alive(alive_after)
        self._skyline_idx[alive_after] = remapped
        return self

    def insert_points(
        self, data: ArrayLike2D, added_positions: np.ndarray
    ) -> "EclipseIndex":
        """Index newly arrived skyline points of the (already updated) data.

        ``data`` is the post-update dataset (the index keeps a reference for
        result materialisation); ``added_positions`` are the rows that
        joined the skyline — arrivals that survived screening plus points
        promoted out of the dominated buffer.  Their dual hyperplanes take
        fresh arena slots; the Intersection Index appends the alive × new
        and new × new intersection hyperplanes
        (:meth:`~repro.index.intersection.IntersectionIndex.insert_hyperplanes`).

        A tree backend's threshold-triggered subtree rebuild may raise
        :class:`~repro.errors.DegenerateHyperplaneError` when the arrivals
        pile coincident duplicate hyperplanes into one cell; callers should
        treat the index as unusable then (the session drops it and lets the
        next access re-attempt a full build, which memoises the degeneracy).
        """
        self._require_built()
        self._data = as_dataset(data)
        added = np.asarray(added_positions, dtype=np.intp)
        if added.size == 0:
            return self
        if self._order_index.num_hyperplanes == 0:
            # Built over an empty dataset: the dual dimensionality (and the
            # backend structures) were never seeded, so the first arrivals
            # are a fresh build — they ARE the whole skyline.
            return self.build(self._data, skyline_idx=np.sort(added))
        new_coefficients, new_offsets = dual_coefficient_arrays(self._data[added])
        total = self._skyline_idx.size
        new_slots = np.arange(total, total + added.size, dtype=np.intp)
        existing_alive = np.flatnonzero(self._slot_alive)
        existing_coefficients = self._order_index.coefficients[existing_alive]
        existing_offsets = self._order_index.offsets[existing_alive]
        self._slots_a.append(added)
        self._alive_a.append(np.ones(added.size, dtype=bool))
        self._order_index.append_arrays(new_coefficients, new_offsets)
        self._intersection_index.insert_hyperplanes(
            new_coefficients,
            new_offsets,
            new_slots,
            existing_coefficients,
            existing_offsets,
            existing_alive,
        )
        return self

    def compact(self) -> "EclipseIndex":
        """Reclaim dead hyperplane slots by renumbering the alive ones.

        One vectorised renumbering pass per store, *in place of* the full
        index rebuild the dead-fraction trigger used to force: the
        order-vector arenas keep only the alive dual rows, the intersection
        index drops dead pairs and remaps endpoint slot ids
        (:meth:`~repro.index.intersection.IntersectionIndex.compact`), and
        tree backends rewrite their item arenas without touching the cell
        structure.  Query results are identical before and after — the
        alive slots keep their relative order, so every value comparison,
        tie-break and candidate post-filter sees the same sequence.
        """
        self._require_built()
        if not self._has_dead:
            return self
        alive = self._slot_alive
        slot_remap = self._order_index.compact(alive)
        self._intersection_index.compact(slot_remap)
        self._slots_a.replace(self._skyline_idx[alive])
        self._alive_a.replace(np.ones(len(self._slots_a), dtype=bool))
        self._has_dead = False
        return self

    @property
    def arena_grows(self) -> int:
        """Buffer reallocations across every arena of this index's stores."""
        if not self.is_built:
            return 0
        grows = self._slots_a.grows + self._alive_a.grows
        grows += self._order_index.arena_grows
        grows += self._intersection_index.arena_grows
        return int(grows)

    def nbytes(self) -> int:
        """Resident bytes of every store this index owns, headroom included.

        Rolls up the slot/alive arenas, the order-vector dual arenas (and
        arrangement when kept), and the intersection stores including any
        tree backend.  The dataset array is excluded: the session owns it
        and it is shared across every cached index.
        """
        if not self.is_built:
            return 0
        total = self._slots_a.nbytes() + self._alive_a.nbytes()
        total += self._order_index.nbytes()
        total += self._intersection_index.nbytes()
        return int(total)

    @property
    def num_dead_slots(self) -> int:
        """Retired hyperplane slots still occupying arena rows."""
        if self._slot_alive is None:
            return 0
        return int(self._slot_alive.size - np.count_nonzero(self._slot_alive))

    @property
    def is_built(self) -> bool:
        """``True`` once :meth:`build` has completed."""
        return self._data is not None

    @property
    def num_points(self) -> int:
        """Number of points the index was built over."""
        self._require_built()
        return int(self._data.shape[0])

    @property
    def num_skyline_points(self) -> int:
        """Number of live skyline points (``u``) retained in the index."""
        self._require_built()
        if not self._has_dead:
            return int(self._skyline_idx.size)
        return int(np.count_nonzero(self._slot_alive))

    @property
    def skyline_indices(self) -> IndexArray:
        """Indices (into the current dataset) of the live skyline points."""
        self._require_built()
        if not self._has_dead:
            return self._skyline_idx.copy()
        return np.sort(self._skyline_idx[self._slot_alive])

    @property
    def backend(self) -> str:
        """Backend of the underlying Intersection Index."""
        if self._intersection_index is not None:
            return self._intersection_index.backend
        return self._backend

    @property
    def order_vector_index(self) -> OrderVectorIndex:
        """The Order Vector Index (after :meth:`build`)."""
        self._require_built()
        return self._order_index

    @property
    def intersection_index(self) -> IntersectionIndex:
        """The Intersection Index (after :meth:`build`)."""
        self._require_built()
        return self._intersection_index

    @property
    def last_query_stats(self) -> Optional[IndexQueryStats]:
        """Diagnostics of the most recent :meth:`query` call."""
        return self._last_stats

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_indices(self, ratios) -> IndexArray:
        """Return the indices (into the original dataset) of the eclipse points."""
        self._require_built()
        data = self._data
        if data.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        box = self._query_box(ratios)
        alive = self._slot_alive if self._has_dead else None
        state = self._order_index.initial_state(box, alive=alive)
        candidates = self._intersection_index.candidates(box)
        return self._finish_query(state, candidates, box)

    def query_indices_many(self, ratio_specs) -> List[IndexArray]:
        """Answer many ratio-range queries with batched index probes.

        Positionally parallel — and identical, per specification — to
        calling :meth:`query_indices` on each entry, up to the documented
        sub-ulp boundary: the stacked order-vector GEMM may round final
        digits differently from the per-query evaluation, so two dual
        values within one ulp of a tie at a reference corner can resolve
        differently (see
        :meth:`~repro.index.order_vector.OrderVectorIndex.initial_states`).
        The index probes are shared across the batch: one stacked GEMM
        produces every reference-corner order-vector state
        (:meth:`~repro.index.order_vector.OrderVectorIndex.initial_states`)
        and ONE tree traversal collects every query's intersection
        candidates
        (:meth:`~repro.index.intersection.IntersectionIndex.candidates_many`),
        so a batched session issues one traversal per batch instead of one
        per query; the exact correction step runs as ONE vectorised pass
        over the concatenated candidate sets of the whole batch
        (:meth:`_apply_adjustments_batch`) instead of one pass per query.
        ``last_query_stats`` reflects the final query of the batch, exactly
        as if the queries had been issued one by one.
        """
        self._require_built()
        specs = list(ratio_specs)
        if not specs:
            return []
        if self._data.shape[0] == 0:
            return [np.empty(0, dtype=np.intp) for _ in specs]
        boxes = [self._query_box(ratios) for ratios in specs]
        alive = self._slot_alive if self._has_dead else None
        states = self._order_index.initial_states(boxes, alive=alive)
        candidate_sets = self._intersection_index.candidates_many(boxes)
        counts = np.stack([state.counts for state in states]).astype(
            np.int64, copy=False
        )
        # The batched correction pass wins where per-query numpy-call
        # overhead dominates (many queries, small candidate sets); once the
        # concatenated candidate rows outgrow the kernel memory cap, the
        # per-query kernels are already saturated and the concatenation
        # would only copy hundreds of megabytes, so fall back to the
        # per-query pass.  Both produce bit-identical counts (the batched
        # pass replicates the arithmetic expression for expression).
        total_rows = sum(len(candidates) for candidates in candidate_sets)
        row_bytes = 8 * (5 + max(1, self._order_index.dual_dimensions))
        if total_rows * row_bytes <= memory_cap_bytes(None):
            self._apply_adjustments_batch(counts, states, candidate_sets, boxes)
        else:
            for i in range(len(boxes)):
                self._apply_adjustments(
                    counts[i], states[i], candidate_sets[i], boxes[i]
                )
        results = []
        for i in range(len(boxes)):
            zero = counts[i] == 0
            if self._has_dead:
                zero &= self._slot_alive
            results.append(np.sort(self._skyline_idx[np.flatnonzero(zero)]))
        self._last_stats = IndexQueryStats(
            num_skyline=self.num_skyline_points,
            num_candidates=len(candidate_sets[-1]),
            num_eclipse=int(results[-1].size),
        )
        return results

    def query(self, ratios) -> np.ndarray:
        """Return the eclipse points (rows of the original dataset)."""
        self._require_built()
        return self._data[self.query_indices(ratios)]

    # ------------------------------------------------------------------
    def _query_box(self, ratios) -> Box:
        data = self._data
        ratio_vector = (
            ratios
            if isinstance(ratios, RatioVector)
            else make_ratio_vector(ratios, data.shape[1])
        )
        if ratio_vector.dimensions != data.shape[1]:
            raise DimensionMismatchError(
                f"ratio vector is for d={ratio_vector.dimensions}, "
                f"dataset has d={data.shape[1]}"
            )
        return Box(lows=-ratio_vector.highs, highs=-ratio_vector.lows)

    def _finish_query(
        self, state: OrderVectorState, candidates: CandidateSet, box: Box
    ) -> IndexArray:
        counts = state.counts.astype(np.int64, copy=True)
        self._apply_adjustments(counts, state, candidates, box)
        zero = counts == 0
        if self._has_dead:
            zero &= self._slot_alive
        local = np.flatnonzero(zero)
        result = np.sort(self._skyline_idx[local])
        self._last_stats = IndexQueryStats(
            num_skyline=self.num_skyline_points,
            num_candidates=len(candidates),
            num_eclipse=int(result.size),
        )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_adjustments(
        counts: np.ndarray,
        state: OrderVectorState,
        candidates: CandidateSet,
        box: Box,
    ) -> None:
        """Correct ``counts`` for every pair whose intersection meets the box.

        For a candidate pair ``(a, b)`` the sign function
        ``g(x) = f_a(x) - f_b(x)`` has coefficients ``candidates.coefficients``
        and constant ``-candidates.rhs``; its exact range over the box decides
        whether either hyperplane dominates the other across the whole box:

        * ``a`` dominates ``b``  ⇔  ``min g >= 0`` and ``max g > 0``;
        * ``b`` dominates ``a``  ⇔  ``max g <= 0`` and ``min g < 0``.

        The initial counts charged ``b`` when ``a`` was above at the
        reference corner (and vice versa); the correction removes charges
        that do not correspond to whole-box dominance and adds the charges
        missed because of ties at the corner.
        """
        if len(candidates) == 0:
            return
        coeffs = candidates.coefficients
        rhs = candidates.rhs
        lows, highs = box.lows, box.highs
        low_contrib = np.where(coeffs >= 0, coeffs * lows, coeffs * highs)
        high_contrib = np.where(coeffs >= 0, coeffs * highs, coeffs * lows)
        gmin = low_contrib.sum(axis=1) - rhs
        gmax = high_contrib.sum(axis=1) - rhs
        first_dominates = (gmin >= 0.0) & (gmax > 0.0)
        second_dominates = (gmax <= 0.0) & (gmin < 0.0)

        a = candidates.pairs[:, 0]
        b = candidates.pairs[:, 1]
        va = state.values[a]
        vb = state.values[b]
        if state.slopes is not None:
            slope_a = state.slopes[a]
            slope_b = state.slopes[b]
            a_above = (va > vb) | ((va == vb) & (slope_a < slope_b))
            b_above = (vb > va) | ((va == vb) & (slope_b < slope_a))
        else:
            a_above = va > vb
            b_above = vb > va
        tie = ~(a_above | b_above)

        # Remove initial charges that are not whole-box dominance.
        np.subtract.at(counts, b[a_above & ~first_dominates], 1)
        np.subtract.at(counts, a[b_above & ~second_dominates], 1)
        # Add the charges the tie-at-corner cases missed.
        np.add.at(counts, b[tie & first_dominates], 1)
        np.add.at(counts, a[tie & second_dominates], 1)

    def _apply_adjustments_batch(
        self,
        counts: np.ndarray,
        states: List[OrderVectorState],
        candidate_sets: List[CandidateSet],
        boxes: List[Box],
    ) -> None:
        """Batched counterpart of :meth:`_apply_adjustments`.

        ``counts`` is the ``(q, u)`` stacked count matrix, corrected in
        place.  The per-query candidate sets are concatenated and processed
        with one vectorised pass: per-row box bounds come from repeating
        each query's bounds over its candidate rows, and the count
        adjustments scatter into the flattened matrix at
        ``query * u + hyperplane``.  The arithmetic — the interval products,
        the per-row left-to-right summation, the dominance and tie
        predicates — is identical expression for expression to the
        single-query pass, so batched and per-query results match bit for
        bit.  Rows are chunked so the float scratch respects the shared
        kernel memory cap.
        """
        sizes = np.array([len(c) for c in candidate_sets], dtype=np.intp)
        total = int(sizes.sum())
        if total == 0:
            return
        num_queries, num_slots = counts.shape
        query_of_row = np.repeat(np.arange(num_queries, dtype=np.intp), sizes)
        pairs = np.concatenate(
            [c.pairs for c in candidate_sets if len(c)], axis=0
        )
        coeffs = np.concatenate(
            [c.coefficients for c in candidate_sets if len(c)], axis=0
        )
        rhs = np.concatenate([c.rhs for c in candidate_sets if len(c)])
        box_lows = np.stack([box.lows for box in boxes])
        box_highs = np.stack([box.highs for box in boxes])
        values = np.stack([state.values for state in states])
        slopes = states[0].slopes  # per-hyperplane, shared across the batch
        flat = counts.reshape(-1)

        k = coeffs.shape[1]
        # ~8 float scratch arrays of (block, k) per chunk evaluation.
        block = max(1, memory_cap_bytes(None) // (max(1, k) * 8 * 8))
        for start, stop in iter_blocks(total, block):
            rows_q = query_of_row[start:stop]
            cf = coeffs[start:stop]
            lows = box_lows[rows_q]
            highs = box_highs[rows_q]
            low_contrib = np.where(cf >= 0, cf * lows, cf * highs)
            high_contrib = np.where(cf >= 0, cf * highs, cf * lows)
            gmin = low_contrib.sum(axis=1) - rhs[start:stop]
            gmax = high_contrib.sum(axis=1) - rhs[start:stop]
            first_dominates = (gmin >= 0.0) & (gmax > 0.0)
            second_dominates = (gmax <= 0.0) & (gmin < 0.0)

            a = pairs[start:stop, 0]
            b = pairs[start:stop, 1]
            va = values[rows_q, a]
            vb = values[rows_q, b]
            if slopes is not None:
                slope_a = slopes[a]
                slope_b = slopes[b]
                a_above = (va > vb) | ((va == vb) & (slope_a < slope_b))
                b_above = (vb > va) | ((va == vb) & (slope_b < slope_a))
            else:
                a_above = va > vb
                b_above = vb > va
            tie = ~(a_above | b_above)

            base = rows_q * num_slots
            drop_b = a_above & ~first_dominates
            drop_a = b_above & ~second_dominates
            add_b = tie & first_dominates
            add_a = tie & second_dominates
            np.subtract.at(flat, base[drop_b] + b[drop_b], 1)
            np.subtract.at(flat, base[drop_a] + a[drop_a], 1)
            np.add.at(flat, base[add_b] + b[add_b], 1)
            np.add.at(flat, base[add_a] + a[add_a], 1)

    def _require_built(self) -> None:
        if self._data is None:
            raise IndexNotBuiltError(
                "EclipseIndex.build(points) must be called before querying"
            )


def eclipse_index_query(
    points: ArrayLike2D,
    ratios,
    backend: str = "quadtree",
    **index_kwargs,
) -> IndexArray:
    """One-shot convenience helper: build an index and run a single query.

    Useful in tests and small scripts; real applications should build the
    index once (:class:`EclipseIndex`) and reuse it across queries, which is
    the whole point of the index-based algorithms.
    """
    index = EclipseIndex(backend=backend, **index_kwargs).build(points)
    return index.query_indices(ratios)
