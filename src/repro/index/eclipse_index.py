"""The combined eclipse index and its query procedure (Algorithms 4–7).

Building (:meth:`EclipseIndex.build`):

1. compute the skyline of the dataset — eclipse points are always skyline
   points, so only the ``u`` skyline points need indexing (Line 1 of
   Algorithms 4 and 6);
2. map each skyline point to its dual hyperplane;
3. build the :class:`~repro.index.order_vector.OrderVectorIndex` and the
   :class:`~repro.index.intersection.IntersectionIndex` (backed by the
   sorted structure, the line quadtree, or the cutting tree).

Querying (:meth:`EclipseIndex.query`): the ratio ranges become the dual box
``x_j ∈ [-h_j, -l_j]``; the order vector at the reference corner counts, for
every hyperplane, how many others dominate it there; every pair whose
intersection hyperplane meets the box is then re-examined exactly and the
counts corrected.  Hyperplanes whose final count is zero are not dominated
anywhere in the box — their primal points are the eclipse points.

Compared to the pseudo-code of Algorithms 5 and 7 the correction step does
an exact per-pair dominance test (an ``O(d)`` interval-arithmetic
evaluation, vectorised over all candidate pairs) instead of a blind
decrement; this keeps the ``O(u + m)`` query complexity while making the
result correct even for inputs with ties at the reference corner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import DimensionMismatchError, IndexNotBuiltError
from repro.geometry.boxes import Box
from repro.geometry.dual import dual_coefficient_arrays
from repro.index.intersection import (
    DEFAULT_MAX_RATIO,
    CandidateSet,
    IntersectionIndex,
)
from repro.index.order_vector import OrderVectorIndex, OrderVectorState
from repro.skyline.api import skyline_indices


@dataclass
class IndexQueryStats:
    """Diagnostics of a single index query (useful in experiments and tests)."""

    num_skyline: int
    num_candidates: int
    num_eclipse: int


class EclipseIndex:
    """Order Vector Index + Intersection Index over one dataset.

    Parameters
    ----------
    backend:
        Intersection-index backend: ``"quadtree"`` (QUAD), ``"cutting"``
        (CUTTING), ``"sorted"``, ``"scan"`` or ``"auto"``.  For
        two-dimensional data every backend uses the sorted structure, as in
        the paper.
    skyline_method:
        Skyline algorithm used during the build step.
    max_ratio, capacity, seed:
        Forwarded to :class:`~repro.index.intersection.IntersectionIndex`.
    dense_threshold:
        Forwarded to the two-dimensional Order Vector Index (how many lines
        may be indexed with eagerly materialised interval order vectors).
    """

    def __init__(
        self,
        backend: str = "auto",
        skyline_method: str = "auto",
        max_ratio: float = DEFAULT_MAX_RATIO,
        capacity: Optional[int] = None,
        seed: Optional[int] = 0,
        dense_threshold: Optional[int] = None,
    ):
        self._backend = backend
        self._skyline_method = skyline_method
        self._max_ratio = max_ratio
        self._capacity = capacity
        self._seed = seed
        self._dense_threshold = dense_threshold

        self._data: Optional[np.ndarray] = None
        self._skyline_idx: Optional[np.ndarray] = None
        self._order_index: Optional[OrderVectorIndex] = None
        self._intersection_index: Optional[IntersectionIndex] = None
        self._last_stats: Optional[IndexQueryStats] = None

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(
        self, points: ArrayLike2D, skyline_idx: Optional[IndexArray] = None
    ) -> "EclipseIndex":
        """Build the index over ``points`` and return ``self``.

        The build path is array-native end to end: the skyline prefilter
        runs on the broadcast kernels, the duality transform is two array
        slices (:func:`~repro.geometry.dual.dual_coefficient_arrays`), and
        the order-vector/intersection structures are built through their
        ``from_arrays`` entry points — no per-point or per-pair Python
        objects are created.

        Parameters
        ----------
        points:
            Dataset of shape ``(n, d)``.
        skyline_idx:
            Precomputed raw-space skyline indices of ``points``, when the
            caller (typically a :class:`~repro.core.session.DatasetSession`)
            already has them; ``None`` computes them here with the
            configured ``skyline_method``.
        """
        data = as_dataset(points)
        if data.shape[0] and data.shape[1] < 2:
            raise DimensionMismatchError("eclipse indexing needs d >= 2 attributes")
        self._data = data
        if skyline_idx is None:
            skyline_idx = skyline_indices(data, method=self._skyline_method)
        self._skyline_idx = np.asarray(skyline_idx, dtype=np.intp)
        coefficients, offsets = dual_coefficient_arrays(data[self._skyline_idx])
        self._order_index = OrderVectorIndex.from_arrays(
            coefficients, offsets, dense_threshold=self._dense_threshold
        )
        backend = self._backend
        if data.shape[1] == 2 and backend in ("quadtree", "cutting", "auto"):
            # In two dimensions both QUAD and CUTTING share the sorted
            # binary-search structure (Section IV-A of the paper).
            backend = "sorted"
        # on_unsplittable="raise": a tree backend chasing coincident
        # duplicate intersection hyperplanes (typically collinear input
        # points) to its depth cap fails here with one clear
        # DegenerateHyperplaneError instead of silently building a
        # maximal-depth tree that cannot prune anything.
        self._intersection_index = IntersectionIndex.from_arrays(
            coefficients,
            offsets,
            backend=backend,
            max_ratio=self._max_ratio,
            capacity=self._capacity,
            seed=self._seed,
            on_unsplittable="raise",
        )
        return self

    @property
    def is_built(self) -> bool:
        """``True`` once :meth:`build` has completed."""
        return self._data is not None

    @property
    def num_points(self) -> int:
        """Number of points the index was built over."""
        self._require_built()
        return int(self._data.shape[0])

    @property
    def num_skyline_points(self) -> int:
        """Number of skyline points (``u``) retained in the index."""
        self._require_built()
        return int(self._skyline_idx.size)

    @property
    def skyline_indices(self) -> IndexArray:
        """Indices (into the original dataset) of the skyline points."""
        self._require_built()
        return self._skyline_idx.copy()

    @property
    def backend(self) -> str:
        """Backend of the underlying Intersection Index."""
        if self._intersection_index is not None:
            return self._intersection_index.backend
        return self._backend

    @property
    def order_vector_index(self) -> OrderVectorIndex:
        """The Order Vector Index (after :meth:`build`)."""
        self._require_built()
        return self._order_index

    @property
    def intersection_index(self) -> IntersectionIndex:
        """The Intersection Index (after :meth:`build`)."""
        self._require_built()
        return self._intersection_index

    @property
    def last_query_stats(self) -> Optional[IndexQueryStats]:
        """Diagnostics of the most recent :meth:`query` call."""
        return self._last_stats

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_indices(self, ratios) -> IndexArray:
        """Return the indices (into the original dataset) of the eclipse points."""
        self._require_built()
        data = self._data
        if data.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        box = self._query_box(ratios)
        state = self._order_index.initial_state(box)
        candidates = self._intersection_index.candidates(box)
        return self._finish_query(state, candidates, box)

    def query_indices_many(self, ratio_specs) -> List[IndexArray]:
        """Answer many ratio-range queries with batched index probes.

        Positionally parallel — and identical, per specification — to
        calling :meth:`query_indices` on each entry, up to the documented
        sub-ulp boundary: the stacked order-vector GEMM may round final
        digits differently from the per-query evaluation, so two dual
        values within one ulp of a tie at a reference corner can resolve
        differently (see
        :meth:`~repro.index.order_vector.OrderVectorIndex.initial_states`).
        The index probes are shared across the batch: one stacked GEMM
        produces every reference-corner order-vector state
        (:meth:`~repro.index.order_vector.OrderVectorIndex.initial_states`)
        and ONE tree traversal collects every query's intersection
        candidates
        (:meth:`~repro.index.intersection.IntersectionIndex.candidates_many`),
        so a batched session issues one traversal per batch instead of one
        per query.  ``last_query_stats`` reflects the final query of the
        batch, exactly as if the queries had been issued one by one.
        """
        self._require_built()
        specs = list(ratio_specs)
        if self._data.shape[0] == 0:
            return [np.empty(0, dtype=np.intp) for _ in specs]
        boxes = [self._query_box(ratios) for ratios in specs]
        states = self._order_index.initial_states(boxes)
        candidate_sets = self._intersection_index.candidates_many(boxes)
        return [
            self._finish_query(state, candidates, box)
            for state, candidates, box in zip(states, candidate_sets, boxes)
        ]

    def query(self, ratios) -> np.ndarray:
        """Return the eclipse points (rows of the original dataset)."""
        self._require_built()
        return self._data[self.query_indices(ratios)]

    # ------------------------------------------------------------------
    def _query_box(self, ratios) -> Box:
        data = self._data
        ratio_vector = (
            ratios
            if isinstance(ratios, RatioVector)
            else make_ratio_vector(ratios, data.shape[1])
        )
        if ratio_vector.dimensions != data.shape[1]:
            raise DimensionMismatchError(
                f"ratio vector is for d={ratio_vector.dimensions}, "
                f"dataset has d={data.shape[1]}"
            )
        return Box(lows=-ratio_vector.highs, highs=-ratio_vector.lows)

    def _finish_query(
        self, state: OrderVectorState, candidates: CandidateSet, box: Box
    ) -> IndexArray:
        counts = state.counts.astype(np.int64, copy=True)
        self._apply_adjustments(counts, state, candidates, box)
        local = np.flatnonzero(counts == 0)
        result = np.sort(self._skyline_idx[local])
        self._last_stats = IndexQueryStats(
            num_skyline=int(self._skyline_idx.size),
            num_candidates=len(candidates),
            num_eclipse=int(result.size),
        )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_adjustments(
        counts: np.ndarray,
        state: OrderVectorState,
        candidates: CandidateSet,
        box: Box,
    ) -> None:
        """Correct ``counts`` for every pair whose intersection meets the box.

        For a candidate pair ``(a, b)`` the sign function
        ``g(x) = f_a(x) - f_b(x)`` has coefficients ``candidates.coefficients``
        and constant ``-candidates.rhs``; its exact range over the box decides
        whether either hyperplane dominates the other across the whole box:

        * ``a`` dominates ``b``  ⇔  ``min g >= 0`` and ``max g > 0``;
        * ``b`` dominates ``a``  ⇔  ``max g <= 0`` and ``min g < 0``.

        The initial counts charged ``b`` when ``a`` was above at the
        reference corner (and vice versa); the correction removes charges
        that do not correspond to whole-box dominance and adds the charges
        missed because of ties at the corner.
        """
        if len(candidates) == 0:
            return
        coeffs = candidates.coefficients
        rhs = candidates.rhs
        lows, highs = box.lows, box.highs
        low_contrib = np.where(coeffs >= 0, coeffs * lows, coeffs * highs)
        high_contrib = np.where(coeffs >= 0, coeffs * highs, coeffs * lows)
        gmin = low_contrib.sum(axis=1) - rhs
        gmax = high_contrib.sum(axis=1) - rhs
        first_dominates = (gmin >= 0.0) & (gmax > 0.0)
        second_dominates = (gmax <= 0.0) & (gmin < 0.0)

        a = candidates.pairs[:, 0]
        b = candidates.pairs[:, 1]
        va = state.values[a]
        vb = state.values[b]
        if state.slopes is not None:
            slope_a = state.slopes[a]
            slope_b = state.slopes[b]
            a_above = (va > vb) | ((va == vb) & (slope_a < slope_b))
            b_above = (vb > va) | ((va == vb) & (slope_b < slope_a))
        else:
            a_above = va > vb
            b_above = vb > va
        tie = ~(a_above | b_above)

        # Remove initial charges that are not whole-box dominance.
        np.subtract.at(counts, b[a_above & ~first_dominates], 1)
        np.subtract.at(counts, a[b_above & ~second_dominates], 1)
        # Add the charges the tie-at-corner cases missed.
        np.add.at(counts, b[tie & first_dominates], 1)
        np.add.at(counts, a[tie & second_dominates], 1)

    def _require_built(self) -> None:
        if self._data is None:
            raise IndexNotBuiltError(
                "EclipseIndex.build(points) must be called before querying"
            )


def eclipse_index_query(
    points: ArrayLike2D,
    ratios,
    backend: str = "quadtree",
    **index_kwargs,
) -> IndexArray:
    """One-shot convenience helper: build an index and run a single query.

    Useful in tests and small scripts; real applications should build the
    index once (:class:`EclipseIndex`) and reuse it across queries, which is
    the whole point of the index-based algorithms.
    """
    index = EclipseIndex(backend=backend, **index_kwargs).build(points)
    return index.query_indices(ratios)
