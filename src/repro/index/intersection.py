"""Intersection Index (the second index of Section IV).

The Intersection Index stores the ``(u choose 2)`` pairwise intersection
hyperplanes of the dual hyperplanes and answers one question: *which pairs
may change their relative order inside a given dual query box?*  Those are
exactly the pairs whose intersection hyperplane meets the box.

Backends
--------
``sorted``
    Two-dimensional data only: intersections are points on the x-axis, so a
    sorted array plus binary search answers range queries (this is the
    structure Algorithm 4 builds, and the paper notes QUAD and CUTTING share
    it when ``d = 2``).
``quadtree``
    :class:`~repro.geometry.quadtree.LineQuadtree` over the dual domain.
``cutting``
    :class:`~repro.geometry.cutting.CuttingTree` over the dual domain.
``scan``
    No acceleration structure; every pair is tested with one vectorised
    pass.  Used as the exactness fallback when a query box escapes the
    indexed domain and as a reference in tests.

All backends return candidates as a :class:`CandidateSet` of parallel arrays
(pair indices, coefficients, right-hand sides) so the downstream query can
process them without Python-level loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import AlgorithmNotSupportedError, DimensionMismatchError
from repro.geometry.boxes import Box
from repro.geometry.cutting import CuttingTree
from repro.geometry.dual import DualHyperplane
from repro.geometry.hyperplane import (
    IntersectionHyperplane,
    hyperplanes_intersect_box_mask,
    pairwise_intersection_arrays,
    pairwise_intersection_arrays_from,
)
from repro.geometry.quadtree import LineQuadtree
from repro.perf.arena import GrowableArena
from repro.perf.blocking import iter_blocks, memory_cap_bytes

#: Ratio magnitude covered by the default dual-domain box of the tree
#: backends; queries beyond it transparently fall back to a full scan.
DEFAULT_MAX_RATIO = 128.0

_BACKENDS = ("sorted", "quadtree", "cutting", "scan")


@dataclass(frozen=True)
class CandidateSet:
    """Pairs whose intersection hyperplane meets a query box.

    Attributes
    ----------
    pairs:
        Integer array of shape ``(c, 2)``: the two dual-hyperplane indices of
        each candidate pair.
    coefficients:
        Float array of shape ``(c, k)``: coefficients of
        ``g(x) = f_first(x) - f_second(x)``.
    rhs:
        Float array of shape ``(c,)``: the constant of ``g`` (``g(x) =
        coefficients · x - rhs``).
    """

    pairs: np.ndarray
    coefficients: np.ndarray
    rhs: np.ndarray

    def __len__(self) -> int:
        return int(self.pairs.shape[0])

    def to_hyperplanes(self) -> List[IntersectionHyperplane]:
        """Materialise the candidates as :class:`IntersectionHyperplane` objects."""
        return [
            IntersectionHyperplane(
                coefficients=self.coefficients[i],
                rhs=float(self.rhs[i]),
                first=int(self.pairs[i, 0]),
                second=int(self.pairs[i, 1]),
            )
            for i in range(len(self))
        ]


class IntersectionIndex:
    """Index over the pairwise intersection hyperplanes of dual hyperplanes.

    Parameters
    ----------
    hyperplanes:
        Dual hyperplanes of the skyline points.  Their ``index`` attributes
        are the identifiers reported in query results.
    backend:
        One of ``"sorted"``, ``"quadtree"``, ``"cutting"``, ``"scan"`` or
        ``"auto"`` (sorted for two-dimensional data, quadtree otherwise).
    max_ratio:
        Largest ratio magnitude the tree backends cover; the dual domain box
        is ``[-max_ratio, 0]^{d-1}``.
    capacity:
        Leaf/cell capacity of the tree backends (``None`` = size-aware).
    seed:
        Random seed for the cutting-tree backend.
    on_unsplittable:
        Forwarded to the tree backends (``"keep"`` or ``"raise"``; see
        :class:`~repro.geometry.flattree.FlatTree`).
    """

    def __init__(
        self,
        hyperplanes: Sequence[DualHyperplane],
        backend: str = "auto",
        max_ratio: float = DEFAULT_MAX_RATIO,
        capacity: Optional[int] = None,
        seed: Optional[int] = 0,
        on_unsplittable: str = "keep",
        shrink_domain: bool = False,
    ):
        hyperplanes = list(hyperplanes)
        dual_dims = hyperplanes[0].dual_dimensions if hyperplanes else 0
        pairs, coefficients, rhs = pairwise_intersection_arrays(
            hyperplanes, skip_degenerate=True
        )
        self._init_from_pair_arrays(
            dual_dims, pairs, coefficients, rhs, backend, max_ratio, capacity, seed,
            on_unsplittable, shrink_domain,
        )

    @classmethod
    def from_arrays(
        cls,
        coefficients: np.ndarray,
        offsets: np.ndarray,
        indices: Optional[np.ndarray] = None,
        backend: str = "auto",
        max_ratio: float = DEFAULT_MAX_RATIO,
        capacity: Optional[int] = None,
        seed: Optional[int] = 0,
        on_unsplittable: str = "keep",
        shrink_domain: bool = False,
    ) -> "IntersectionIndex":
        """Build the index straight from ``(u, d-1)`` / ``(u,)`` dual arrays.

        The kernelised build entry point: the pairwise intersection
        hyperplanes are enumerated by the blocked array kernel
        (:func:`repro.geometry.hyperplane.pairwise_intersection_arrays_from`)
        without creating per-hyperplane or per-pair Python objects.
        """
        self = cls.__new__(cls)
        coefficients = np.asarray(coefficients, dtype=float)
        offsets = np.asarray(offsets, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != offsets.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (u, k) with offsets of length u"
            )
        dual_dims = int(coefficients.shape[1]) if coefficients.shape[0] else 0
        pairs, pair_coeffs, pair_rhs = pairwise_intersection_arrays_from(
            coefficients, offsets, indices=indices, skip_degenerate=True
        )
        self._init_from_pair_arrays(
            dual_dims, pairs, pair_coeffs, pair_rhs, backend, max_ratio, capacity,
            seed, on_unsplittable, shrink_domain,
        )
        return self

    def _init_from_pair_arrays(
        self,
        dual_dims: int,
        pairs: np.ndarray,
        coefficients: np.ndarray,
        rhs: np.ndarray,
        backend: str,
        max_ratio: float,
        capacity: Optional[int],
        seed: Optional[int],
        on_unsplittable: str = "keep",
        shrink_domain: bool = False,
    ) -> None:
        self._dual_dims = dual_dims
        if backend == "auto":
            backend = "sorted" if self._dual_dims == 1 else "quadtree"
        if backend not in _BACKENDS:
            raise AlgorithmNotSupportedError(
                f"unknown intersection-index backend {backend!r}; "
                f"choose from {_BACKENDS} or 'auto'"
            )
        if backend == "sorted" and self._dual_dims not in (0, 1):
            raise AlgorithmNotSupportedError(
                "the 'sorted' backend only supports two-dimensional data"
            )
        self._backend = backend
        self._max_ratio = float(max_ratio)
        self._domain = (
            Box(
                lows=np.full(self._dual_dims, -self._max_ratio),
                highs=np.zeros(self._dual_dims),
            )
            if self._dual_dims
            else None
        )

        # The pair arenas grow geometrically under dynamic appends; every
        # read goes through the valid-prefix view properties below.
        self._pairs_a = GrowableArena(pairs)
        self._pair_coeff_a = GrowableArena(coefficients)
        self._pair_rhs_a = GrowableArena(rhs)
        self._capacity = capacity
        self._seed = seed
        self._on_unsplittable = on_unsplittable
        self._shrink_domain = bool(shrink_domain)
        self._tree = None
        self._sorted_xs_a: Optional[GrowableArena] = None
        self._sorted_order_a: Optional[GrowableArena] = None
        # Liveness of the hyperplane *slots* under dynamic deletes; ``None``
        # (the static case) keeps the zero-overhead fast path.  Pair
        # liveness is derived per candidate set (both endpoints alive)
        # instead of being materialised over all ``O(u^2)`` stored pairs,
        # so a delete batch costs ``O(u)``, not ``O(m)``.
        self._slot_alive: Optional[np.ndarray] = None

        if self._pairs.shape[0] == 0:
            return
        if backend == "sorted":
            self._build_sorted()
        elif backend in ("quadtree", "cutting"):
            self._build_tree()
        # "scan" keeps only the flat arrays.

    @property
    def _pairs(self) -> np.ndarray:
        return self._pairs_a.view

    @property
    def _coefficients(self) -> np.ndarray:
        return self._pair_coeff_a.view

    @property
    def _rhs(self) -> np.ndarray:
        return self._pair_rhs_a.view

    @property
    def _sorted_xs(self) -> Optional[np.ndarray]:
        return None if self._sorted_xs_a is None else self._sorted_xs_a.view

    @property
    def _sorted_order(self) -> Optional[np.ndarray]:
        return None if self._sorted_order_a is None else self._sorted_order_a.view

    def _build_sorted(self) -> None:
        xs = self._rhs / self._coefficients[:, 0]
        order = np.argsort(xs, kind="stable")
        self._sorted_xs_a = GrowableArena(xs[order])
        self._sorted_order_a = GrowableArena(order)

    def _build_tree(self) -> None:
        if self._backend == "quadtree":
            self._tree = LineQuadtree(
                self._coefficients,
                self._rhs,
                self._domain,
                capacity=self._capacity,
                on_unsplittable=self._on_unsplittable,
                shrink_domain=self._shrink_domain,
            )
        else:
            self._tree = CuttingTree(
                self._coefficients,
                self._rhs,
                self._domain,
                capacity=self._capacity,
                seed=self._seed,
                on_unsplittable=self._on_unsplittable,
                shrink_domain=self._shrink_domain,
            )

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def insert_hyperplanes(
        self,
        new_coefficients: np.ndarray,
        new_offsets: np.ndarray,
        new_ids: np.ndarray,
        existing_coefficients: np.ndarray,
        existing_offsets: np.ndarray,
        existing_ids: np.ndarray,
        memory_cap: Optional[int] = None,
    ) -> None:
        """Append the intersection hyperplanes of newly indexed duals.

        ``new_*`` describe the arriving dual hyperplanes (slot ids
        ``new_ids``); ``existing_*`` the *alive* already-indexed duals.  The
        appended pairs are every alive-existing × new combination plus the
        pairwise intersections among the arrivals, enumerated with the same
        blocked array kernels as the static build (degenerate pairs —
        identical duals — are skipped, as there).  Appends land in the pair
        arenas' spare capacity — amortised ``O(appended)``, the untouched
        rows are never copied.  The backend structure is maintained
        incrementally: the sorted one-dimensional backend scatter-merges
        the new crossing coordinates through its arena's spare buffer,
        the tree backends append through
        :meth:`~repro.geometry.flattree.FlatTree.insert_hyperplanes`
        (per-leaf overflow buffers, threshold-triggered subtree rebuilds),
        and the scan backend needs nothing beyond the arenas.
        """
        new_coefficients = np.asarray(new_coefficients, dtype=float)
        new_offsets = np.asarray(new_offsets, dtype=float)
        new_ids = np.asarray(new_ids, dtype=np.intp)
        existing_ids = np.asarray(existing_ids, dtype=np.intp)
        b = new_ids.size
        if b == 0:
            return
        k = max(1, self._dual_dims)
        pair_chunks: List[np.ndarray] = []
        coeff_chunks: List[np.ndarray] = []
        rhs_chunks: List[np.ndarray] = []
        e = existing_ids.size
        if e:
            existing_coefficients = np.asarray(existing_coefficients, dtype=float)
            existing_offsets = np.asarray(existing_offsets, dtype=float)
            # Chunk the (e_block, b, k) broadcast over existing rows so the
            # scratch respects the shared kernel memory cap.
            block = max(1, memory_cap_bytes(memory_cap) // max(1, b * k * 8 * 4))
            for start, stop in iter_blocks(e, block):
                cross_coeffs = (
                    existing_coefficients[start:stop, None, :]
                    - new_coefficients[None, :, :]
                ).reshape(-1, k)
                cross_rhs = (
                    existing_offsets[start:stop, None] - new_offsets[None, :]
                ).reshape(-1)
                cross_pairs = np.empty((cross_coeffs.shape[0], 2), dtype=np.intp)
                cross_pairs[:, 0] = np.repeat(existing_ids[start:stop], b)
                cross_pairs[:, 1] = np.tile(new_ids, stop - start)
                keep = np.any(np.abs(cross_coeffs) > 0.0, axis=1)
                pair_chunks.append(cross_pairs[keep])
                coeff_chunks.append(cross_coeffs[keep])
                rhs_chunks.append(cross_rhs[keep])
        intra_pairs, intra_coeffs, intra_rhs = pairwise_intersection_arrays_from(
            new_coefficients, new_offsets, indices=new_ids, skip_degenerate=True
        )
        pair_chunks.append(intra_pairs)
        coeff_chunks.append(intra_coeffs)
        rhs_chunks.append(intra_rhs)

        added_pairs = np.concatenate(pair_chunks, axis=0)
        if added_pairs.shape[0] == 0:
            self._extend_slot_alive(new_ids)
            return
        added_coeffs = np.concatenate(coeff_chunks, axis=0)
        added_rhs = np.concatenate(rhs_chunks)
        first_row = self._pairs.shape[0]
        if first_row == 0 and self._pair_coeff_a.view.shape[1:] != added_coeffs.shape[1:]:
            # An index built over < 2 hyperplanes never fixed its pair row
            # shape; re-seed the arenas with the arrivals' (grow counters
            # carry over so the amortisation account is not reset).
            grows = (
                self._pairs_a.grows,
                self._pair_coeff_a.grows,
                self._pair_rhs_a.grows,
            )
            self._pairs_a = GrowableArena(added_pairs)
            self._pair_coeff_a = GrowableArena(added_coeffs)
            self._pair_rhs_a = GrowableArena(added_rhs)
            (
                self._pairs_a.grows,
                self._pair_coeff_a.grows,
                self._pair_rhs_a.grows,
            ) = grows
        else:
            self._pairs_a.append(added_pairs)
            self._pair_coeff_a.append(added_coeffs)
            self._pair_rhs_a.append(added_rhs)
        self._extend_slot_alive(new_ids)

        if self._backend == "sorted":
            if self._sorted_xs_a is None:
                self._build_sorted()
            else:
                xs = added_rhs / added_coeffs[:, 0]
                order = np.argsort(xs, kind="stable")
                xs = xs[order]
                rows = (
                    first_row + np.arange(added_pairs.shape[0], dtype=np.intp)
                )[order]
                positions = np.searchsorted(self._sorted_xs, xs, side="left")
                self._sorted_xs_a.insert(positions, xs)
                self._sorted_order_a.insert(positions, rows)
        elif self._backend in ("quadtree", "cutting"):
            if self._tree is None:
                self._build_tree()
            else:
                # Tree item ids stay aligned with pair row numbers: appends
                # extend both stores in lockstep, and compact() renumbers
                # the tree items with the same row remap it applies to the
                # pair arenas (FlatTree.compact_items).
                self._tree.insert_hyperplanes(added_coeffs, added_rhs)

    def refresh_alive(self, slot_alive: np.ndarray) -> None:
        """Record the hyperplane-slot liveness mask after slots died.

        ``slot_alive`` is the caller's boolean liveness mask over hyperplane
        slot ids (copied — the caller may keep mutating its own).  A pair
        survives iff both endpoints are alive; dead pairs stay in the
        arenas and the backend structures but are filtered out of every
        candidate set *at query time* (``O(candidates)`` per query), so a
        delete batch never pays an ``O(m)`` pass over the stored pairs.
        Compaction (:meth:`compact`) reclaims the dead rows when the update
        cost model decides the accumulated filter tax is worth it.
        """
        slot_alive = np.asarray(slot_alive, dtype=bool)
        if self.num_pairs == 0 or bool(slot_alive.all()):
            self._slot_alive = None
            return
        self._slot_alive = slot_alive.copy()

    def _extend_slot_alive(self, new_ids: np.ndarray) -> None:
        """Grow the recorded slot mask to cover newly appended (alive) slots."""
        if self._slot_alive is None or new_ids.size == 0:
            return
        top = int(new_ids.max()) + 1
        if top <= self._slot_alive.shape[0]:
            self._slot_alive[new_ids] = True
            return
        grown = np.ones(top, dtype=bool)
        grown[: self._slot_alive.shape[0]] = self._slot_alive
        self._slot_alive = grown

    def _pair_alive_mask(self) -> Optional[np.ndarray]:
        """Full per-pair liveness mask (``None`` when everything is alive).

        ``O(m)`` — used by compaction and introspection only; queries filter
        their (much smaller) candidate sets instead.
        """
        if self._slot_alive is None or self.num_pairs == 0:
            return None
        pairs = self._pairs
        alive = self._slot_alive[pairs[:, 0]] & self._slot_alive[pairs[:, 1]]
        return None if bool(alive.all()) else alive

    def compact(self, slot_remap: np.ndarray) -> None:
        """Drop dead pairs and renumber slot ids in one vectorised pass.

        ``slot_remap`` is the old-slot → new-slot map (``-1`` for dead
        slots) produced by the caller's slot compaction.  The pair arenas
        are rewritten in place (capacity kept), the sorted backend's
        crossing arrays are filtered and renumbered without re-sorting
        (relative order is preserved), and the tree backends remap their
        item arenas through
        :meth:`~repro.geometry.flattree.FlatTree.compact_items` — the tree
        *structure* (cells, splits) is untouched, which is what makes
        compaction cheap next to the rebuild it replaces.
        """
        keep = self._pair_alive_mask()
        self._slot_alive = None
        slot_remap = np.asarray(slot_remap, dtype=np.intp)
        if self.num_pairs == 0:
            return
        if keep is None:
            # Every pair alive: only the endpoint ids need renumbering.
            remapped = slot_remap[self._pairs]
            self._pairs_a.replace(remapped)
            return
        row_remap = np.cumsum(keep, dtype=np.intp) - 1
        self._pairs_a.replace(slot_remap[self._pairs[keep]])
        self._pair_coeff_a.replace(self._coefficients[keep])
        self._pair_rhs_a.replace(self._rhs[keep])
        if self._backend == "sorted" and self._sorted_order_a is not None:
            order = self._sorted_order
            sel = keep[order]
            self._sorted_xs_a.replace(self._sorted_xs[sel])
            self._sorted_order_a.replace(row_remap[order[sel]])
        elif self._tree is not None:
            self._tree.compact_items(keep, row_remap)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        """The backend actually in use."""
        return self._backend

    @property
    def num_pairs(self) -> int:
        """Number of stored (non-degenerate) intersection hyperplanes.

        Dead pairs of a dynamically maintained index are included; see
        :attr:`num_alive_pairs`.
        """
        return int(self._pairs.shape[0])

    @property
    def num_alive_pairs(self) -> int:
        """Number of stored pairs whose both endpoints are alive."""
        alive = self._pair_alive_mask()
        if alive is None:
            return self.num_pairs
        return int(np.count_nonzero(alive))

    @property
    def arena_grows(self) -> int:
        """Buffer reallocations of every arena this index owns."""
        grows = (
            self._pairs_a.grows + self._pair_coeff_a.grows + self._pair_rhs_a.grows
        )
        if self._sorted_xs_a is not None:
            grows += self._sorted_xs_a.grows + self._sorted_order_a.grows
        if self._tree is not None:
            grows += self._tree.arena_grows
        return int(grows)

    def nbytes(self) -> int:
        """Resident bytes of every arena this index owns, headroom included."""
        total = (
            self._pairs_a.nbytes()
            + self._pair_coeff_a.nbytes()
            + self._pair_rhs_a.nbytes()
        )
        if self._sorted_xs_a is not None:
            total += self._sorted_xs_a.nbytes() + self._sorted_order_a.nbytes()
        if self._tree is not None:
            total += self._tree.nbytes()
        return int(total)

    @property
    def domain(self) -> Optional[Box]:
        """Dual-domain box covered by the tree backends."""
        return self._domain

    @property
    def tree(self):
        """The underlying quadtree/cutting tree (``None`` for other backends)."""
        return self._tree

    def pair_hyperplanes(self) -> List[IntersectionHyperplane]:
        """All stored intersection hyperplanes as objects (small inputs only)."""
        return CandidateSet(self._pairs, self._coefficients, self._rhs).to_hyperplanes()

    # ------------------------------------------------------------------
    def candidates(self, box: Box) -> CandidateSet:
        """Return the pairs whose intersection hyperplane meets ``box``.

        The result is exact for every backend: tree backends post-filter
        their candidate sets with the exact vectorised test, and queries
        escaping the indexed domain fall back to a full scan so no pair is
        missed.
        """
        if self.num_pairs == 0:
            k = self._dual_dims
            return CandidateSet(
                pairs=np.empty((0, 2), dtype=np.intp),
                coefficients=np.empty((0, k), dtype=float),
                rhs=np.empty(0, dtype=float),
            )
        if box.dimensions != self._dual_dims:
            raise DimensionMismatchError(
                "query box dimensionality does not match the index"
            )
        if self._backend == "sorted":
            low, high = float(box.lows[0]), float(box.highs[0])
            start = int(np.searchsorted(self._sorted_xs, low, side="left"))
            end = int(np.searchsorted(self._sorted_xs, high, side="right"))
            selected = self._sorted_order[start:end]
        elif self._backend == "scan" or self._tree is None:
            mask = hyperplanes_intersect_box_mask(self._coefficients, self._rhs, box)
            selected = np.flatnonzero(mask)
        elif not self._covered_box().contains_box(box):
            # The tree only covers its (possibly shrunk) root domain; stay
            # exact by scanning.
            mask = hyperplanes_intersect_box_mask(self._coefficients, self._rhs, box)
            selected = np.flatnonzero(mask)
        else:
            selected = self._tree.query(box)
        return self._candidate_set(selected)

    def _covered_box(self) -> Box:
        """The box within which the tree backend answers exactly.

        The tree's own root domain — smaller than the configured dual
        domain when the opt-in domain-shrinking root is active, in which
        case boxes escaping it transparently fall back to the scan path.
        """
        if self._tree is not None:
            return self._tree.domain
        return self._domain

    def candidates_many(self, boxes: Sequence[Box]) -> List["CandidateSet"]:
        """Per-box candidate sets for many boxes, sharing one tree traversal.

        Positionally parallel — and identical, per box — to calling
        :meth:`candidates` on each box.  The tree backends answer the whole
        batch through :meth:`~repro.geometry.flattree.FlatTree.query_many`
        (one iterative walk over the CSR store for all boxes); the sorted
        backend answers it with two vectorised binary searches; only boxes
        escaping the indexed domain fall back to individual scans.
        """
        boxes = list(boxes)
        if self.num_pairs == 0 or not boxes:
            return [self.candidates(box) for box in boxes]
        for box in boxes:
            if box.dimensions != self._dual_dims:
                raise DimensionMismatchError(
                    "query box dimensionality does not match the index"
                )
        if self._backend == "sorted":
            lows = np.array([float(box.lows[0]) for box in boxes])
            highs = np.array([float(box.highs[0]) for box in boxes])
            starts = np.searchsorted(self._sorted_xs, lows, side="left")
            ends = np.searchsorted(self._sorted_xs, highs, side="right")
            return [
                self._candidate_set(self._sorted_order[start:end])
                for start, end in zip(starts, ends)
            ]
        if self._backend == "scan" or self._tree is None:
            return [self.candidates(box) for box in boxes]
        covered = self._covered_box()
        in_domain = [covered.contains_box(box) for box in boxes]
        tree_results = iter(
            self._tree.query_many([box for box, ok in zip(boxes, in_domain) if ok])
        )
        out: List[CandidateSet] = []
        for box, ok in zip(boxes, in_domain):
            if ok:
                out.append(self._candidate_set(next(tree_results)))
            else:
                # The tree only covers the default domain; stay exact by
                # scanning this box, like the single-query path.
                out.append(self.candidates(box))
        return out

    def _candidate_set(self, selected: np.ndarray) -> CandidateSet:
        pairs = self._pairs[selected]
        if self._slot_alive is not None:
            # Pair liveness derived on the candidates only (both endpoints
            # alive) — O(candidates) here instead of an O(m) mask refresh
            # on every delete batch.
            keep = self._slot_alive[pairs[:, 0]] & self._slot_alive[pairs[:, 1]]
            selected = selected[keep]
            pairs = pairs[keep]
        return CandidateSet(
            pairs=pairs,
            coefficients=self._coefficients[selected],
            rhs=self._rhs[selected],
        )
