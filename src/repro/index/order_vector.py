"""Order Vector Index (Algorithms 4 and 6).

The order vector at a dual-space location ``x`` assigns to every dual
hyperplane ``k`` the number of hyperplanes strictly closer to the
``x_d = 0`` hyperplane, i.e. with a strictly larger dual value ``f(x)``.  A
hyperplane whose count stays zero across the whole query box corresponds to
an eclipse point.

Two representations are provided, matching the paper:

* **two dimensions** — the x-axis is partitioned into the intervals of
  :class:`~repro.geometry.arrangement2d.Arrangement2D` and the per-interval
  order vectors are served from that structure (Algorithm 4, with a binary
  search at query time as in Line 1 of Algorithm 5);
* **higher dimensions** — materialising the full arrangement of the
  ``(u choose 2)`` intersection hyperplanes is impractical (the paper makes
  the same observation), so the order vector at the query's reference corner
  is computed on demand in ``O(u log u)`` by evaluating and ranking the dual
  values, which is the behaviour the paper describes for its own
  implementation of Algorithm 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import DimensionMismatchError
from repro.geometry.arrangement2d import Arrangement2D
from repro.geometry.boxes import Box
from repro.geometry.dual import DualHyperplane
from repro.perf.arena import GrowableArena


@dataclass(frozen=True)
class OrderVectorState:
    """Initial query state produced by the Order Vector Index.

    Attributes
    ----------
    counts:
        ``counts[k]`` — number of dual hyperplanes strictly closer to the
        ``x_d = 0`` hyperplane than hyperplane ``k`` at the reference corner.
    values:
        Dual values ``f_k(reference)``; kept so that the query procedure can
        decide, per intersecting pair, which hyperplane was on top at the
        reference corner.
    reference:
        The reference corner of the dual query box (the corner closest to
        the origin, i.e. ``(-l_1, ..., -l_{d-1})``).
    slopes:
        First dual coefficient of every hyperplane.  Only used by the
        two-dimensional tie-break (two lines meeting exactly at the
        reference point are ordered by slope, mirroring the "just below the
        interval boundary" representative of Algorithm 4).
    """

    counts: np.ndarray
    values: np.ndarray
    reference: np.ndarray
    slopes: Optional[np.ndarray] = None

    def initially_above(self, a: int, k: int) -> bool:
        """Was hyperplane ``a`` strictly above ``k`` in the initial order?

        "Above" means closer to the ``x_d = 0`` hyperplane at the reference
        corner.  In two dimensions ties at the reference corner are broken by
        slope so the answer matches the interval the count came from; in
        higher dimensions ties mean "neither above".
        """
        if self.values[a] > self.values[k]:
            return True
        if self.values[a] < self.values[k]:
            return False
        if self.slopes is not None:
            return bool(self.slopes[a] < self.slopes[k])
        return False


class OrderVectorIndex:
    """Order vectors for the dual hyperplanes of the skyline points."""

    #: Above this many lines the two-dimensional arrangement (whose
    #: construction enumerates all pairwise intersections) is skipped and the
    #: order vector is computed directly at query time, like in higher
    #: dimensions.
    MAX_ARRANGEMENT_LINES = 2048

    def __init__(
        self,
        hyperplanes: Sequence[DualHyperplane],
        dense_threshold: Optional[int] = None,
        max_arrangement_lines: Optional[int] = None,
    ):
        hyperplanes = list(hyperplanes)
        if hyperplanes:
            dual_dims = hyperplanes[0].dual_dimensions
            for h in hyperplanes:
                if h.dual_dimensions != dual_dims:
                    raise DimensionMismatchError(
                        "all dual hyperplanes must share the same dimensionality"
                    )
            coefficients = np.array(
                [h.coefficients for h in hyperplanes], dtype=float
            )
        else:
            coefficients = np.empty((0, 0))
        offsets = np.array([h.offset for h in hyperplanes], dtype=float)
        indices = np.array([h.index for h in hyperplanes], dtype=np.intp)
        self._init_from_arrays(
            coefficients, offsets, dense_threshold, max_arrangement_lines, indices
        )

    @classmethod
    def from_arrays(
        cls,
        coefficients: np.ndarray,
        offsets: np.ndarray,
        dense_threshold: Optional[int] = None,
        max_arrangement_lines: Optional[int] = None,
    ) -> "OrderVectorIndex":
        """Build the index straight from ``(u, d-1)`` / ``(u,)`` dual arrays.

        The kernelised build entry point
        (:func:`repro.geometry.dual.dual_coefficient_arrays` produces the
        inputs): no per-hyperplane Python objects are created, and the
        two-dimensional arrangement is built through its own array path.
        """
        self = cls.__new__(cls)
        coefficients = np.asarray(coefficients, dtype=float)
        offsets = np.asarray(offsets, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != offsets.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (u, k) with offsets of length u"
            )
        self._init_from_arrays(
            coefficients, offsets, dense_threshold, max_arrangement_lines, None
        )
        return self

    def _init_from_arrays(
        self,
        coefficients: np.ndarray,
        offsets: np.ndarray,
        dense_threshold: Optional[int],
        max_arrangement_lines: Optional[int],
        indices: Optional[np.ndarray],
    ) -> None:
        # The dual arenas grow geometrically under dynamic appends so an
        # update stream never re-concatenates the untouched rows.
        self._coeff_arena = GrowableArena(coefficients)
        self._offset_arena = GrowableArena(offsets)
        num = coefficients.shape[0]
        self._dual_dims = int(coefficients.shape[1]) if num else 0
        self._arrangement: Optional[Arrangement2D] = None
        arrangement_limit = (
            self.MAX_ARRANGEMENT_LINES
            if max_arrangement_lines is None
            else int(max_arrangement_lines)
        )
        if num and self._dual_dims == 1 and num <= arrangement_limit:
            self._arrangement = Arrangement2D.from_arrays(
                coefficients[:, 0],
                offsets,
                indices=indices,
                dense_threshold=dense_threshold,
            )

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    @property
    def _coefficients(self) -> np.ndarray:
        return self._coeff_arena.view

    @property
    def _offsets(self) -> np.ndarray:
        return self._offset_arena.view

    def append_arrays(self, coefficients: np.ndarray, offsets: np.ndarray) -> None:
        """Append new dual hyperplanes to the arena (dynamic maintenance).

        The new rows take the next slot positions (``num_hyperplanes`` up)
        and land in the arenas' spare capacity — amortised ``O(b)``, no
        re-concatenation of the existing rows.
        The eagerly materialised two-dimensional arrangement, when present,
        is dropped: its interval table enumerates the pairwise intersections
        of a *fixed* line set, and the on-demand sort path it falls back to
        is exact for every input (the correction pass of
        :meth:`repro.index.eclipse_index.EclipseIndex._apply_adjustments`
        resolves reference-corner ties without the slope tie-break).
        """
        coefficients = np.asarray(coefficients, dtype=float)
        offsets = np.asarray(offsets, dtype=float)
        if coefficients.ndim != 2 or coefficients.shape[0] != offsets.shape[0]:
            raise DimensionMismatchError(
                "coefficients must be (b, k) with offsets of length b"
            )
        if coefficients.shape[0] == 0:
            return
        if self.num_hyperplanes and coefficients.shape[1] != self._dual_dims:
            raise DimensionMismatchError(
                "appended hyperplane dimensionality does not match the index"
            )
        if self.num_hyperplanes == 0:
            # An empty index never fixed its dual dimensionality, so the
            # arenas must be re-seeded with the arrivals' row shape (the
            # grow counters carry over — re-seeding is bookkeeping, not a
            # reset of the amortisation account).
            grows = self._coeff_arena.grows, self._offset_arena.grows
            self._coeff_arena = GrowableArena(coefficients)
            self._offset_arena = GrowableArena(offsets)
            self._coeff_arena.grows, self._offset_arena.grows = grows
            self._dual_dims = int(coefficients.shape[1])
        else:
            self._coeff_arena.append(coefficients)
            self._offset_arena.append(offsets)
        self._arrangement = None

    def compact(self, alive: np.ndarray) -> np.ndarray:
        """Drop dead slots and renumber the survivors (arena compaction).

        ``alive`` is a boolean mask over the current slot positions.  The
        surviving rows are rewritten into the front of the arenas in one
        vectorised pass — relative order (and therefore every downstream
        value/sort comparison) is preserved, so query results are identical
        before and after.  Returns the old-slot → new-slot map (``-1`` for
        dead slots) for the caller's pair-level renumbering.
        """
        alive = np.asarray(alive, dtype=bool)
        if alive.shape[0] != self.num_hyperplanes:
            raise DimensionMismatchError(
                "alive mask length does not match the indexed hyperplanes"
            )
        remap = np.cumsum(alive, dtype=np.intp) - 1
        remap[~alive] = -1
        self._coeff_arena.replace(self._coeff_arena.view[alive])
        self._offset_arena.replace(self._offset_arena.view[alive])
        self._arrangement = None
        return remap

    @property
    def arena_grows(self) -> int:
        """Buffer reallocations of the dual arenas since construction."""
        return int(self._coeff_arena.grows + self._offset_arena.grows)

    def nbytes(self) -> int:
        """Resident bytes of the dual arenas (and arrangement, if kept)."""
        total = self._coeff_arena.nbytes() + self._offset_arena.nbytes()
        if self._arrangement is not None:
            total += self._arrangement.nbytes()
        return int(total)

    def drop_arrangement(self) -> None:
        """Fall back to the on-demand order-vector path (dynamic deletes).

        The arrangement's per-interval counts cover every indexed line; once
        slots can be dead, counts must be computed among the alive subset,
        which only the sort path supports.
        """
        self._arrangement = None

    # ------------------------------------------------------------------
    @property
    def num_hyperplanes(self) -> int:
        """Number of indexed dual hyperplanes (``u``), dead slots included."""
        return int(self._coefficients.shape[0])

    @property
    def coefficients(self) -> np.ndarray:
        """The ``(u, k)`` dual coefficient arena (slot order)."""
        return self._coefficients

    @property
    def offsets(self) -> np.ndarray:
        """The ``(u,)`` dual offset arena (slot order)."""
        return self._offsets

    @property
    def dual_dimensions(self) -> int:
        """Dimensionality of the dual domain (``d - 1``)."""
        return self._dual_dims

    @property
    def arrangement(self) -> Optional[Arrangement2D]:
        """The two-dimensional arrangement, when applicable."""
        return self._arrangement

    # ------------------------------------------------------------------
    def values_at(self, x: Sequence[float]) -> np.ndarray:
        """Dual values ``f_k(x)`` of every hyperplane (vectorised)."""
        xa = np.asarray(x, dtype=float)
        if self.num_hyperplanes == 0:
            return np.empty(0, dtype=float)
        if xa.shape != (self._dual_dims,):
            raise DimensionMismatchError(
                "evaluation point dimensionality does not match the index"
            )
        return self._coefficients @ xa - self._offsets

    def initial_state(
        self, box: Box, alive: Optional[np.ndarray] = None
    ) -> OrderVectorState:
        """Return the order-vector state at the reference corner of ``box``.

        The reference corner is ``box.highs`` — in primal terms the weight
        vector built from the *lower* ratio bounds, matching the ``-l`` end
        the two-dimensional algorithm starts from.

        ``alive`` (dynamic indexes only) restricts the *dominator side* of
        the counts to the alive slots: ``counts[k]`` becomes the number of
        alive hyperplanes strictly closer to ``x_d = 0`` than slot ``k``.
        Values are still produced for every slot (dead slots' counts are
        meaningless and must be masked by the caller).
        """
        if self.num_hyperplanes == 0:
            return OrderVectorState(
                counts=np.empty(0, dtype=np.intp),
                values=np.empty(0, dtype=float),
                reference=np.asarray(box.highs, dtype=float),
                slopes=None,
            )
        if box.dimensions != self._dual_dims:
            raise DimensionMismatchError(
                "query box dimensionality does not match the index"
            )
        reference = np.asarray(box.highs, dtype=float)
        values = self.values_at(reference)
        if self._arrangement is not None and alive is None:
            counts = self._arrangement.order_vector_at(float(reference[0]))
            slopes = self._coefficients[:, 0].copy()
        else:
            dominator_values = values if alive is None else values[alive]
            sorted_values = np.sort(dominator_values)
            counts = (
                dominator_values.size
                - np.searchsorted(sorted_values, values, side="right")
            ).astype(np.intp)
            slopes = None
        return OrderVectorState(
            counts=counts.astype(np.intp),
            values=values,
            reference=reference,
            slopes=slopes,
        )

    def initial_states(
        self, boxes: Sequence[Box], alive: Optional[np.ndarray] = None
    ) -> List[OrderVectorState]:
        """Order-vector states of many query boxes, sharing the hot work.

        Positionally parallel — and identical, per box — to calling
        :meth:`initial_state` on each box.  All reference-corner dual values
        come from ONE stacked GEMM (``refs @ coefficients.T``); the
        two-dimensional arrangement serves every query's order vector
        through one batched interval lookup
        (:meth:`~repro.geometry.arrangement2d.Arrangement2D.order_vectors_at`).

        The stacked GEMM may round final digits differently from the
        per-query matrix-vector product, so ``values`` can differ from the
        one-box path in the last ulp; exact ties (identical hyperplanes)
        evaluate identically on both paths, so downstream dominance
        decisions only diverge for pairs whose dual values differ by less
        than one ulp — the same sub-ulp boundary already documented for the
        corner-score transform.
        """
        boxes = list(boxes)
        if not boxes:
            return []
        if self.num_hyperplanes == 0:
            return [self.initial_state(box) for box in boxes]
        for box in boxes:
            if box.dimensions != self._dual_dims:
                raise DimensionMismatchError(
                    "query box dimensionality does not match the index"
                )
        refs = np.stack([np.asarray(box.highs, dtype=float) for box in boxes])
        values = refs @ self._coefficients.T - self._offsets  # one GEMM
        if self._arrangement is not None and alive is None:
            all_counts = self._arrangement.order_vectors_at(refs[:, 0])
            slopes = self._coefficients[:, 0]
            return [
                OrderVectorState(
                    counts=all_counts[i].astype(np.intp),
                    values=values[i],
                    reference=refs[i],
                    slopes=slopes.copy(),
                )
                for i in range(len(boxes))
            ]
        dominator_values = values if alive is None else values[:, alive]
        sorted_values = np.sort(dominator_values, axis=1)
        states = []
        for i in range(len(boxes)):
            counts = (
                dominator_values.shape[1]
                - np.searchsorted(sorted_values[i], values[i], side="right")
            ).astype(np.intp)
            states.append(
                OrderVectorState(
                    counts=counts,
                    values=values[i],
                    reference=refs[i],
                    slopes=None,
                )
            )
        return states
