"""kNN substrate: scoring functions, linear-scan and kd-tree kNN, convex hull.

The eclipse operator generalises 1NN, so the reproduction ships the classic
query operators it is compared against in Section II-C:

* :func:`weighted_sum` / :func:`weighted_lp_score` — the scoring functions of
  Definition 1 (L1 by default, Lp per footnote 2 of the paper).
* :func:`knn` / :func:`nearest_neighbor` — linear-scan kNN under a weight
  vector.
* :class:`KDTree` — an exact kd-tree for unweighted/weighted Euclidean and
  Manhattan kNN, the standard index substrate for kNN workloads.
* :func:`convex_hull_indices` — the "convex hull query from the origin's
  view" of Section II-C: points that are the 1NN for *some* non-negative
  linear scoring function.
"""

from repro.knn.scoring import weighted_lp_score, weighted_lp_scores, weighted_sum, weighted_sums
from repro.knn.linear import knn, knn_indices, nearest_neighbor, nearest_neighbor_index
from repro.knn.kdtree import KDTree
from repro.knn.convex_hull import convex_hull_indices, is_convex_hull_point

__all__ = [
    "weighted_lp_score",
    "weighted_lp_scores",
    "weighted_sum",
    "weighted_sums",
    "knn",
    "knn_indices",
    "nearest_neighbor",
    "nearest_neighbor_index",
    "KDTree",
    "convex_hull_indices",
    "is_convex_hull_point",
]
