"""Convex-hull query "from the origin's view" (Section II-C).

The paper relates eclipse to the *convex hull query*: the points that are
the nearest neighbour for **some** non-negative linear scoring function.
Geometrically these are the points on the lower-left boundary of the convex
hull, i.e. the vertices of the hull facing the origin.  In the running
example of Figure 1 the convex-hull query returns ``{p1, p3}`` but not
``p4`` even though ``p4`` is a vertex of the full convex hull.

Membership test
---------------
A point ``p`` belongs to the origin-view hull when some weight vector
``w >= 0`` with ``Σ w = 1`` satisfies ``w · p <= w · q`` for every other
point ``q``.  That is a small linear-programming feasibility problem;
instead of requiring an LP solver, this implementation exploits linear-
programming duality in the contrapositive direction: ``p`` is *not* on the
origin-view hull exactly when, for every weight vector, some other point has
a strictly smaller score — which (for the finite candidate set) is decided
by sampling candidate weight vectors from the facet normals of score
differences.  Because a vertex of the lower hull is the unique minimiser for
the weights orthogonal to its supporting facet, the implementation checks
minimality over a dense grid of weight directions plus the exact facet
normals of every attribute pair, which is exact in two dimensions and a
tight approximation in higher dimensions (sufficient for the relationship
diagrams and examples it backs; the eclipse algorithms never depend on it).
"""

from __future__ import annotations

import itertools
from typing import List

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset

#: Number of sampled weight directions per dimension pair used in d > 2.
_SAMPLES_PER_PAIR = 64


def _candidate_weight_vectors(data: np.ndarray) -> np.ndarray:
    """Weight vectors under which hull membership is tested.

    Includes the axis directions, the uniform direction, and for every pair
    of attributes a sweep of directions in their coordinate plane.  In two
    dimensions the sweep includes the exact normal of every pair of points,
    making the test exact.
    """
    n, d = data.shape
    vectors: List[np.ndarray] = []
    # Near-axis directions: strictly positive weights so that a point tying on
    # one attribute but dominated on the others is never reported (keeping the
    # hull a subset of the skyline, as in Figure 4).
    eps = 1e-9
    for j in range(d):
        w = np.full(d, eps)
        w[j] = 1.0 - (d - 1) * eps
        vectors.append(w)
    vectors.append(np.full(d, 1.0 / d))
    if d == 2:
        # Exact: use the normals of all segments between distinct points.
        for i, j in itertools.combinations(range(n), 2):
            diff = data[j] - data[i]
            normal = np.array([-diff[1], diff[0]])
            for candidate in (normal, -normal):
                # Strictly positive components only: zero-weight directions
                # would let dominated points tie the minimum (the axis-aligned
                # cases are already covered by the perturbed axis vectors).
                if np.all(candidate > 0):
                    vectors.append(candidate / candidate.sum())
        # Also perturbed axis directions so vertices optimal only for
        # near-axis weights are detected.
        for eps in (1e-6, 1e-3):
            vectors.append(np.array([1.0 - eps, eps]))
            vectors.append(np.array([eps, 1.0 - eps]))
    else:
        # Strictly interior sweep values: the endpoints would put an exact
        # zero weight on one attribute and admit dominated points again.
        ts = np.linspace(0.0, 1.0, _SAMPLES_PER_PAIR + 2)[1:-1]
        for i, j in itertools.combinations(range(d), 2):
            for t in ts:
                w = np.full(d, eps)
                w[i] = t
                w[j] = 1.0 - t
                vectors.append(w / w.sum())
    return np.array(vectors, dtype=float)


def convex_hull_indices(points: ArrayLike2D) -> IndexArray:
    """Indices of the points on the origin-view convex hull.

    A point is reported when it attains the minimum weighted score for at
    least one of the candidate weight vectors (see the module docstring for
    the exactness discussion).
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if n == 1:
        return np.array([0], dtype=np.intp)
    vectors = _candidate_weight_vectors(data)
    scores = data @ vectors.T  # (n, num_vectors)
    minima = scores.min(axis=0)
    # Exact equality: the minimum is itself one of the score values, and any
    # tolerance would let near-duplicate dominated points sneak in.
    on_hull = np.any(scores == minima, axis=1)
    return np.flatnonzero(on_hull).astype(np.intp)


def is_convex_hull_point(points: ArrayLike2D, index: int) -> bool:
    """Return ``True`` when the point at ``index`` lies on the origin-view hull."""
    return int(index) in set(convex_hull_indices(points).tolist())
