"""Exact kd-tree for weighted Minkowski kNN queries.

A classic median-split kd-tree.  It serves two purposes in the reproduction:

* it is the standard index substrate a database system would use for the
  plain kNN operator the paper generalises, so examples can contrast
  "kNN with an index" against "eclipse with an index";
* it provides an independent implementation to cross-validate the
  linear-scan kNN in the test suite.

Distances are weighted Minkowski distances to an arbitrary query point
(defaulting to the origin, matching the paper's convention):
``dist(q, x) = (Σ_j w[j] |x[j] - q[j]|^p)^{1/p}``.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.errors import DimensionMismatchError, EmptyDatasetError, InvalidDatasetError

#: Number of points below which a node stays a leaf.
_LEAF_SIZE = 16


class _Node:
    """kd-tree node: either a leaf holding point indices or an internal split."""

    __slots__ = ("indices", "split_dim", "split_value", "left", "right", "lows", "highs")

    def __init__(
        self,
        indices: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
    ):
        self.indices = indices
        self.split_dim = -1
        self.split_value = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.lows = lows
        self.highs = highs

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class KDTree:
    """Median-split kd-tree supporting exact k-nearest-neighbour queries."""

    def __init__(self, points: ArrayLike2D, leaf_size: int = _LEAF_SIZE):
        data = as_dataset(points)
        if data.shape[0] == 0:
            raise EmptyDatasetError("KDTree requires a non-empty dataset")
        if leaf_size < 1:
            raise InvalidDatasetError("leaf_size must be at least 1")
        self._data = data
        self._leaf_size = int(leaf_size)
        indices = np.arange(data.shape[0], dtype=np.intp)
        self._root = self._build(indices)

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        """Number of indexed points."""
        return int(self._data.shape[0])

    @property
    def dimensions(self) -> int:
        """Dimensionality of the indexed points."""
        return int(self._data.shape[1])

    # ------------------------------------------------------------------
    def query(
        self,
        query_point: Optional[Sequence[float]] = None,
        k: int = 1,
        weights: Optional[Sequence[float]] = None,
        p: float = 2.0,
    ) -> Tuple[np.ndarray, IndexArray]:
        """Return ``(distances, indices)`` of the ``k`` nearest points.

        Parameters
        ----------
        query_point:
            Query location; defaults to the origin.
        k:
            Number of neighbours (capped at the dataset size).
        weights:
            Optional per-attribute weights (default: all ones).
        p:
            Minkowski exponent (``2`` = Euclidean, ``1`` = Manhattan).
        """
        if k < 1:
            raise InvalidDatasetError("k must be at least 1")
        if p < 1:
            raise InvalidDatasetError("the Minkowski exponent must satisfy p >= 1")
        d = self.dimensions
        q = (
            np.zeros(d, dtype=float)
            if query_point is None
            else np.asarray(query_point, dtype=float)
        )
        if q.shape != (d,):
            raise DimensionMismatchError("query point dimensionality differs from the tree")
        w = (
            np.ones(d, dtype=float)
            if weights is None
            else np.asarray(weights, dtype=float)
        )
        if w.shape != (d,):
            raise DimensionMismatchError("weight vector dimensionality differs from the tree")
        if np.any(w < 0):
            raise InvalidDatasetError("weights must be non-negative")

        k = min(k, self.num_points)
        # Max-heap of (-distance^p, index) keeping the best k found so far.
        heap: List[Tuple[float, int]] = []
        self._search(self._root, q, w, p, k, heap)
        best = sorted(((-neg, idx) for neg, idx in heap))
        distances = np.array([b[0] ** (1.0 / p) for b in best], dtype=float)
        indices = np.array([b[1] for b in best], dtype=np.intp)
        return distances, indices

    # ------------------------------------------------------------------
    def _build(self, indices: np.ndarray) -> _Node:
        subset = self._data[indices]
        node = _Node(indices, subset.min(axis=0), subset.max(axis=0))
        if indices.size <= self._leaf_size:
            return node
        spreads = node.highs - node.lows
        split_dim = int(np.argmax(spreads))
        if spreads[split_dim] <= 0:
            return node  # all points identical: keep as a leaf
        values = self._data[indices, split_dim]
        split_value = float(np.median(values))
        left_mask = values <= split_value
        if left_mask.all() or not left_mask.any():
            # Median equals the maximum (heavily duplicated values): split by
            # strict comparison instead to guarantee progress.
            left_mask = values < split_value
            if not left_mask.any():
                return node
        node.split_dim = split_dim
        node.split_value = split_value
        node.left = self._build(indices[left_mask])
        node.right = self._build(indices[~left_mask])
        node.indices = np.empty(0, dtype=np.intp)
        return node

    def _search(
        self,
        node: _Node,
        q: np.ndarray,
        w: np.ndarray,
        p: float,
        k: int,
        heap: List[Tuple[float, int]],
    ) -> None:
        if len(heap) == k and self._box_distance(node, q, w, p) > -heap[0][0]:
            return
        if node.is_leaf:
            for idx in node.indices:
                dist = float(np.sum(w * np.abs(self._data[idx] - q) ** p))
                if len(heap) < k:
                    heapq.heappush(heap, (-dist, int(idx)))
                elif dist < -heap[0][0]:
                    heapq.heapreplace(heap, (-dist, int(idx)))
            return
        # Visit the child containing the query point first.
        if q[node.split_dim] <= node.split_value:
            first, second = node.left, node.right
        else:
            first, second = node.right, node.left
        self._search(first, q, w, p, k, heap)
        self._search(second, q, w, p, k, heap)

    @staticmethod
    def _box_distance(node: _Node, q: np.ndarray, w: np.ndarray, p: float) -> float:
        """Lower bound on the weighted distance^p from ``q`` to the node's box."""
        clipped = np.clip(q, node.lows, node.highs)
        return float(np.sum(w * np.abs(clipped - q) ** p))
