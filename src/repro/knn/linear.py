"""Linear-scan kNN under a weighted scoring function.

The simplest possible kNN substrate: score every point and keep the ``k``
smallest scores.  Ties on the score are broken by dataset position so
results are deterministic.  This is the reference implementation the kd-tree
is validated against and the "1NN" end of the eclipse spectrum.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.errors import EmptyDatasetError, InvalidDatasetError
from repro.knn.scoring import weighted_lp_scores, weighted_sums


def knn_indices(
    points: ArrayLike2D,
    weights: Sequence[float],
    k: int = 1,
    p: float = 1.0,
) -> IndexArray:
    """Return the indices of the ``k`` points with the smallest scores.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)``; the query point is the origin.
    weights:
        Attribute weight vector ``w``.
    k:
        Number of neighbours to return (capped at ``n``).
    p:
        Lp exponent of the scoring function (``1`` = weighted sum).
    """
    if k < 1:
        raise InvalidDatasetError("k must be at least 1")
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        raise EmptyDatasetError("kNN requires a non-empty dataset")
    if p == 1.0:
        point_scores = weighted_sums(data, weights)
    else:
        point_scores = weighted_lp_scores(data, weights, p=p)
    k = min(k, n)
    order = np.lexsort((np.arange(n), point_scores))
    return order[:k].astype(np.intp)


def knn(
    points: ArrayLike2D,
    weights: Sequence[float],
    k: int = 1,
    p: float = 1.0,
) -> np.ndarray:
    """Return the ``k`` nearest points (rows) under the weighted score."""
    data = as_dataset(points)
    return data[knn_indices(data, weights, k=k, p=p)]


def nearest_neighbor_index(
    points: ArrayLike2D, weights: Sequence[float], p: float = 1.0
) -> int:
    """Index of the single nearest neighbour (the 1NN of Definition 1)."""
    return int(knn_indices(points, weights, k=1, p=p)[0])


def nearest_neighbor(
    points: ArrayLike2D, weights: Sequence[float], p: float = 1.0
) -> np.ndarray:
    """The single nearest neighbour point (row) under the weighted score."""
    data = as_dataset(points)
    return data[nearest_neighbor_index(data, weights, p=p)]
