"""Scoring functions for kNN-style queries.

The paper scores points with the weighted L1 sum
``S(p) = Σ_j w[j] p[j]`` (the query point is the origin) and notes in
footnote 2 that the algorithms extend to weighted Lp scores
``(Σ_j w[j] p[j]^p)^{1/p}`` because the ``1/p`` exponent does not change the
ranking.  Both families are provided here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._types import ArrayLike2D, PointLike
from repro.core.dominance import as_dataset, as_point
from repro.errors import DimensionMismatchError, InvalidDatasetError


def weighted_sum(point: PointLike, weights: Sequence[float]) -> float:
    """Weighted L1 score ``S(p) = Σ_j w[j] p[j]`` of a single point."""
    p = as_point(point)
    w = np.asarray(weights, dtype=float)
    if p.shape != w.shape:
        raise DimensionMismatchError("point and weight vector dimensionality differ")
    return float(p @ w)


def weighted_sums(points: ArrayLike2D, weights: Sequence[float]) -> np.ndarray:
    """Weighted L1 scores of every point of a dataset."""
    data = as_dataset(points)
    w = np.asarray(weights, dtype=float)
    if data.shape[0] == 0:
        return np.empty(0, dtype=float)
    if data.shape[1] != w.size:
        raise DimensionMismatchError("dataset and weight vector dimensionality differ")
    return data @ w


def weighted_lp_score(
    point: PointLike, weights: Sequence[float], p: float = 1.0
) -> float:
    """Weighted Lp score ``(Σ_j w[j] |p[j]|^p)^{1/p}`` of a single point.

    ``p = 1`` recovers :func:`weighted_sum` for non-negative attributes.
    """
    if p < 1:
        raise InvalidDatasetError("the Lp exponent must satisfy p >= 1")
    pa = as_point(point)
    w = np.asarray(weights, dtype=float)
    if pa.shape != w.shape:
        raise DimensionMismatchError("point and weight vector dimensionality differ")
    return float(np.power(np.sum(w * np.power(np.abs(pa), p)), 1.0 / p))


def weighted_lp_scores(
    points: ArrayLike2D, weights: Sequence[float], p: float = 1.0
) -> np.ndarray:
    """Weighted Lp scores of every point of a dataset."""
    if p < 1:
        raise InvalidDatasetError("the Lp exponent must satisfy p >= 1")
    data = as_dataset(points)
    w = np.asarray(weights, dtype=float)
    if data.shape[0] == 0:
        return np.empty(0, dtype=float)
    if data.shape[1] != w.size:
        raise DimensionMismatchError("dataset and weight vector dimensionality differ")
    return np.power(np.sum(w * np.power(np.abs(data), p), axis=1), 1.0 / p)
