"""Performance helpers shared by the vectorised hot paths.

The dominance kernels in :mod:`repro.skyline.kernels` broadcast
``(B, k, d)`` comparisons; this package owns the memory-budget arithmetic
that picks the block size ``B`` (:func:`resolve_block_size`,
:func:`iter_blocks`) and the amortised-growth buffer
(:class:`GrowableBuffer`) used by the block algorithms to maintain their
confirmed-skyline windows as contiguous arrays.
"""

from repro.perf.blocking import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_MEMORY_CAP_BYTES,
    GrowableBuffer,
    iter_blocks,
    memory_cap_bytes,
    resolve_block_size,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_MEMORY_CAP_BYTES",
    "GrowableBuffer",
    "iter_blocks",
    "memory_cap_bytes",
    "resolve_block_size",
]
