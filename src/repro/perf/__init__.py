"""Performance helpers shared by the vectorised hot paths.

The dominance kernels in :mod:`repro.skyline.kernels` broadcast
``(B, k, d)`` comparisons; this package owns the memory-budget arithmetic
that picks the block size ``B`` (:func:`resolve_block_size`,
:func:`iter_blocks`) and the amortised-growth buffer
(:class:`GrowableBuffer`) used by the block algorithms to maintain their
confirmed-skyline windows as contiguous arrays.

:mod:`repro.perf.arena` owns the general-purpose capacity-doubling arena
(:class:`GrowableArena`) behind every dynamically maintained index store.

:mod:`repro.perf.executor` owns the shared worker-thread kernel executor:
it dispatches the block ranges of :func:`iter_blocks` across a thread pool
(:func:`run_tasks`, :func:`map_blocks`, :func:`parallel_matmul`), resolves
the ``threads``/``dtype`` knobs through the ambient :func:`kernel_context`
or the ``REPRO_KERNEL_THREADS`` environment variable, and divides the
memory cap across workers (:func:`split_memory_cap`).

:mod:`repro.perf.shm` owns the shared-memory segment pool behind the
executor's ``"process"`` backend (:class:`SharedArrayPool`): recycled
``multiprocessing.shared_memory`` segments that carry kernel inputs and
outputs to pool workers zero-copy, with every loaned byte tracked and
unlinked on reset — no leaked ``/dev/shm`` entries.

:mod:`repro.perf.advisor` owns the workload-adaptive index advisor
(:class:`IndexAdvisor`): budgeted build/keep/evict decisions over the
session's index cache, driven by exact arena ``nbytes`` accounting and the
memoised what-if estimator (:class:`WhatIfCostModel`) over the planner's
cost model, with the budget resolved through ``REPRO_INDEX_BUDGET_MB``.
"""

from repro.perf.advisor import (
    DEFAULT_MIN_COST_IMPROVEMENT,
    IndexAdvisor,
    WhatIfCostModel,
    index_budget_from_env,
    resolve_index_budget,
    validate_index_budget,
)
from repro.perf.arena import GrowableArena
from repro.perf.blocking import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_MEMORY_CAP_BYTES,
    GrowableBuffer,
    iter_blocks,
    memory_cap_bytes,
    resolve_block_size,
)
from repro.perf.executor import (
    MAX_THREADS,
    MIN_PROCESS_DISPATCH_BYTES,
    VALID_BACKENDS,
    VALID_DTYPES,
    ShmKernel,
    kernel_context,
    map_blocks,
    parallel_block_size,
    parallel_matmul,
    resolve_backend,
    resolve_dtype,
    resolve_threads,
    run_tasks,
    shutdown_process_pools,
    split_memory_cap,
    validate_backend,
)
from repro.perf.shm import (
    SharedArrayPool,
    global_pool,
    reset_global_pool,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_MEMORY_CAP_BYTES",
    "DEFAULT_MIN_COST_IMPROVEMENT",
    "GrowableArena",
    "GrowableBuffer",
    "IndexAdvisor",
    "MAX_THREADS",
    "MIN_PROCESS_DISPATCH_BYTES",
    "SharedArrayPool",
    "ShmKernel",
    "VALID_BACKENDS",
    "VALID_DTYPES",
    "WhatIfCostModel",
    "global_pool",
    "index_budget_from_env",
    "resolve_index_budget",
    "validate_index_budget",
    "iter_blocks",
    "kernel_context",
    "map_blocks",
    "memory_cap_bytes",
    "parallel_block_size",
    "parallel_matmul",
    "reset_global_pool",
    "resolve_backend",
    "resolve_block_size",
    "resolve_dtype",
    "resolve_threads",
    "run_tasks",
    "shutdown_process_pools",
    "split_memory_cap",
    "validate_backend",
]
