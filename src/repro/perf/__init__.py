"""Performance helpers shared by the vectorised hot paths.

The dominance kernels in :mod:`repro.skyline.kernels` broadcast
``(B, k, d)`` comparisons; this package owns the memory-budget arithmetic
that picks the block size ``B`` (:func:`resolve_block_size`,
:func:`iter_blocks`) and the amortised-growth buffer
(:class:`GrowableBuffer`) used by the block algorithms to maintain their
confirmed-skyline windows as contiguous arrays.

:mod:`repro.perf.arena` owns the general-purpose capacity-doubling arena
(:class:`GrowableArena`) behind every dynamically maintained index store.
"""

from repro.perf.arena import GrowableArena
from repro.perf.blocking import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_MEMORY_CAP_BYTES,
    GrowableBuffer,
    iter_blocks,
    memory_cap_bytes,
    resolve_block_size,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_MEMORY_CAP_BYTES",
    "GrowableArena",
    "GrowableBuffer",
    "iter_blocks",
    "memory_cap_bytes",
    "resolve_block_size",
]
