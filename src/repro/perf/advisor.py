"""Workload-adaptive index advisor: budgeted build/keep/evict decisions.

A :class:`~repro.core.session.DatasetSession` memoises one
:class:`~repro.index.eclipse_index.EclipseIndex` per *full* parameter set and
builds each eagerly on first use, so the cache grows without bound — at
millions of users / parameter sets that is the scaling wall named in the
roadmap.  :class:`IndexAdvisor` closes it: an online policy that observes the
session's query/update stream and decides, per cache key, whether to

* **build** an index now (greedy admission: only when the projected saving
  over the best index-free method clears :data:`DEFAULT_MIN_COST_IMPROVEMENT`
  *and* the projected bytes fit the budget, possibly by evicting resident
  indexes with a lower benefit-per-byte — the Extend heuristic's budgeted
  selection rule),
* **keep** it resident (its decayed realised savings keep its
  benefit-per-byte above the eviction line),
* **delta-patch** it on updates (the :func:`~repro.core.plan.plan_update`
  cost arm, reached through the memoised what-if wrapper below), or
* **evict** it — the lowest benefit-per-byte resident goes first whenever
  the exact resident footprint (arena ``nbytes`` rollups, headroom included)
  exceeds the byte budget.

Correctness never rides on any of these decisions: an evicted index is
simply rebuilt (or the planner falls back to the transformation) on next
use, so answers stay byte-identical whatever the advisor does.

The budget resolves like every other kernel knob (explicit argument, then
the ``REPRO_INDEX_BUDGET_MB`` environment variable, then unbounded), and a
misconfigured environment value warns via :class:`RuntimeWarning` instead of
failing silently, matching ``REPRO_KERNEL_THREADS``.

:class:`WhatIfCostModel` is the advisor's estimator: a memoised wrapper
around :func:`~repro.core.plan.plan_query` / :func:`~repro.core.plan.plan_update`
with ``cost_requests`` / ``cache_hits`` counters, the cost-evaluation cache
pattern of the Index_EAB tooling.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.plan import (
    INDEX_METHODS,
    QueryPlan,
    UpdatePlan,
    expected_skyline_size,
    plan_query,
    plan_update,
)

#: Relative cost-improvement an index must project over the best index-free
#: method before the advisor admits its build under a budget (the Extend
#: heuristic's ``min_cost_improvement`` gate; its reference value is 1.003).
DEFAULT_MIN_COST_IMPROVEMENT = 1.003

#: Per-tick decay of a ledger entry's accumulated benefit.  One tick is one
#: advisor event (an index access, build, or update batch), so benefit is
#: recency- *and* frequency-weighted: an index accessed every tick keeps
#: adding fresh savings faster than the old ones decay, an idle one only
#: decays.
BENEFIT_DECAY = 0.95

#: Nominal resident bytes charged per memoised degenerate-build failure.
#: The exception objects are tiny, but charging them keeps the failure cache
#: under the same ledger (and therefore bounded) instead of growing without
#: bound per doomed parameter set.
FAILURE_ENTRY_BYTES = 512

#: Environment variable holding the index byte budget in MiB.
_BUDGET_ENV = "REPRO_INDEX_BUDGET_MB"

#: Bound on the what-if memo and the benefit ledger so the advisor itself
#: can never become the unbounded cache it exists to prevent.
_WHATIF_CACHE_LIMIT = 4096
_LEDGER_LIMIT = 1024

_MISS = object()


def index_budget_from_env() -> Optional[int]:
    """Read ``REPRO_INDEX_BUDGET_MB``, warning on misconfiguration.

    Returns the budget in bytes, or ``None`` (unbounded) when the variable
    is unset, unparseable, or non-positive.  Misconfigured values warn via
    :class:`RuntimeWarning` instead of failing silently, matching the
    ``REPRO_KERNEL_THREADS`` convention.
    """
    env = os.environ.get(_BUDGET_ENV)
    if not env:
        return None
    try:
        budget_mb = float(env)
    except ValueError:
        warnings.warn(
            f"ignoring unparseable {_BUDGET_ENV}={env!r} (expected a "
            f"positive number of MiB); index memory stays unbounded",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    if budget_mb <= 0:
        warnings.warn(
            f"ignoring non-positive {_BUDGET_ENV}={env!r}; "
            f"index memory stays unbounded",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return int(budget_mb * 1024 * 1024)


def validate_index_budget(budget_bytes: Optional[int]) -> Optional[int]:
    """Validate an explicit byte budget (``None`` = defer to environment)."""
    if budget_bytes is None:
        return None
    budget = int(budget_bytes)
    if budget <= 0:
        raise ValueError(
            f"index_budget_bytes must be a positive byte count, got {budget_bytes!r}"
        )
    return budget


def resolve_index_budget(budget_bytes: Optional[int] = None) -> Optional[int]:
    """Effective budget: explicit argument, then environment, then unbounded."""
    if budget_bytes is not None:
        return validate_index_budget(budget_bytes)
    return index_budget_from_env()


def estimate_index_nbytes(num_skyline: float, dimensions: int) -> int:
    """Projected resident bytes of an index before it is built.

    Sizes the slot/alive arenas (per skyline point), the dual arenas (per
    point, ``d - 1`` coefficients + offset), and the ``O(u^2)`` pair arenas
    plus tree/sorted stores (per intersection pair), then doubles for the
    geometric arena headroom.  Used only for admission feasibility — once
    built, the exact ``nbytes()`` rollup replaces the estimate.
    """
    u = max(1.0, float(num_skyline))
    dual = max(1, int(dimensions) - 1)
    pairs = 0.5 * u * (u - 1.0)
    per_slot = 8 + 1 + 8 * dual + 8  # slot id, alive flag, dual coeffs, offset
    per_pair = 16 + 8 * dual + 8 + 16  # pair ids, coeffs, rhs, tree/sorted stores
    return int(2.0 * (u * per_slot + pairs * per_pair))


class WhatIfCostModel:
    """Memoised what-if estimator over the calibrated planner cost model.

    Every estimate the advisor (or its session) requests flows through
    here; repeated workload shapes hit the memo instead of recomputing the
    plan arithmetic.  ``cost_requests`` counts every request and
    ``cache_hits`` the ones served from the memo — the cost-evaluation
    counters of the Index_EAB template, surfaced through
    :class:`~repro.core.session.SessionStats`.
    """

    def __init__(self):
        self._cache: Dict[Tuple, object] = {}
        self.cost_requests = 0
        self.cache_hits = 0

    def _memoised(self, key: Tuple, compute):
        self.cost_requests += 1
        value = self._cache.get(key, _MISS)
        if value is not _MISS:
            self.cache_hits += 1
            return value
        value = compute()
        if len(self._cache) >= _WHATIF_CACHE_LIMIT:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = value
        return value

    def plan_query(
        self,
        num_points: int,
        dimensions: int,
        method: str = "auto",
        num_queries: int = 1,
        num_skyline: Optional[int] = None,
        threads: int = 1,
        backend: str = "thread",
    ) -> QueryPlan:
        """Memoised :func:`repro.core.plan.plan_query` (plans are frozen)."""
        key = (
            "query",
            num_points,
            dimensions,
            method,
            num_queries,
            num_skyline,
            threads,
            backend,
        )
        return self._memoised(
            key,
            lambda: plan_query(
                num_points,
                dimensions,
                method=method,
                num_queries=num_queries,
                num_skyline=num_skyline,
                threads=threads,
                backend=backend,
            ),
        )

    def plan_update(
        self,
        num_points: int,
        dimensions: int,
        num_inserts: int,
        num_deletes: int,
        num_skyline: Optional[int] = None,
        artifact: str = "skyline",
        index_backend: Optional[str] = None,
        dead_fraction: float = 0.0,
        num_pairs: Optional[int] = None,
        threads: int = 1,
        backend: str = "thread",
    ) -> UpdatePlan:
        """Memoised :func:`repro.core.plan.plan_update` (plans are frozen)."""
        key = (
            "update",
            num_points,
            dimensions,
            num_inserts,
            num_deletes,
            num_skyline,
            artifact,
            index_backend,
            dead_fraction,
            num_pairs,
            threads,
            backend,
        )
        return self._memoised(
            key,
            lambda: plan_update(
                num_points,
                dimensions,
                num_inserts,
                num_deletes,
                num_skyline=num_skyline,
                artifact=artifact,
                index_backend=index_backend,
                dead_fraction=dead_fraction,
                num_pairs=num_pairs,
                threads=threads,
                backend=backend,
            ),
        )


@dataclass
class LedgerEntry:
    """Benefit bookkeeping of one cache key (index or memoised failure).

    ``benefit`` holds the decayed accumulated savings in the planner's
    abstract cost units; ``clock`` is the advisor tick of the last credit,
    so the effective benefit at any later tick is
    ``benefit * BENEFIT_DECAY ** (now - clock)``.
    """

    benefit: float = 0.0
    hits: int = 0
    clock: int = 0
    nbytes: int = 0
    resident: bool = False
    kind: str = "index"

    def decayed(self, now: int) -> float:
        """Benefit discounted to tick ``now``."""
        age = max(0, now - self.clock)
        return self.benefit * (BENEFIT_DECAY ** age)

    def benefit_per_byte(self, now: int) -> float:
        """The eviction-ranking score (decayed benefit per resident byte)."""
        return self.decayed(now) / max(1, self.nbytes)


class IndexAdvisor:
    """Online budgeted build/keep/evict policy over a session's index cache.

    The advisor never touches the cache itself — it ranks and decides, and
    the session applies the verdicts — so it stays independently testable
    and the session stays the single owner of its artifacts.

    Parameters
    ----------
    budget_bytes:
        Resident byte budget for all cached indexes together (exact arena
        ``nbytes`` rollups, headroom included) plus the nominal footprint of
        memoised degenerate-build failures.  ``None`` defers to the
        ``REPRO_INDEX_BUDGET_MB`` environment variable; unset means
        unbounded — the pre-advisor behaviour.
    min_cost_improvement:
        Relative projected improvement an index build must clear before it
        is admitted under a budget (see
        :data:`DEFAULT_MIN_COST_IMPROVEMENT`).
    """

    def __init__(
        self,
        budget_bytes: Optional[int] = None,
        min_cost_improvement: float = DEFAULT_MIN_COST_IMPROVEMENT,
    ):
        self.budget_bytes = validate_index_budget(budget_bytes)
        self.min_cost_improvement = float(min_cost_improvement)
        self.cost_model = WhatIfCostModel()
        self._ledger: Dict[Tuple, LedgerEntry] = {}
        self._clock = 0
        #: Resident bytes after the last :meth:`enforce` call (indexes plus
        #: nominal failure entries).
        self.bytes_resident = 0
        self.builds_skipped = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Budget resolution
    # ------------------------------------------------------------------
    def effective_budget(self) -> Optional[int]:
        """The budget in force right now (argument beats environment)."""
        return resolve_index_budget(self.budget_bytes)

    # ------------------------------------------------------------------
    # Ledger events
    # ------------------------------------------------------------------
    def _entry(self, key: Tuple, kind: str = "index") -> LedgerEntry:
        entry = self._ledger.get(key)
        if entry is None:
            entry = LedgerEntry(clock=self._clock, kind=kind)
            self._ledger[key] = entry
        entry.kind = kind
        return entry

    def credit(self, key: Tuple, saving: float, nbytes: Optional[int] = None) -> None:
        """Record realised savings of one use of a cached (or built) index.

        The entry's benefit decays to the current tick, then the fresh
        saving is added — recency- and frequency-weighted bookkeeping in
        one rule.
        """
        self._clock += 1
        entry = self._entry(key)
        entry.benefit = entry.decayed(self._clock) + max(0.0, float(saving))
        entry.clock = self._clock
        entry.hits += 1
        entry.resident = True
        if nbytes is not None:
            entry.nbytes = int(nbytes)
        self._prune_ledger()

    def on_built(self, key: Tuple, nbytes: int, build_cost: float = 0.0) -> None:
        """Register a freshly built index (benefit seeded with its build cost).

        Keeping a resident index saves exactly its rebuild on the next use,
        so the build-cost seed makes a just-built index worth its own
        construction until decay says otherwise.
        """
        self.credit(key, build_cost, nbytes=int(nbytes))

    def on_failure(self, key: Tuple) -> None:
        """Register one memoised degenerate-build failure under the ledger."""
        self._clock += 1
        entry = self._entry(key, kind="failure")
        entry.benefit = entry.decayed(self._clock) + 1.0
        entry.clock = self._clock
        entry.hits += 1
        entry.resident = True
        entry.nbytes = FAILURE_ENTRY_BYTES
        self._prune_ledger()

    def clear_failures(self) -> None:
        """Forget failure entries (the dataset changed under an update)."""
        for key in [k for k, e in self._ledger.items() if e.kind == "failure"]:
            del self._ledger[key]

    def _prune_ledger(self) -> None:
        if len(self._ledger) <= _LEDGER_LIMIT:
            return
        stale = sorted(
            (k for k, e in self._ledger.items() if not e.resident),
            key=lambda k: self._ledger[k].clock,
        )
        for key in stale[: len(self._ledger) - _LEDGER_LIMIT]:
            del self._ledger[key]

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def should_build(self, plan: QueryPlan, pinned: bool = False) -> bool:
        """Greedy admission of one index build under the budget.

        Unbounded sessions always build (the pre-advisor behaviour).  Under
        a budget the build is admitted only when (1) the projected total
        cost of the best index-free method, relative to the index's, clears
        ``min_cost_improvement``; (2) the projected index bytes fit the
        budget at all; and (3) the bytes can actually be made available —
        from free space plus residents whose decayed benefit-per-byte is
        lower than the newcomer's projected benefit-per-byte (the Extend
        rule: never displace a resident that earns its bytes better).

        ``pinned`` marks a build the caller *named* (``method="cutting"``
        rather than ``"auto"``, PR 9): the cost-improvement heuristic (1)
        is waived — an explicit preference is not second-guessed on
        projected speed — but the byte-feasibility checks (2) and (3)
        still apply, because a pinned method is a preference, not a
        licence to blow the byte budget.
        """
        budget = self.effective_budget()
        if budget is None:
            return True
        if plan.method not in INDEX_METHODS:
            return True
        queries = max(1, plan.num_queries)
        index_total = plan.estimate_for(plan.method).total(queries)
        best_alternative = plan.best_alternative_cost(queries)
        if best_alternative is None:
            return True
        if not pinned:
            ratio = plan.index_improvement_ratio(queries)
            if ratio is None or ratio < self.min_cost_improvement:
                self.builds_skipped += 1
                return False
        num_skyline = (
            plan.num_skyline
            if plan.num_skyline is not None
            else expected_skyline_size(plan.num_points, plan.dimensions)
        )
        projected_bytes = estimate_index_nbytes(num_skyline, plan.dimensions)
        if projected_bytes > budget:
            self.builds_skipped += 1
            return False
        resident = [
            (entry.benefit_per_byte(self._clock), entry.nbytes)
            for entry in self._ledger.values()
            if entry.resident
        ]
        free = budget - sum(nbytes for _, nbytes in resident)
        if projected_bytes <= free:
            return True
        newcomer_per_byte = max(0.0, best_alternative - index_total) / max(
            1, projected_bytes
        )
        for per_byte, nbytes in sorted(resident):
            if per_byte >= newcomer_per_byte:
                break
            free += nbytes
            if projected_bytes <= free:
                return True
        self.builds_skipped += 1
        return False

    def enforce(self, index_sizes: Dict[Tuple, int]) -> List[Tuple]:
        """Reconcile the ledger with the live cache and pick evictions.

        ``index_sizes`` maps every *currently cached* index key to its exact
        resident bytes; ledger entries absent from it are marked
        non-resident (the session dropped them for its own reasons).
        Returns the keys to evict — lowest decayed benefit-per-byte first —
        until the resident total fits the effective budget.  The caller
        removes them from its caches; nothing is mutated here beyond the
        ledger's resident flags.
        """
        for key, nbytes in index_sizes.items():
            entry = self._entry(key)
            entry.resident = True
            entry.nbytes = int(nbytes)
        for key, entry in self._ledger.items():
            if entry.kind == "index" and key not in index_sizes:
                entry.resident = False
        total = sum(
            entry.nbytes for entry in self._ledger.values() if entry.resident
        )
        budget = self.effective_budget()
        evicted: List[Tuple] = []
        if budget is not None and total > budget:
            ranked = sorted(
                (k for k, e in self._ledger.items() if e.resident),
                key=lambda k: (
                    self._ledger[k].benefit_per_byte(self._clock),
                    self._ledger[k].clock,
                ),
            )
            for key in ranked:
                if total <= budget:
                    break
                entry = self._ledger[key]
                entry.resident = False
                total -= entry.nbytes
                evicted.append(key)
                self.evictions += 1
        self.bytes_resident = total
        return evicted


__all__ = [
    "BENEFIT_DECAY",
    "DEFAULT_MIN_COST_IMPROVEMENT",
    "FAILURE_ENTRY_BYTES",
    "IndexAdvisor",
    "LedgerEntry",
    "WhatIfCostModel",
    "estimate_index_nbytes",
    "index_budget_from_env",
    "resolve_index_budget",
    "validate_index_budget",
]
