"""Capacity-doubling append arenas for the dynamic-core stores.

Every dynamically maintained store of the index stack — the hyperplane-slot
arrays of :class:`~repro.index.eclipse_index.EclipseIndex`, the dual arenas
of :class:`~repro.index.order_vector.OrderVectorIndex`, the ``O(u^2)`` pair
arenas and sorted crossing arrays of
:class:`~repro.index.intersection.IntersectionIndex`, and the CSR node/item
stores of :class:`~repro.geometry.flattree.FlatTree` — used to absorb each
update batch by re-concatenating the *whole* array (``np.concatenate`` /
``np.insert`` allocate a fresh array and copy every untouched row).  On a
sustained update stream that is an ``O(rows)`` memcpy per batch, i.e.
quadratic in stream length whenever the arenas grow.

:class:`GrowableArena` replaces those concatenations with amortised
``O(1)``-per-row appends: the buffer pre-allocates geometric headroom
(:data:`GROWTH_FACTOR`), appends write into spare capacity, and a
valid-length marker distinguishes live rows from headroom.  Consumers read
through :attr:`GrowableArena.view`, which is always a zero-copy contiguous
prefix view — never cache it across appends, a growth reallocates the
backing buffer.

Setting :data:`GROWTH_FACTOR` to ``1.0`` pins every append to an exact-fit
reallocation — byte-for-byte the cost shape of the old concatenating path —
which is what the benchmark suite uses to measure the PR 5 arena engine
against its predecessor without keeping two code paths alive.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: Geometric growth factor of every arena.  Module-level (read at append
#: time, not construction time) so benchmarks and tests can pin it to 1.0 to
#: reproduce the pre-arena exact-fit reallocation behaviour.
GROWTH_FACTOR = 2.0

#: Arenas never start smaller than this many rows of capacity, so the first
#: few appends of a freshly built store don't each trigger a reallocation.
MIN_CAPACITY = 16


class GrowableArena:
    """Append-only array arena with geometric spare capacity.

    Wraps one ``numpy`` array of shape ``(capacity, *row_shape)`` plus a
    valid-length marker.  ``append`` is amortised ``O(rows appended)``;
    ``replace`` rewrites the valid prefix in place (the compaction
    primitive); ``insert`` scatter-merges sorted batches through a resident
    spare buffer (the sorted-backend primitive) without allocating.

    The arena object itself is the stable handle — the backing buffer is
    swapped on growth, so hold the arena, not a view.
    """

    __slots__ = ("_buf", "_len", "_spare", "grows")

    def __init__(self, initial: np.ndarray, capacity: Optional[int] = None):
        initial = np.asarray(initial)
        self._len = int(initial.shape[0])
        cap = max(self._len, MIN_CAPACITY if capacity is None else int(capacity))
        self._buf = np.empty((cap,) + initial.shape[1:], dtype=initial.dtype)
        self._buf[: self._len] = initial
        self._spare: Optional[np.ndarray] = None
        #: Number of buffer reallocations since construction (the
        #: amortisation counter surfaced as ``SessionStats.arena_grows``).
        self.grows = 0

    def __len__(self) -> int:
        return self._len

    # ------------------------------------------------------------------
    # Snapshot serialization (classes with __slots__ need explicit state
    # hooks).  Only the valid prefix travels: headroom is garbage bytes and
    # the resident spare buffer is a pure scratch optimisation, so a pickled
    # arena is as small as its live rows.  The grow counter is preserved —
    # a warm-restarted session keeps honest amortisation accounting.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {"rows": self._buf[: self._len].copy(), "grows": self.grows}

    def __setstate__(self, state) -> None:
        rows = state["rows"]
        self._len = int(rows.shape[0])
        cap = max(self._len, MIN_CAPACITY)
        self._buf = np.empty((cap,) + rows.shape[1:], dtype=rows.dtype)
        self._buf[: self._len] = rows
        self._spare = None
        self.grows = int(state["grows"])

    @property
    def view(self) -> np.ndarray:
        """Zero-copy view of the valid rows.  Stale after the next append."""
        return self._buf[: self._len]

    @property
    def capacity(self) -> int:
        """Allocated rows (valid prefix + headroom)."""
        return int(self._buf.shape[0])

    def nbytes(self) -> int:
        """Resident bytes of the arena, headroom and scratch included.

        This is the *allocated* footprint — full buffer capacity plus the
        resident spare buffer when one exists — not just the valid prefix,
        so budget accounting sees what the process actually holds.
        """
        total = int(self._buf.nbytes)
        if self._spare is not None:
            total += int(self._spare.nbytes)
        return total

    def _ensure(self, needed: int) -> None:
        if needed <= self._buf.shape[0]:
            return
        factor = max(1.0, float(GROWTH_FACTOR))
        cap = max(needed, int(math.ceil(self._buf.shape[0] * factor)))
        fresh = np.empty((cap,) + self._buf.shape[1:], dtype=self._buf.dtype)
        fresh[: self._len] = self._buf[: self._len]
        self._buf = fresh
        self._spare = None
        self.grows += 1

    def append(self, rows: np.ndarray) -> None:
        """Append ``rows`` into spare capacity (amortised ``O(len(rows))``)."""
        rows = np.asarray(rows, dtype=self._buf.dtype)
        extra = int(rows.shape[0])
        if extra == 0:
            return
        needed = self._len + extra
        self._ensure(needed)
        self._buf[self._len : needed] = rows
        self._len = needed

    def replace(self, rows: np.ndarray) -> None:
        """Rewrite the valid prefix with ``rows`` (compaction commit).

        Capacity is kept — a compacted arena retains its headroom so the
        stream that triggered the compaction keeps appending without an
        immediate regrow.
        """
        rows = np.asarray(rows, dtype=self._buf.dtype)
        count = int(rows.shape[0])
        self._ensure(count)
        self._buf[:count] = rows
        self._len = count

    def insert(self, positions: np.ndarray, values: np.ndarray) -> None:
        """Merge ``values`` into the valid prefix at sorted ``positions``.

        ``positions`` are insertion points into the *current* valid prefix
        (``np.searchsorted`` results, ascending); semantics match
        ``np.insert(view, positions, values)`` — each value lands *before*
        the element currently at its position, and equal positions keep the
        given value order.  The merge is one vectorised scatter through a
        resident spare buffer of the same capacity, so steady-state sorted
        maintenance allocates nothing.
        """
        values = np.asarray(values, dtype=self._buf.dtype)
        extra = int(values.shape[0])
        if extra == 0:
            return
        count = self._len
        self._ensure(count + extra)
        if self._spare is None or self._spare.shape[0] != self._buf.shape[0]:
            self._spare = np.empty_like(self._buf)
        positions = np.asarray(positions, dtype=np.intp)
        out = self._spare
        old = np.arange(count, dtype=np.intp)
        # Old element i shifts right by the number of insertions at
        # positions <= i (a value inserted exactly at i goes before it).
        out[old + np.searchsorted(positions, old, side="right")] = self._buf[:count]
        out[positions + np.arange(extra, dtype=np.intp)] = values
        self._spare = self._buf
        self._buf = out
        self._len = count + extra
