"""Memory-bounded blocking arithmetic for the broadcast dominance kernels.

A chunked kernel call compares a block of ``B`` candidates against ``k``
dominators over ``d`` attributes.  The broadcast materialises two boolean
scratch arrays of shape ``(B, k, d)`` (one for ``<=``, one for ``<``), so the
peak scratch footprint is roughly ``2 * B * k * d`` bytes.  The helpers here
turn a byte budget into a block size and iterate index ranges, so every hot
path shares one memory-cap policy instead of hard-coding block constants.

The budget defaults to :data:`DEFAULT_MEMORY_CAP_BYTES` and can be overridden
per call or globally through the ``REPRO_KERNEL_MEMORY_CAP_MB`` environment
variable.
"""

from __future__ import annotations

import os
import warnings
from typing import Iterator, Optional, Tuple

import numpy as np

#: Default scratch budget for one broadcasted comparison (64 MiB).
DEFAULT_MEMORY_CAP_BYTES: int = 64 * 1024 * 1024

#: Block size used by the block-oriented algorithms when the memory cap does
#: not force a smaller one.  ~512 candidates per screening round is the
#: block-processing sweet spot reported for BNL-family algorithms: large
#: enough to amortise Python/numpy call overhead, small enough that the
#: ``(B, k, d)`` scratch stays cache- and budget-friendly.
DEFAULT_BLOCK_SIZE: int = 512

#: Environment variable overriding the default memory cap (in MiB).
_MEMORY_CAP_ENV = "REPRO_KERNEL_MEMORY_CAP_MB"

#: Boolean scratch arrays materialised per broadcast (``<=`` and ``<``).
_SCRATCH_ARRAYS = 2


def memory_cap_bytes(memory_cap: Optional[int] = None) -> int:
    """Resolve the effective scratch budget in bytes.

    Precedence: explicit ``memory_cap`` argument, then the
    ``REPRO_KERNEL_MEMORY_CAP_MB`` environment variable, then
    :data:`DEFAULT_MEMORY_CAP_BYTES`.
    """
    if memory_cap is not None:
        if memory_cap <= 0:
            raise ValueError("memory_cap must be a positive byte count")
        return int(memory_cap)
    env = os.environ.get(_MEMORY_CAP_ENV)
    if env:
        try:
            cap_mb = float(env)
        except ValueError:
            warnings.warn(
                f"ignoring unparseable {_MEMORY_CAP_ENV}={env!r} "
                f"(expected a positive number of MiB); using the default "
                f"{DEFAULT_MEMORY_CAP_BYTES // (1024 * 1024)} MiB cap",
                RuntimeWarning,
                stacklevel=2,
            )
            cap_mb = 0.0
        else:
            if cap_mb <= 0:
                warnings.warn(
                    f"ignoring non-positive {_MEMORY_CAP_ENV}={env!r}; "
                    f"using the default "
                    f"{DEFAULT_MEMORY_CAP_BYTES // (1024 * 1024)} MiB cap",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if cap_mb > 0:
            return int(cap_mb * 1024 * 1024)
    return DEFAULT_MEMORY_CAP_BYTES


def resolve_block_size(
    num_dominators: int,
    dimensions: int,
    memory_cap: Optional[int] = None,
    preferred: int = DEFAULT_BLOCK_SIZE,
) -> int:
    """Largest candidate-block size whose broadcast scratch fits the budget.

    Parameters
    ----------
    num_dominators:
        Number of dominator rows ``k`` the block is compared against.
    dimensions:
        Attribute count ``d`` of the comparison space.
    memory_cap:
        Scratch budget in bytes; ``None`` uses :func:`memory_cap_bytes`.
    preferred:
        Upper bound on the block size even when the budget would allow more
        (keeps the scratch cache-resident on correlated data where ``k``
        stays tiny).
    """
    cap = memory_cap_bytes(memory_cap)
    per_candidate = max(1, num_dominators) * max(1, dimensions) * _SCRATCH_ARRAYS
    fitting = max(1, cap // per_candidate)
    return int(min(max(1, preferred), fitting))


def iter_blocks(total: int, block_size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` index ranges covering ``range(total)``."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    for start in range(0, total, block_size):
        yield start, min(start + block_size, total)


class GrowableBuffer:
    """An append-only 2-D float buffer with amortised O(1) row appends.

    The block algorithms keep their confirmed-skyline window as one
    contiguous ``(m, d)`` array so a whole candidate block can be screened
    against it in a single broadcast.  Appending row batches to a plain
    ``np.ndarray`` is quadratic; this buffer doubles its capacity instead,
    exactly like ``list`` but yielding a contiguous array view.
    """

    def __init__(self, dimensions: int, capacity: int = 64, track_sums: bool = False):
        self._rows = np.empty((max(1, capacity), dimensions), dtype=float)
        self._indices = np.empty(max(1, capacity), dtype=np.intp)
        self._sums = np.empty(max(1, capacity), dtype=float) if track_sums else None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def rows(self) -> np.ndarray:
        """Contiguous view of the stored rows (shape ``(len(self), d)``)."""
        return self._rows[: self._size]

    @property
    def indices(self) -> np.ndarray:
        """Contiguous view of the stored row indices."""
        return self._indices[: self._size]

    @property
    def sums(self) -> Optional[np.ndarray]:
        """Row sums of the stored rows (``None`` unless ``track_sums``).

        Kept alongside the rows so dominance kernels can reuse them for the
        sum-based strictness test instead of recomputing per call.
        """
        return None if self._sums is None else self._sums[: self._size]

    def nbytes(self) -> int:
        """Resident bytes of the buffer, allocated capacity included."""
        total = int(self._rows.nbytes) + int(self._indices.nbytes)
        if self._sums is not None:
            total += int(self._sums.nbytes)
        return total

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        if needed <= self._rows.shape[0]:
            return
        capacity = self._rows.shape[0]
        while capacity < needed:
            capacity *= 2
        rows = np.empty((capacity, self._rows.shape[1]), dtype=float)
        rows[: self._size] = self._rows[: self._size]
        indices = np.empty(capacity, dtype=np.intp)
        indices[: self._size] = self._indices[: self._size]
        self._rows = rows
        self._indices = indices
        if self._sums is not None:
            sums = np.empty(capacity, dtype=float)
            sums[: self._size] = self._sums[: self._size]
            self._sums = sums

    def append_batch(
        self,
        rows: np.ndarray,
        indices: np.ndarray,
        sums: Optional[np.ndarray] = None,
    ) -> None:
        """Append a batch of rows with their original dataset indices."""
        count = rows.shape[0]
        if count == 0:
            return
        self._reserve(count)
        self._rows[self._size : self._size + count] = rows
        self._indices[self._size : self._size + count] = indices
        if self._sums is not None:
            self._sums[self._size : self._size + count] = (
                rows.sum(axis=1) if sums is None else sums
            )
        self._size += count

    def keep(self, mask: np.ndarray) -> None:
        """Compact the buffer in place, keeping rows where ``mask`` is True.

        The boolean gather is materialised into a fresh array *before* the
        write-back: source and destination overlap inside the same buffer,
        and while numpy's fancy indexing happens to copy today, the
        compaction must not silently corrupt rows if that ever changes.
        """
        kept = int(np.count_nonzero(mask))
        if kept == self._size:
            return
        self._rows[:kept] = np.ascontiguousarray(self._rows[: self._size][mask])
        self._indices[:kept] = np.ascontiguousarray(
            self._indices[: self._size][mask]
        )
        if self._sums is not None:
            self._sums[:kept] = np.ascontiguousarray(
                self._sums[: self._size][mask]
            )
        self._size = kept
