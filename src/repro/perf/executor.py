"""The shared kernel executor: worker-thread dispatch for chunked kernels.

Every hot path already runs through the memory-capped chunked kernels of
:mod:`repro.perf.blocking` — the chunk boundaries produced by
:func:`~repro.perf.blocking.iter_blocks` are exactly the work units a
parallel executor needs.  This module dispatches those block ranges across
a shared worker-thread pool: numpy releases the GIL inside the broadcast
comparisons and GEMMs, so threads capture most of the multi-core win
without any IPC or pickling cost.

Four pieces:

* **Knob resolution** (:func:`resolve_threads` / :func:`resolve_backend`):
  explicit argument, then the ambient :func:`kernel_context`, then the
  ``REPRO_KERNEL_THREADS`` / ``REPRO_KERNEL_BACKEND`` environment
  variables, then the default (1 thread, the ``"thread"`` backend).
  ``threads=1`` is the contract-critical default — callers take the exact
  serial code path, no pool, no futures.
* **Dispatch** (:func:`run_tasks` / :func:`map_blocks` /
  :func:`parallel_matmul`): submit independent tasks to a cached
  :class:`~concurrent.futures.ThreadPoolExecutor` keyed by worker count
  and collect results in task order.  Workers write only to disjoint,
  caller-preallocated output slices, so results are byte-identical to the
  serial path regardless of completion order.  Pool threads are flagged so
  any kernel entered *from inside a worker* resolves to serial — nested
  parallelism (and the same-pool deadlock it invites) cannot happen.
* **The process backend** (``backend="process"`` + :class:`ShmKernel`): a
  cached, fork-safe :class:`~concurrent.futures.ProcessPoolExecutor`
  (forkserver where available) for kernels that do **not** release the
  GIL.  Callers describe the dispatch with a :class:`ShmKernel` — a
  module-level worker function plus named input/output arrays — and the
  executor copies the arrays once into pooled
  :mod:`multiprocessing.shared_memory` segments
  (:mod:`repro.perf.shm`); workers attach them zero-copy and write
  disjoint slices of the shared outputs, exactly like the thread workers.
  Dispatches whose work falls under :data:`MIN_PROCESS_DISPATCH_BYTES`
  stay serial (the serialization floor would dominate), and any process
  failure falls back to the inline serial path, so answers are
  byte-identical to serial execution in every case.  Process workers are
  flagged like thread workers: kernels entered inside one resolve to
  serial.
* **The kernel context** (:func:`kernel_context`): a thread-local carrying
  the ``(threads, dtype, backend, stats)`` knobs through deep call chains
  (session → skyline API → divide-and-conquer → ``dominated_mask``) that
  have no keyword path for them.  ``stats`` is any object with the
  executor telemetry counters (``SessionStats`` qualifies); all counter
  updates happen in the dispatching thread, never in workers, so the
  counters need no locking.

The memory budget **divides** across workers (it never multiplies): use
:func:`split_memory_cap` before :func:`~repro.perf.blocking.resolve_block_size`
so the sum of per-worker scratch stays within the one global cap.  The
shared-segment pool of the process backend is bounded by the same cap.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.blocking import iter_blocks, memory_cap_bytes

#: Environment variable naming the default worker-thread count.
_THREADS_ENV = "REPRO_KERNEL_THREADS"

#: Environment variable naming the default dispatch backend.
_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Dispatch backends.  ``"serial"`` forces the inline code path regardless
#: of ``threads``; ``"thread"`` (the default) is the PR 7 thread pool;
#: ``"process"`` dispatches :class:`ShmKernel` work to a shared-memory
#: process pool and falls back to threads for kernels without one.
VALID_BACKENDS = ("serial", "thread", "process")

#: Shared-payload (or work-hint) bytes below which a process dispatch runs
#: the exact inline serial path instead: measured dispatch overhead — the
#: export copies, task pickling, and result IPC — is ~1-4 ms per dispatch,
#: which only amortises once the kernel moves megabytes.
MIN_PROCESS_DISPATCH_BYTES = 1 << 20

#: Hard ceiling on the pool size — beyond this, dispatch overhead and
#: memory-bandwidth contention dwarf any remaining parallel gain.
MAX_THREADS = 64

#: Compute dtypes the kernels accept.  ``float32`` is the opt-in fast path:
#: compare in single precision, re-verify ambiguous (tied) rows exactly.
VALID_DTYPES = ("float64", "float32")

#: Row count below which :func:`parallel_matmul` stays serial — partitioning
#: a small GEMM costs more in dispatch than the multiply itself.
MIN_PARALLEL_GEMM_ROWS = 2048


# ----------------------------------------------------------------------
# Knob validation and resolution
# ----------------------------------------------------------------------
def validate_threads(threads: Optional[int]) -> Optional[int]:
    """Validate an explicit thread count; ``None`` means "resolve later"."""
    if threads is None:
        return None
    count = int(threads)
    if count < 1:
        raise ValueError(f"threads must be >= 1, got {threads!r}")
    return min(count, MAX_THREADS)


def validate_dtype(dtype: Optional[str]) -> Optional[str]:
    """Validate an explicit compute dtype; ``None`` means "resolve later"."""
    if dtype is None:
        return None
    if dtype not in VALID_DTYPES:
        raise ValueError(
            f"compute dtype must be one of {VALID_DTYPES}, got {dtype!r}"
        )
    return dtype


def validate_backend(backend: Optional[str]) -> Optional[str]:
    """Validate an explicit dispatch backend; ``None`` means "resolve later"."""
    if backend is None:
        return None
    if backend not in VALID_BACKENDS:
        raise ValueError(
            f"kernel backend must be one of {VALID_BACKENDS}, got {backend!r}"
        )
    return backend


class _KernelContext(threading.local):
    """Per-thread ambient knobs (see :func:`kernel_context`)."""

    def __init__(self):
        self.threads: Optional[int] = None
        self.dtype: Optional[str] = None
        self.backend: Optional[str] = None
        self.stats = None
        self.in_worker = False


_CTX = _KernelContext()


@contextmanager
def kernel_context(threads=None, dtype=None, stats=None, backend=None):
    """Install ambient executor knobs for the current thread.

    Kernels deep in the call stack (``dominated_mask`` under the skyline
    API, ``pairwise_intersection_arrays_from`` under an index build,
    ``FlatTree.query_many`` under a batched probe) resolve their ``threads``,
    ``dtype`` and ``backend`` from this context when no explicit argument
    reaches them.  ``None`` leaves the corresponding knob untouched, so
    nested contexts compose; the previous values are restored on exit.
    """
    prev = (_CTX.threads, _CTX.dtype, _CTX.stats, _CTX.backend)
    if threads is not None:
        _CTX.threads = validate_threads(threads)
    if dtype is not None:
        _CTX.dtype = validate_dtype(dtype)
    if stats is not None:
        _CTX.stats = stats
    if backend is not None:
        _CTX.backend = validate_backend(backend)
    try:
        yield
    finally:
        _CTX.threads, _CTX.dtype, _CTX.stats, _CTX.backend = prev


def resolve_threads(threads: Optional[int] = None) -> int:
    """Effective worker-thread count for one kernel call.

    Precedence: explicit argument, then the ambient :func:`kernel_context`,
    then the ``REPRO_KERNEL_THREADS`` environment variable, then 1.  Inside
    a pool worker the answer is always 1 (nested parallelism is refused —
    resubmitting to the same pool from one of its workers can deadlock).
    An unparseable or non-positive environment value warns and falls back
    instead of failing silently.
    """
    if threads is not None:
        return validate_threads(threads)
    if _CTX.in_worker:
        return 1
    if _CTX.threads is not None:
        return _CTX.threads
    env = os.environ.get(_THREADS_ENV)
    if env:
        try:
            count = int(env)
        except ValueError:
            warnings.warn(
                f"ignoring unparseable {_THREADS_ENV}={env!r} "
                f"(expected a positive integer); kernels run serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        if count < 1:
            warnings.warn(
                f"ignoring non-positive {_THREADS_ENV}={env!r}; "
                f"kernels run serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        return min(count, MAX_THREADS)
    return 1


def resolve_dtype(dtype: Optional[str] = None) -> str:
    """Effective compute dtype: explicit argument, then context, then float64."""
    if dtype is not None:
        return validate_dtype(dtype)
    return _CTX.dtype or "float64"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Effective dispatch backend for one kernel call.

    Precedence matches :func:`resolve_threads`: explicit argument, then the
    ambient :func:`kernel_context`, then the ``REPRO_KERNEL_BACKEND``
    environment variable, then ``"thread"``.  Inside a pool worker (thread
    *or* process) the answer is always ``"serial"`` — nested parallel
    dispatch is refused.  A misconfigured environment value warns via
    :class:`RuntimeWarning` and falls back to the thread backend instead of
    failing silently.
    """
    if backend is not None:
        return validate_backend(backend)
    if _CTX.in_worker:
        return "serial"
    if _CTX.backend is not None:
        return _CTX.backend
    env = os.environ.get(_BACKEND_ENV)
    if env:
        if env in VALID_BACKENDS:
            return env
        warnings.warn(
            f"ignoring unknown {_BACKEND_ENV}={env!r} "
            f"(expected one of {VALID_BACKENDS}); kernels use the thread "
            f"backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "thread"
    return "thread"


# ----------------------------------------------------------------------
# Telemetry (all updates happen in the dispatching thread)
# ----------------------------------------------------------------------
def note_parallel(chunks: int, threads: int) -> None:
    """Record one parallel dispatch on the ambient stats sink, if any."""
    stats = _CTX.stats
    if stats is not None:
        stats.parallel_chunks += int(chunks)
        stats.threads_used = max(stats.threads_used, int(threads))


def note_float32(fastpath_rows: int, fallback_rows: int) -> None:
    """Record float32 fast-path / exact-fallback row counts, if tracked."""
    stats = _CTX.stats
    if stats is not None:
        stats.float32_fastpath_hits += int(fastpath_rows)
        stats.float32_exact_fallbacks += int(fallback_rows)


def note_process(chunks: int, workers: int, shm_bytes: int) -> None:
    """Record one process-backend dispatch on the ambient stats sink, if any."""
    stats = _CTX.stats
    if stats is not None:
        stats.process_dispatches += 1
        stats.process_chunks += int(chunks)
        stats.threads_used = max(stats.threads_used, int(workers))
        stats.shm_peak_bytes = max(stats.shm_peak_bytes, int(shm_bytes))


# ----------------------------------------------------------------------
# The pools
# ----------------------------------------------------------------------
def _mark_worker() -> None:
    _CTX.in_worker = True


_POOLS: dict = {}
_PROCESS_POOLS: dict = {}
_POOL_LOCK = threading.Lock()


def _reset_pools_after_fork() -> None:
    # A forked child inherits executor objects whose worker threads (or
    # pool processes) do not exist on its side of the fork; submitting to
    # them would hang forever.  Drop both caches so the child lazily builds
    # fresh pools, and forget the shared-segment registry — the parent
    # still owns those segments, so the child must never unlink them
    # (repro.perf.shm registers its own hook too; forget() is idempotent).
    global _POOL_LOCK
    _POOLS.clear()
    _PROCESS_POOLS.clear()
    _POOL_LOCK = threading.Lock()
    shm = sys.modules.get("repro.perf.shm")
    if shm is not None:
        shm.forget_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def _pool(threads: int) -> ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads,
                thread_name_prefix=f"repro-kernel-{threads}",
                initializer=_mark_worker,
            )
            _POOLS[threads] = pool
        return pool


def _process_start_method() -> str:
    """Fork-safe start method: forkserver where available, else spawn.

    Plain ``fork`` is never used for the pool itself — the dispatching
    process runs worker threads (its own thread pool, service supervisors),
    and forking a multithreaded process can deadlock the child.  The
    forkserver forks from a single-threaded server process instead.
    """
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods:
        return "forkserver"
    return "spawn"  # pragma: no cover - non-POSIX fallback


def _process_pool(threads: int) -> ProcessPoolExecutor:
    with _POOL_LOCK:
        pool = _PROCESS_POOLS.get(threads)
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=threads,
                mp_context=multiprocessing.get_context(_process_start_method()),
                initializer=_mark_worker,
            )
            _PROCESS_POOLS[threads] = pool
        return pool


def _discard_process_pool(threads: int) -> None:
    """Drop (and best-effort shut down) one broken process pool."""
    with _POOL_LOCK:
        pool = _PROCESS_POOLS.pop(threads, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_process_pools() -> None:
    """Shut down every cached process pool and unlink pooled segments.

    Test and teardown hygiene — dispatch recreates pools lazily, so calling
    this at any quiet point is always safe.
    """
    with _POOL_LOCK:
        pools = list(_PROCESS_POOLS.values())
        _PROCESS_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)
    shm = sys.modules.get("repro.perf.shm")
    if shm is not None:
        shm.reset_global_pool()


# ----------------------------------------------------------------------
# The process-backend dispatch protocol
# ----------------------------------------------------------------------
@dataclass
class ShmKernel:
    """Shared-memory description of one kernel for the process backend.

    Closures over numpy views — the thread backend's currency — cannot
    cross a process boundary, so a kernel that wants the process backend
    supplies this picklable-by-parts description alongside its closure:

    ``func``
        A module-level function (or bound method of a picklable object)
        called as ``func(arrays, *task, **const)`` where ``arrays`` maps
        each input/output name to its attached shared ndarray.  It must
        compute exactly what the closure computes, writing only the
        disjoint output slices its ``task`` names.
    ``inputs`` / ``outputs``
        Named arrays exported to shared memory before dispatch.  Outputs
        are copied back into the caller's arrays after every task
        succeeds; a failed dispatch leaves them untouched (the inline
        serial fallback then recomputes from scratch).
    ``const``
        Small picklable keyword extras forwarded to every call.
    ``work_hint_bytes``
        Optional estimate of the kernel's scratch/compute footprint, for
        the :data:`MIN_PROCESS_DISPATCH_BYTES` gate.  Kernels whose real
        work dwarfs their payload (tree traversals over tiny query
        arrays, broadcast screens over compact inputs) pass it so the
        gate measures work, not wire bytes.  Default: the payload bytes.
    """

    func: Callable
    inputs: Dict[str, np.ndarray] = field(default_factory=dict)
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    const: Dict[str, object] = field(default_factory=dict)
    work_hint_bytes: Optional[int] = None

    def payload_nbytes(self) -> int:
        """Bytes that would travel through shared memory."""
        arrays = list(self.inputs.values()) + list(self.outputs.values())
        return int(sum(int(a.nbytes) for a in arrays))

    def dispatch_weight(self) -> int:
        """Bytes the dispatch gate compares against the overhead floor."""
        if self.work_hint_bytes is not None:
            return int(self.work_hint_bytes)
        return self.payload_nbytes()


def _shm_worker_main(func, refs, const, tasks):
    """Process-pool entry: attach the shared arrays, run one task group."""
    from repro.perf import shm

    arrays = {name: shm.attach_array(ref) for name, ref in refs.items()}
    return [func(arrays, *task, **const) for task in tasks]


def _dispatch_process(kernel: ShmKernel, tasks: Sequence[Tuple], count: int) -> List:
    """One process-backend dispatch; raises on failure (caller falls back).

    Inputs and outputs are exported to pooled shared segments, the task
    list is split into at most ``count`` contiguous groups (one pickled
    submission per group amortises IPC and any bound-``func`` state over
    many tasks), and outputs are copied back only after every group
    succeeds — the dispatch is transactional with respect to the caller's
    arrays.
    """
    from repro.perf import shm

    pool_mgr = shm.global_pool()
    leases = []
    shared_views: Dict[str, np.ndarray] = {}
    refs: Dict[str, object] = {}
    payload = 0
    try:
        for name, array in {**kernel.inputs, **kernel.outputs}.items():
            lease, view, ref = shm.export_array(pool_mgr, array)
            leases.append(lease)
            shared_views[name] = view
            refs[name] = ref
            payload += int(view.nbytes)
        group_count = min(count, len(tasks))
        group_size = -(-len(tasks) // group_count)  # ceil division
        groups = [
            tasks[pos : pos + group_size]
            for pos in range(0, len(tasks), group_size)
        ]
        pool = _process_pool(count)
        futures = [
            pool.submit(_shm_worker_main, kernel.func, refs, kernel.const, group)
            for group in groups
        ]
        error = None
        results: List = []
        for future in futures:
            try:
                results.extend(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if error is None:
                    error = exc
        if error is not None:
            raise error
        for name, array in kernel.outputs.items():
            array[...] = shared_views[name]
        note_process(len(tasks), group_count, payload)
        return results
    finally:
        shared_views.clear()
        for lease in leases:
            pool_mgr.release(lease)


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def run_tasks(
    worker: Callable,
    tasks: Sequence[Tuple],
    threads: Optional[int] = None,
    shm_kernel: Optional[ShmKernel] = None,
) -> List:
    """Run ``worker(*task)`` for every task; results come back in task order.

    ``threads`` resolves through :func:`resolve_threads`.  With one worker
    (or one task) the tasks run inline in the calling thread — the exact
    serial code path, no pool involved.  Otherwise the ambient backend
    (:func:`resolve_backend`) picks the pool: ``"serial"`` stays inline,
    ``"thread"`` submits each task to the shared thread pool, and
    ``"process"`` dispatches through ``shm_kernel``'s shared-memory
    protocol when one is supplied and its work clears
    :data:`MIN_PROCESS_DISPATCH_BYTES` (tiny dispatches stay serial; kernels
    without a shared-memory description fall back to the thread pool).  A
    failing thread task propagates its exception to the caller after all
    futures settle, so no worker is left writing into shared output arrays
    the caller has abandoned; a failing *process* dispatch (including a
    crashed worker) releases its segments and reruns the closure inline —
    answers are byte-identical to serial execution on every path.
    """
    tasks = list(tasks)
    count = resolve_threads(threads)
    if count <= 1 or len(tasks) <= 1:
        return [worker(*task) for task in tasks]
    backend = resolve_backend()
    if backend == "serial":
        return [worker(*task) for task in tasks]
    if backend == "process" and shm_kernel is not None:
        if shm_kernel.dispatch_weight() < MIN_PROCESS_DISPATCH_BYTES:
            return [worker(*task) for task in tasks]
        try:
            return _dispatch_process(shm_kernel, tasks, count)
        except BrokenProcessPool:
            # A worker died mid-dispatch (OOM kill, hard crash).  The pool
            # is unusable; drop it so the next dispatch builds a fresh one,
            # and answer this call through the exact inline path.
            _discard_process_pool(count)
            warnings.warn(
                "process kernel backend lost a worker; dispatch re-ran "
                "serially and the pool will be rebuilt",
                RuntimeWarning,
                stacklevel=2,
            )
            return [worker(*task) for task in tasks]
        except (OSError, ValueError, TypeError, AttributeError, ImportError):
            # Shared-memory setup or pickling failed (exhausted /dev/shm,
            # an unpicklable func/const).  The closure path computes the
            # same answer without any of that machinery.
            return [worker(*task) for task in tasks]
    note_parallel(len(tasks), min(count, len(tasks)))
    futures = [_pool(count).submit(worker, *task) for task in tasks]
    error = None
    results = []
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if error is None:
                error = exc
    if error is not None:
        raise error
    return results


def map_blocks(
    worker: Callable[[int, int], object],
    total: int,
    block_size: int,
    threads: Optional[int] = None,
    shm_kernel: Optional[ShmKernel] = None,
) -> List:
    """Dispatch ``worker(start, stop)`` over the ``iter_blocks`` ranges."""
    return run_tasks(
        worker,
        list(iter_blocks(total, block_size)),
        threads=threads,
        shm_kernel=shm_kernel,
    )


def split_memory_cap(memory_cap: Optional[int], threads: int) -> int:
    """Per-worker scratch budget: the global cap **divided** across workers.

    ``threads`` concurrent workers each sizing their blocks against the full
    cap would multiply the peak footprint by ``threads``; dividing keeps the
    sum of in-flight scratch within the one configured budget.
    """
    cap = memory_cap_bytes(memory_cap)
    if threads <= 1:
        return cap
    return max(1, cap // int(threads))


def parallel_block_size(total: int, block_size: int, threads: int) -> int:
    """Shrink a block size so at least ``threads`` blocks exist to dispatch."""
    if threads <= 1 or total <= 1:
        return max(1, int(block_size))
    per_thread = -(-int(total) // int(threads))  # ceil division
    return max(1, min(int(block_size), per_thread))


def _matmul_block_shm(arrays, start: int, stop: int) -> None:
    """Process-backend row block of :func:`parallel_matmul` (same split)."""
    np.matmul(
        arrays["a"][start:stop], arrays["b"], out=arrays["out"][start:stop]
    )


def parallel_matmul(
    a: np.ndarray,
    b: np.ndarray,
    threads: Optional[int] = None,
    min_rows: int = MIN_PARALLEL_GEMM_ROWS,
) -> np.ndarray:
    """``a @ b`` with the rows of ``a`` partitioned across worker threads.

    Row partitioning is the one GEMM split that stays byte-identical to the
    serial product: every output row is still the same dot products over the
    full inner dimension, in the same order — no re-association of partial
    sums.  Small products (fewer than ``min_rows`` rows) run serial; so does
    ``threads=1``.  Under ``backend="process"`` the same row blocks run in
    pool processes against shared-memory copies of ``a``/``b``, each writing
    its disjoint rows of the shared output.
    """
    count = resolve_threads(threads)
    rows = int(a.shape[0])
    if count <= 1 or rows < max(2, int(min_rows)):
        return a @ b
    out = np.empty((rows, b.shape[1]), dtype=np.result_type(a, b))

    def worker(start: int, stop: int) -> None:
        np.matmul(a[start:stop], b, out=out[start:stop])

    kernel = ShmKernel(
        _matmul_block_shm, inputs={"a": a, "b": b}, outputs={"out": out}
    )
    map_blocks(
        worker,
        rows,
        parallel_block_size(rows, rows, count),
        threads=count,
        shm_kernel=kernel,
    )
    return out
