"""The shared kernel executor: worker-thread dispatch for chunked kernels.

Every hot path already runs through the memory-capped chunked kernels of
:mod:`repro.perf.blocking` — the chunk boundaries produced by
:func:`~repro.perf.blocking.iter_blocks` are exactly the work units a
parallel executor needs.  This module dispatches those block ranges across
a shared worker-thread pool: numpy releases the GIL inside the broadcast
comparisons and GEMMs, so threads capture most of the multi-core win
without any IPC or pickling cost.

Three pieces:

* **Thread resolution** (:func:`resolve_threads`): explicit argument, then
  the ambient :func:`kernel_context`, then the ``REPRO_KERNEL_THREADS``
  environment variable, then 1.  ``threads=1`` is the contract-critical
  default — callers take the exact serial code path, no pool, no futures.
* **Dispatch** (:func:`run_tasks` / :func:`map_blocks` /
  :func:`parallel_matmul`): submit independent tasks to a cached
  :class:`~concurrent.futures.ThreadPoolExecutor` keyed by worker count
  and collect results in task order.  Workers write only to disjoint,
  caller-preallocated output slices, so results are byte-identical to the
  serial path regardless of completion order.  Pool threads are flagged so
  any kernel entered *from inside a worker* resolves to serial — nested
  parallelism (and the same-pool deadlock it invites) cannot happen.
* **The kernel context** (:func:`kernel_context`): a thread-local carrying
  the ``(threads, dtype, stats)`` knobs through deep call chains
  (session → skyline API → divide-and-conquer → ``dominated_mask``) that
  have no keyword path for them.  ``stats`` is any object with the
  executor telemetry counters (``SessionStats`` qualifies); all counter
  updates happen in the dispatching thread, never in workers, so the
  counters need no locking.

The memory budget **divides** across workers (it never multiplies): use
:func:`split_memory_cap` before :func:`~repro.perf.blocking.resolve_block_size`
so the sum of per-worker scratch stays within the one global cap.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.blocking import iter_blocks, memory_cap_bytes

#: Environment variable naming the default worker-thread count.
_THREADS_ENV = "REPRO_KERNEL_THREADS"

#: Hard ceiling on the pool size — beyond this, dispatch overhead and
#: memory-bandwidth contention dwarf any remaining parallel gain.
MAX_THREADS = 64

#: Compute dtypes the kernels accept.  ``float32`` is the opt-in fast path:
#: compare in single precision, re-verify ambiguous (tied) rows exactly.
VALID_DTYPES = ("float64", "float32")

#: Row count below which :func:`parallel_matmul` stays serial — partitioning
#: a small GEMM costs more in dispatch than the multiply itself.
MIN_PARALLEL_GEMM_ROWS = 2048


# ----------------------------------------------------------------------
# Knob validation and resolution
# ----------------------------------------------------------------------
def validate_threads(threads: Optional[int]) -> Optional[int]:
    """Validate an explicit thread count; ``None`` means "resolve later"."""
    if threads is None:
        return None
    count = int(threads)
    if count < 1:
        raise ValueError(f"threads must be >= 1, got {threads!r}")
    return min(count, MAX_THREADS)


def validate_dtype(dtype: Optional[str]) -> Optional[str]:
    """Validate an explicit compute dtype; ``None`` means "resolve later"."""
    if dtype is None:
        return None
    if dtype not in VALID_DTYPES:
        raise ValueError(
            f"compute dtype must be one of {VALID_DTYPES}, got {dtype!r}"
        )
    return dtype


class _KernelContext(threading.local):
    """Per-thread ambient knobs (see :func:`kernel_context`)."""

    def __init__(self):
        self.threads: Optional[int] = None
        self.dtype: Optional[str] = None
        self.stats = None
        self.in_worker = False


_CTX = _KernelContext()


@contextmanager
def kernel_context(threads=None, dtype=None, stats=None):
    """Install ambient executor knobs for the current thread.

    Kernels deep in the call stack (``dominated_mask`` under the skyline
    API, ``pairwise_intersection_arrays_from`` under an index build,
    ``FlatTree.query_many`` under a batched probe) resolve their ``threads``
    and ``dtype`` from this context when no explicit argument reaches them.
    ``None`` leaves the corresponding knob untouched, so nested contexts
    compose; the previous values are restored on exit.
    """
    prev = (_CTX.threads, _CTX.dtype, _CTX.stats)
    if threads is not None:
        _CTX.threads = validate_threads(threads)
    if dtype is not None:
        _CTX.dtype = validate_dtype(dtype)
    if stats is not None:
        _CTX.stats = stats
    try:
        yield
    finally:
        _CTX.threads, _CTX.dtype, _CTX.stats = prev


def resolve_threads(threads: Optional[int] = None) -> int:
    """Effective worker-thread count for one kernel call.

    Precedence: explicit argument, then the ambient :func:`kernel_context`,
    then the ``REPRO_KERNEL_THREADS`` environment variable, then 1.  Inside
    a pool worker the answer is always 1 (nested parallelism is refused —
    resubmitting to the same pool from one of its workers can deadlock).
    An unparseable or non-positive environment value warns and falls back
    instead of failing silently.
    """
    if threads is not None:
        return validate_threads(threads)
    if _CTX.in_worker:
        return 1
    if _CTX.threads is not None:
        return _CTX.threads
    env = os.environ.get(_THREADS_ENV)
    if env:
        try:
            count = int(env)
        except ValueError:
            warnings.warn(
                f"ignoring unparseable {_THREADS_ENV}={env!r} "
                f"(expected a positive integer); kernels run serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        if count < 1:
            warnings.warn(
                f"ignoring non-positive {_THREADS_ENV}={env!r}; "
                f"kernels run serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return 1
        return min(count, MAX_THREADS)
    return 1


def resolve_dtype(dtype: Optional[str] = None) -> str:
    """Effective compute dtype: explicit argument, then context, then float64."""
    if dtype is not None:
        return validate_dtype(dtype)
    return _CTX.dtype or "float64"


# ----------------------------------------------------------------------
# Telemetry (all updates happen in the dispatching thread)
# ----------------------------------------------------------------------
def note_parallel(chunks: int, threads: int) -> None:
    """Record one parallel dispatch on the ambient stats sink, if any."""
    stats = _CTX.stats
    if stats is not None:
        stats.parallel_chunks += int(chunks)
        stats.threads_used = max(stats.threads_used, int(threads))


def note_float32(fastpath_rows: int, fallback_rows: int) -> None:
    """Record float32 fast-path / exact-fallback row counts, if tracked."""
    stats = _CTX.stats
    if stats is not None:
        stats.float32_fastpath_hits += int(fastpath_rows)
        stats.float32_exact_fallbacks += int(fallback_rows)


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def _mark_worker() -> None:
    _CTX.in_worker = True


_POOLS: dict = {}
_POOL_LOCK = threading.Lock()


def _reset_pools_after_fork() -> None:
    # A forked child inherits executor objects whose worker threads do not
    # exist on its side of the fork; submitting to them would hang forever.
    # Drop the cache so the child lazily builds fresh pools.
    global _POOL_LOCK
    _POOLS.clear()
    _POOL_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def _pool(threads: int) -> ThreadPoolExecutor:
    with _POOL_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads,
                thread_name_prefix=f"repro-kernel-{threads}",
                initializer=_mark_worker,
            )
            _POOLS[threads] = pool
        return pool


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def run_tasks(
    worker: Callable,
    tasks: Sequence[Tuple],
    threads: Optional[int] = None,
) -> List:
    """Run ``worker(*task)`` for every task; results come back in task order.

    ``threads`` resolves through :func:`resolve_threads`.  With one worker
    (or one task) the tasks run inline in the calling thread — the exact
    serial code path, no pool involved.  Otherwise each task is submitted
    to the shared pool; a failing task propagates its exception to the
    caller after all futures settle, so no worker is left writing into
    shared output arrays the caller has abandoned.
    """
    tasks = list(tasks)
    count = resolve_threads(threads)
    if count <= 1 or len(tasks) <= 1:
        return [worker(*task) for task in tasks]
    note_parallel(len(tasks), min(count, len(tasks)))
    futures = [_pool(count).submit(worker, *task) for task in tasks]
    error = None
    results = []
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if error is None:
                error = exc
    if error is not None:
        raise error
    return results


def map_blocks(
    worker: Callable[[int, int], object],
    total: int,
    block_size: int,
    threads: Optional[int] = None,
) -> List:
    """Dispatch ``worker(start, stop)`` over the ``iter_blocks`` ranges."""
    return run_tasks(worker, list(iter_blocks(total, block_size)), threads=threads)


def split_memory_cap(memory_cap: Optional[int], threads: int) -> int:
    """Per-worker scratch budget: the global cap **divided** across workers.

    ``threads`` concurrent workers each sizing their blocks against the full
    cap would multiply the peak footprint by ``threads``; dividing keeps the
    sum of in-flight scratch within the one configured budget.
    """
    cap = memory_cap_bytes(memory_cap)
    if threads <= 1:
        return cap
    return max(1, cap // int(threads))


def parallel_block_size(total: int, block_size: int, threads: int) -> int:
    """Shrink a block size so at least ``threads`` blocks exist to dispatch."""
    if threads <= 1 or total <= 1:
        return max(1, int(block_size))
    per_thread = -(-int(total) // int(threads))  # ceil division
    return max(1, min(int(block_size), per_thread))


def parallel_matmul(
    a: np.ndarray,
    b: np.ndarray,
    threads: Optional[int] = None,
    min_rows: int = MIN_PARALLEL_GEMM_ROWS,
) -> np.ndarray:
    """``a @ b`` with the rows of ``a`` partitioned across worker threads.

    Row partitioning is the one GEMM split that stays byte-identical to the
    serial product: every output row is still the same dot products over the
    full inner dimension, in the same order — no re-association of partial
    sums.  Small products (fewer than ``min_rows`` rows) run serial; so does
    ``threads=1``.
    """
    count = resolve_threads(threads)
    rows = int(a.shape[0])
    if count <= 1 or rows < max(2, int(min_rows)):
        return a @ b
    out = np.empty((rows, b.shape[1]), dtype=np.result_type(a, b))

    def worker(start: int, stop: int) -> None:
        np.matmul(a[start:stop], b, out=out[start:stop])

    map_blocks(worker, rows, parallel_block_size(rows, rows, count), threads=count)
    return out
