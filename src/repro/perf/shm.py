"""Shared-memory array transport for the process kernel backend.

The thread backend of :mod:`repro.perf.executor` hands workers numpy views
through closures — free within one address space, impossible across
processes.  This module is the transport that makes ``backend="process"``
pay: input arrays are copied **once** into named
:class:`multiprocessing.shared_memory.SharedMemory` segments and workers
attach them zero-copy (an ``mmap`` of the same physical pages, no pickling
of array payloads), then write their results into disjoint slices of
preallocated shared output buffers exactly as the thread workers do.

Three pieces:

* :class:`SharedArrayPool` — the parent-side segment allocator.  Segments
  are recycled by capacity (an export of the same-or-smaller payload reuses
  a free segment instead of paying ``shm_open``/``mmap`` again), every
  created segment is tracked by name, and :meth:`SharedArrayPool.reset`
  closes **and unlinks** all of them — no leaked ``/dev/shm`` entries, which
  the regression tests assert by listing the prefix.  Retained free bytes
  are bounded by the shared kernel memory cap
  (:func:`repro.perf.blocking.memory_cap_bytes`): the pool trims its free
  list whenever the total footprint exceeds the cap, so the segment cache
  is charged against the same budget the chunked kernels already respect.
* :func:`export_array` / :func:`attach_array` — the two ends of the wire.
  Export copies a (contiguified) array into a pooled segment and returns a
  picklable :class:`ShmArrayRef`; attach maps the named segment and wraps
  it in an ndarray view without copying.  Worker-side attachments are
  cached per process (bounded LRU) so a cached pool's workers map each
  recycled segment once, not once per task.
* **Fork hygiene** — a forked child inherits the parent's registries but
  must never unlink the parent's live segments; :func:`forget_after_fork`
  drops the child's inherited pool state and attachment cache without
  touching the files.  The parent's own exit path unlinks everything via
  ``atexit``, so even an abandoned pool cannot leak past process death.

Python 3.11's ``SharedMemory`` has no ``track=False``: merely *attaching*
registers the segment with the worker's resource tracker, which would then
unlink it when the worker exits — yanking live memory out from under the
parent and every sibling.  :func:`attach_array` suppresses that
registration (the parent is the single owner and unlinks on reset), which
is the standard workaround until 3.13's ``track`` parameter.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from collections import OrderedDict
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np
from multiprocessing import resource_tracker, shared_memory

from repro.perf.blocking import memory_cap_bytes

#: Name prefix of every segment this module creates; the no-leak regression
#: tests enumerate ``/dev/shm`` entries carrying it.
SEGMENT_PREFIX = "repro-shm"

#: Bound on the worker-side attachment cache (segments mapped at once per
#: worker process).  Evicted attachments are re-mapped on next use.
ATTACH_CACHE_LIMIT = 64

_SEGMENT_COUNTER = itertools.count()


class ShmArrayRef(NamedTuple):
    """Picklable description of one exported array: where and what shape."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SegmentLease(object):
    """One pooled segment currently on loan (or free).  Not picklable."""

    __slots__ = ("shm", "capacity")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int):
        self.shm = shm
        self.capacity = int(capacity)

    @property
    def name(self) -> str:
        return self.shm.name


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink one segment, tolerating stale handles."""
    try:
        shm.close()
    except BufferError:
        # A still-referenced exported view pins the mapping; the unlink
        # below still removes the /dev/shm name, and the mapping goes when
        # the last view does.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


class SharedArrayPool:
    """Recycling allocator of named shared-memory segments.

    Parameters
    ----------
    memory_cap:
        Byte bound on the pool's total footprint (free + on loan), defaulting
        to the shared kernel memory cap
        (:func:`repro.perf.blocking.memory_cap_bytes`, i.e. the same budget
        ``REPRO_KERNEL_MEMORY_CAP_MB`` configures for kernel scratch).  The
        cap governs *retention*: free segments are unlinked until the total
        fits, but an acquire that a correctness path needs is never refused
        — a dispatch larger than the cap simply is not cached afterwards.
    """

    def __init__(self, memory_cap: Optional[int] = None):
        self._memory_cap = memory_cap
        self._lock = threading.Lock()
        self._free: List[SegmentLease] = []
        self._loaned: Dict[str, SegmentLease] = {}
        self.segments_created = 0
        self.segments_recycled = 0
        self.segments_unlinked = 0

    # ------------------------------------------------------------------
    # Introspection (tests and telemetry)
    # ------------------------------------------------------------------
    def retention_cap(self) -> int:
        """The byte bound currently in force."""
        return memory_cap_bytes(self._memory_cap)

    @property
    def free_bytes(self) -> int:
        with self._lock:
            return sum(lease.capacity for lease in self._free)

    @property
    def loaned_bytes(self) -> int:
        with self._lock:
            return sum(lease.capacity for lease in self._loaned.values())

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(lease.capacity for lease in self._free) + sum(
                lease.capacity for lease in self._loaned.values()
            )

    def segment_names(self) -> List[str]:
        """Names of every live segment the pool tracks (free and loaned)."""
        with self._lock:
            return [lease.name for lease in self._free] + list(self._loaned)

    # ------------------------------------------------------------------
    # The allocator
    # ------------------------------------------------------------------
    def acquire(self, nbytes: int) -> SegmentLease:
        """Lease a segment of at least ``nbytes`` (best-fit recycle, else create)."""
        needed = max(1, int(nbytes))
        with self._lock:
            best = None
            for lease in self._free:
                if lease.capacity >= needed and (
                    best is None or lease.capacity < best.capacity
                ):
                    best = lease
            if best is not None:
                self._free.remove(best)
                self._loaned[best.name] = best
                self.segments_recycled += 1
                return best
            name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEGMENT_COUNTER)}"
            shm = shared_memory.SharedMemory(name=name, create=True, size=needed)
            lease = SegmentLease(shm, needed)
            self._loaned[lease.name] = lease
            self.segments_created += 1
            return lease

    def release(self, lease: SegmentLease) -> None:
        """Return a lease to the free list, trimming past the retention cap."""
        with self._lock:
            if self._loaned.pop(lease.name, None) is None:
                # reset()/forget() already disposed of it.
                return
            self._free.append(lease)
            self._trim_locked()

    def _trim_locked(self) -> None:
        cap = self.retention_cap()
        total = sum(l.capacity for l in self._free) + sum(
            l.capacity for l in self._loaned.values()
        )
        # Largest-first: one unlink frees the most bytes.
        self._free.sort(key=lambda l: l.capacity, reverse=True)
        while self._free and total > cap:
            lease = self._free.pop(0)
            total -= lease.capacity
            _destroy_segment(lease.shm)
            self.segments_unlinked += 1

    def reset(self) -> None:
        """Close and unlink every tracked segment (free *and* loaned)."""
        with self._lock:
            for lease in self._free:
                _destroy_segment(lease.shm)
                self.segments_unlinked += 1
            for lease in self._loaned.values():
                _destroy_segment(lease.shm)
                self.segments_unlinked += 1
            self._free.clear()
            self._loaned.clear()

    def forget(self) -> None:
        """Drop all registries *without* unlinking (forked-child hygiene).

        The parent still owns the segments; a child unlinking them would
        yank live memory out from under it.  The child simply starts from
        an empty pool and creates its own segments (pid-tagged names, so
        they can never collide with the parent's).
        """
        with self._lock:
            self._free.clear()
            self._loaned.clear()


# ----------------------------------------------------------------------
# The wire: export (parent) and attach (worker)
# ----------------------------------------------------------------------
def export_array(
    pool: SharedArrayPool, array: np.ndarray
) -> Tuple[SegmentLease, np.ndarray, ShmArrayRef]:
    """Copy ``array`` into a pooled segment; return (lease, shared view, ref).

    The one copy here is the only payload transfer of the whole dispatch:
    workers attach the same pages read-only-by-convention, and output
    arrays come back through :func:`export_array`'d buffers the workers
    wrote in place.
    """
    array = np.ascontiguousarray(array)
    lease = pool.acquire(max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=lease.shm.buf)
    if array.nbytes:
        view[...] = array
    return lease, view, ShmArrayRef(lease.name, tuple(array.shape), array.dtype.str)


_ATTACHED: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    On Python < 3.13 attaching registers the segment in *this* process's
    resource tracker, which unlinks it at process exit — destroying the
    parent's live segment.  The parent is the single owner; suppress the
    registration for the duration of the attach.
    """
    original = resource_tracker.register

    def _register_non_shm(res_name, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original(res_name, rtype)

    resource_tracker.register = _register_non_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def attach_array(ref: ShmArrayRef) -> np.ndarray:
    """Map the named segment and view it as an ndarray — no copy.

    Attachments are cached per process (bounded LRU) so a worker maps each
    recycled segment once across the many tasks of a cached pool's
    lifetime.
    """
    segment = _ATTACHED.get(ref.name)
    if segment is None:
        segment = _attach_untracked(ref.name)
        _ATTACHED[ref.name] = segment
        while len(_ATTACHED) > ATTACH_CACHE_LIMIT:
            stale_name, stale = _ATTACHED.popitem(last=False)
            try:
                stale.close()
            except BufferError:
                # A live view still references the mapping; keep it cached.
                _ATTACHED[stale_name] = stale
                _ATTACHED.move_to_end(stale_name, last=False)
                break
    else:
        _ATTACHED.move_to_end(ref.name)
    return np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)


def close_attachments() -> None:
    """Unmap every cached attachment (worker teardown; safe to re-call)."""
    while _ATTACHED:
        _, segment = _ATTACHED.popitem()
        try:
            segment.close()
        except BufferError:  # pragma: no cover - view still alive
            pass


# ----------------------------------------------------------------------
# Process-global pool and fork/exit hygiene
# ----------------------------------------------------------------------
_GLOBAL_POOL: Optional[SharedArrayPool] = None
_GLOBAL_LOCK = threading.Lock()


def global_pool() -> SharedArrayPool:
    """The process-wide segment pool the executor dispatches through."""
    global _GLOBAL_POOL
    with _GLOBAL_LOCK:
        if _GLOBAL_POOL is None:
            _GLOBAL_POOL = SharedArrayPool()
        return _GLOBAL_POOL


def reset_global_pool() -> None:
    """Unlink every segment of the global pool (idempotent)."""
    with _GLOBAL_LOCK:
        if _GLOBAL_POOL is not None:
            _GLOBAL_POOL.reset()


def forget_after_fork() -> None:
    """Forked-child hygiene: drop inherited registries, unlink nothing.

    Called from the executor's ``os.register_at_fork`` hook (and registered
    here as well for direct users of this module): the child forgets the
    parent's segments and attachment cache so no code path in the child can
    unlink memory the parent still serves queries from.
    """
    global _GLOBAL_POOL, _GLOBAL_LOCK
    _GLOBAL_LOCK = threading.Lock()
    if _GLOBAL_POOL is not None:
        _GLOBAL_POOL.forget()
        _GLOBAL_POOL = None
    _ATTACHED.clear()


atexit.register(reset_global_pool)

if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX
    os.register_at_fork(after_in_child=forget_after_fork)


__all__ = [
    "ATTACH_CACHE_LIMIT",
    "SEGMENT_PREFIX",
    "SegmentLease",
    "SharedArrayPool",
    "ShmArrayRef",
    "attach_array",
    "close_attachments",
    "export_array",
    "forget_after_fork",
    "global_pool",
    "reset_global_pool",
]
