"""Fault-tolerant concurrent query service over :class:`DatasetSession`.

The package is layered bottom-up:

``snapshot``
    Checksummed on-disk container (magic / version / SHA-256 header) used
    for session snapshots.  Corrupt or truncated files are *detected*, never
    trusted — loaders raise :class:`~repro.errors.SnapshotError` and callers
    fall back to a cold rebuild.

``wal``
    Append-only write-ahead log of acknowledged update batches with
    per-record CRCs.  A worker appends the batch *before* applying it, so an
    acknowledged update survives any crash; replay skips already-applied
    sequence numbers, making crash-retry delivery idempotent.

``worker``
    The long-lived shard worker process: one :class:`DatasetSession` per
    shard, global-id bookkeeping, snapshot/WAL recovery on startup, and the
    request loop (queries, idempotent updates, snapshots, health pings).

``supervisor``
    :class:`EclipseService` — shards a dataset across workers, coalesces
    concurrently arriving queries into one ``run_batch`` window per shard,
    merges per-shard eclipse candidates exactly, supervises workers
    (heartbeats, crash detection, automatic respawn from the latest
    snapshot + WAL tail), enforces per-request deadlines with bounded
    exponential-backoff retries, and sheds to the transform path under
    overload or repeated index failure.

``faults``
    Deterministic fault-injection harness: kills workers mid-batch, drops
    and delays responses, corrupts snapshot files, and replays a mixed
    workload against a single-process reference session asserting
    byte-identical answers throughout.
"""

from repro.service.faults import FaultInjector, FaultPlan, run_fault_injection
from repro.service.snapshot import read_payload, write_payload
from repro.service.supervisor import (
    EclipseService,
    ServiceConfig,
    ServiceStats,
)
from repro.service.wal import WriteAheadLog

__all__ = [
    "EclipseService",
    "FaultInjector",
    "FaultPlan",
    "ServiceConfig",
    "ServiceStats",
    "WriteAheadLog",
    "read_payload",
    "run_fault_injection",
    "write_payload",
]
