"""Fault-tolerant concurrent query service over :class:`DatasetSession`.

The package is layered bottom-up:

``snapshot``
    Checksummed on-disk container (magic / version / SHA-256 header) used
    for session snapshots.  Corrupt or truncated files are *detected*, never
    trusted — loaders raise :class:`~repro.errors.SnapshotError` and callers
    fall back to a cold rebuild.

``wal``
    Append-only write-ahead log of acknowledged update batches with
    per-record CRCs.  A worker appends the batch *before* applying it, so an
    acknowledged update survives any crash; replay skips already-applied
    sequence numbers, making crash-retry delivery idempotent.

``worker``
    The long-lived shard worker process: one :class:`DatasetSession` per
    shard, global-id bookkeeping, snapshot/WAL recovery on startup, and the
    request loop (queries, idempotent updates, snapshots, health pings).

``supervisor``
    :class:`EclipseService` — shards a dataset across workers, coalesces
    concurrently arriving queries into one ``run_batch`` window per shard,
    merges per-shard eclipse candidates exactly, supervises workers
    (heartbeats, crash detection, automatic respawn from the latest
    snapshot + WAL tail), enforces per-request deadlines with bounded
    exponential-backoff retries, and sheds to the transform path under
    overload or repeated index failure.  ``recover=True`` rebuilds a whole
    service (sequence counter, global-id allocator, client-acknowledgement
    cache, lagging shards) from the write-ahead logs of a previous process.

``faults``
    Deterministic fault-injection harness: kills workers mid-batch, drops
    and delays responses, corrupts snapshot files, and replays a mixed
    workload against a single-process reference session asserting
    byte-identical answers throughout.

``framing``
    Length-prefixed, CRC-framed wire protocol of the network front end;
    recoverable (bad payload) vs unrecoverable (bad header) damage is
    distinguished so servers reject bad frames without dropping the
    connection loop.

``netserver``
    Asyncio TCP server over :class:`EclipseService`: bounded-queue read
    backpressure, ``drain()``-based write backpressure, accept-time
    connection shedding, per-request deadline propagation, health and
    readiness probes, and graceful drain on shutdown.

``netclient``
    Synchronous TCP client mirroring the service API, with seeded
    exponential-backoff reconnect and exactly-once updates keyed by
    ``(client_id, client_seq)``.

``netfaults``
    Network-level fault injection: a deterministic frame-mangling chaos
    proxy (delay / drop / duplicate / bit-flip / truncate / reset) and an
    end-to-end harness that replays a verified workload through client →
    proxy → server → service, including SIGKILL + ``--recover`` cycles of
    the whole server process.
"""

from repro.service.faults import FaultInjector, FaultPlan, run_fault_injection
from repro.service.framing import (
    FrameDecoder,
    RawFrameSplitter,
    decode_payload,
    encode_frame,
)
from repro.service.netclient import ClientConfig, ClientStats, EclipseClient
from repro.service.netfaults import (
    ChaosProxy,
    NetFaultPlan,
    NetFaultReport,
    parse_net_plan,
    run_net_fault_injection,
)
from repro.service.netserver import (
    EclipseNetServer,
    NetServerConfig,
    NetServerHandle,
    NetServerStats,
    resolve_listen,
    start_in_thread,
)
from repro.service.snapshot import read_payload, write_payload
from repro.service.supervisor import (
    EclipseService,
    ServiceConfig,
    ServiceStats,
)
from repro.service.wal import WriteAheadLog

__all__ = [
    "ChaosProxy",
    "ClientConfig",
    "ClientStats",
    "EclipseClient",
    "EclipseNetServer",
    "EclipseService",
    "FaultInjector",
    "FaultPlan",
    "FrameDecoder",
    "NetFaultPlan",
    "NetFaultReport",
    "NetServerConfig",
    "NetServerHandle",
    "NetServerStats",
    "RawFrameSplitter",
    "ServiceConfig",
    "ServiceStats",
    "WriteAheadLog",
    "decode_payload",
    "encode_frame",
    "parse_net_plan",
    "read_payload",
    "resolve_listen",
    "run_fault_injection",
    "run_net_fault_injection",
    "start_in_thread",
    "write_payload",
]
