"""Deterministic fault injection and the service acceptance harness.

Two halves:

* :class:`FaultInjector` — the supervisor's injection hooks, driven by a
  :class:`FaultPlan`: kill a worker on every ``k``-th update batch (either
  a supervisor-side SIGKILL right after the request is sent — mid-batch —
  or a worker-side ``os._exit`` at a chosen point of the WAL-apply-ack
  sequence), drop or delay responses, and corrupt the snapshot file a
  respawning worker is about to recover from (truncation or a bit flip —
  both must be *detected* by the checksum header and demote the recovery
  to a cold rebuild, never crash it or silently serve wrong state).

* :func:`run_fault_injection` — replays one seeded mixed query/update
  workload simultaneously against a faulty :class:`EclipseService` and a
  single-process reference :class:`DatasetSession`, asserting after every
  step that the service's answers are **byte-identical** to the
  reference's (same global rows, same coordinate bytes).  This is the
  acceptance gate of the robustness contract: with workers dying
  mid-stream and snapshots corrupted, no acknowledged update is lost and
  no query answer changes.

Everything is seeded — the workload, the injector's choices, the
supervisor's backoff jitter — so a failing run replays exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.service.supervisor import EclipseService, ServiceConfig


def corrupt_file(path: str, mode: str = "bitflip", seed: int = 0) -> None:
    """Damage a file in place: ``"truncate"`` halves it, ``"bitflip"`` flips
    one payload bit at a seeded offset.  Used to prove the snapshot loader
    detects (and survives) exactly this."""
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
        return
    if mode == "bitflip":
        rng = np.random.default_rng(seed)
        # Flip inside the payload, past the 52-byte header, so the damage
        # must be caught by the checksum rather than the magic check.
        start = min(52, size - 1)
        offset = int(rng.integers(start, size))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0x40]))
        return
    raise ValueError(f"unknown corruption mode {mode!r}")


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and how often.

    Attributes
    ----------
    kill_every:
        Inject a worker death on every ``k``-th update batch (``0`` = never).
    kill_mode:
        ``"kill"`` — supervisor SIGKILLs the worker right after sending the
        batch (mid-batch, timing decided by the OS); ``"before_wal"`` /
        ``"after_wal"`` / ``"after_apply"`` — the worker ``os._exit``s at
        that exact point, pinning the crash to the interesting instants of
        the durability protocol.
    drop_response_rate:
        Probability that a worker response is discarded after being read
        (a lost acknowledgement — the retry must be idempotent).
    response_delay:
        Fixed extra seconds added to every response (deadline pressure).
    corrupt_snapshot:
        ``None``, ``"truncate"`` or ``"bitflip"`` — applied to the snapshot
        file right before a respawning worker reads it.
    corrupt_every:
        Apply the corruption before every ``k``-th respawn (``0`` = never).
    seed:
        Seed of the injector's RNG (shard choice, flip offsets, drops).
    """

    kill_every: int = 0
    kill_mode: str = "kill"
    drop_response_rate: float = 0.0
    response_delay: float = 0.0
    corrupt_snapshot: Optional[str] = None
    corrupt_every: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kill_mode not in _KILL_MODES:
            raise ValueError(
                f"kill_mode must be one of {_KILL_MODES}, got {self.kill_mode!r}"
            )
        if self.corrupt_snapshot not in (None, "truncate", "bitflip"):
            raise ValueError(
                f"corrupt_snapshot must be 'truncate' or 'bitflip', "
                f"got {self.corrupt_snapshot!r}"
            )


_KILL_MODES = ("kill", "before_wal", "after_wal", "after_apply")


class FaultInjector:
    """Stateful, seeded implementation of the supervisor's injection hooks."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self.kills_injected = 0
        self.drops_injected = 0
        self.corruptions_injected = 0
        self.respawns_seen = 0

    # -- hooks called by the supervisor --------------------------------
    def on_update(self, seq: int, num_shards: int):
        """Decide whether (and how) to kill a worker for update ``seq``."""
        if self.plan.kill_every and seq % self.plan.kill_every == 0:
            shard = int(self._rng.integers(num_shards))
            self.kills_injected += 1
            return shard, self.plan.kill_mode
        return None, None

    def drop_response(self, shard: int) -> bool:
        if (
            self.plan.drop_response_rate
            and self._rng.uniform() < self.plan.drop_response_rate
        ):
            self.drops_injected += 1
            return True
        return False

    def response_delay(self) -> float:
        return self.plan.response_delay

    def before_respawn(self, shard: int, snapshot_path: str) -> None:
        self.respawns_seen += 1
        if (
            self.plan.corrupt_snapshot
            and self.plan.corrupt_every
            and self.respawns_seen % self.plan.corrupt_every == 0
            and os.path.exists(snapshot_path)
        ):
            corrupt_file(
                snapshot_path,
                self.plan.corrupt_snapshot,
                seed=int(self._rng.integers(2**31)),
            )
            self.corruptions_injected += 1

    def summary(self) -> Dict[str, int]:
        return {
            "kills_injected": self.kills_injected,
            "drops_injected": self.drops_injected,
            "corruptions_injected": self.corruptions_injected,
            "respawns_seen": self.respawns_seen,
        }


@dataclass
class FaultReport:
    """Outcome of one :func:`run_fault_injection` run."""

    steps: int
    queries: int
    update_batches: int
    mismatches: int
    service_stats: Dict[str, int]
    injector: Dict[str, int]
    examples: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every service answer matched the reference exactly."""
        return self.mismatches == 0


def run_fault_injection(
    dataset: str = "ANTI",
    n: int = 2000,
    dimensions: int = 3,
    steps: int = 40,
    update_fraction: float = 0.3,
    batch: int = 4,
    update_size: int = 16,
    plan: Optional[FaultPlan] = None,
    config: Optional[ServiceConfig] = None,
    snapshot_dir: Optional[str] = None,
    seed: int = 0,
    verify: bool = True,
    data: Optional[np.ndarray] = None,
) -> FaultReport:
    """Replay a seeded mixed workload against a faulty service and verify it.

    Every query step submits ``batch`` ratio-range queries to the service
    (they coalesce into admission windows) and, when ``verify`` is on,
    re-answers them on a single-process reference session over the same
    logical dataset, comparing global row ids and coordinate bytes
    exactly.  Every update step applies the same inserts/deletes to both
    sides; the reference addresses rows positionally, the service by
    global id, and the harness maintains the position→gid map so the two
    streams stay aligned.
    """
    plan = plan or FaultPlan()
    config = config or ServiceConfig()
    if data is None:
        data = generate_dataset(dataset.upper(), n, dimensions, seed=seed)
    else:
        data = np.asarray(data, dtype=float)
        n, dimensions = int(data.shape[0]), int(data.shape[1])
    lows = data.min(axis=0)
    highs = data.max(axis=0)
    injector = FaultInjector(plan)
    workload = np.random.default_rng(seed + 1)
    reference = DatasetSession(data) if verify else None
    ref_gids = np.arange(n, dtype=np.intp)
    queries = update_batches = mismatches = 0
    examples: List[str] = []
    with EclipseService(
        data, config=config, snapshot_dir=snapshot_dir, injector=injector
    ) as service:
        for step in range(steps):
            if workload.uniform() < update_fraction:
                half = max(1, update_size // 2)
                inserts = lows + workload.uniform(
                    size=(half, dimensions)
                ) * (highs - lows)
                current = int(ref_gids.size)
                num_deletes = min(half, max(0, current - 1))
                positions = (
                    np.sort(
                        workload.choice(current, size=num_deletes, replace=False)
                    )
                    if num_deletes
                    else np.empty(0, dtype=np.intp)
                )
                delete_gids = ref_gids[positions]
                ack = service.apply_updates(
                    inserts=inserts, delete_gids=delete_gids
                )
                if reference is not None:
                    reference.apply_updates(
                        inserts=inserts,
                        deletes=positions if positions.size else None,
                    )
                ref_gids = np.concatenate(
                    [np.delete(ref_gids, positions), ack.insert_gids]
                )
                update_batches += 1
            else:
                specs = []
                for _ in range(batch):
                    low = float(workload.uniform(0.1, 1.0))
                    specs.append(
                        RatioVector.uniform(
                            low, low + float(workload.uniform(0.2, 2.5)),
                            dimensions,
                        )
                    )
                results = service.query_batch(specs)
                queries += len(specs)
                if reference is not None:
                    for spec, got in zip(specs, results):
                        want = reference.run(ratios=spec)
                        same_rows = np.array_equal(
                            ref_gids[want.indices], got.gids
                        )
                        same_bytes = (
                            want.points.shape == got.points.shape
                            and want.points.tobytes() == got.points.tobytes()
                        )
                        if not (same_rows and same_bytes):
                            mismatches += 1
                            if len(examples) < 5:
                                examples.append(
                                    f"step {step}: reference "
                                    f"{ref_gids[want.indices].tolist()} != "
                                    f"service {got.gids.tolist()}"
                                )
        stats = service.stats.as_dict()
    return FaultReport(
        steps=steps,
        queries=queries,
        update_batches=update_batches,
        mismatches=mismatches,
        service_stats=stats,
        injector=injector.summary(),
        examples=examples,
    )
