"""Length-prefixed, CRC-framed wire protocol of the network front end.

Every message on a service TCP connection is one *frame*::

    offset  size  field
    0       4     magic  b"RPNF"
    4       2     protocol version  (little-endian uint16; currently 1)
    6       2     frame kind        (little-endian uint16; see the constants)
    8       8     payload length    (little-endian uint64)
    16      4     CRC-32 of the payload bytes
    20      ...   payload (pickled object)

The header is fixed-size and self-describing, so a receiver always knows
how many bytes the current frame still needs — partial reads ("torn"
frames) are simply buffered until the rest arrives, and a frame that never
completes is detected by the connection closing mid-frame, not by a parser
losing sync.

Damage is classified into two severities, and the distinction is what lets
a server reject bad frames *without* killing the connection loop:

* **Recoverable** (:attr:`FrameError.recoverable` is true): the header was
  intact, so the payload length is trusted and the decoder knows exactly
  where the next frame starts.  Covers CRC mismatches, undecodable
  payloads, and frames whose declared length exceeds ``max_frame_bytes``
  (the payload is skipped without being buffered).  The connection can keep
  serving subsequent frames.

* **Unrecoverable**: the header itself cannot be trusted — bad magic or an
  unknown protocol version.  Nothing downstream can be framed reliably, so
  the connection must be closed (the *listener* stays up either way).

The payload codec is :mod:`pickle` — the same codec the service already
uses for its write-ahead log and snapshots.  The framing (and the server
built on it) therefore assumes a *trusted* network boundary, exactly like
the in-process API it replaces; it is an operational front end, not an
exposure-hardened public protocol.
"""

from __future__ import annotations

import pickle
import struct
from typing import Iterator, Optional, Tuple
from zlib import crc32

from repro.errors import FrameError

PROTOCOL_VERSION = 1

FRAME_MAGIC = b"RPNF"
FRAME_HEADER = struct.Struct("<4sHHQI")

#: Default ceiling on a single frame's payload (64 MiB).  Large enough for
#: bulk update batches; small enough that a corrupt length field cannot
#: make a receiver buffer unbounded garbage.
MAX_FRAME_BYTES = 64 * 1024 * 1024

# ----------------------------------------------------------------------
# Frame kinds.  Requests travel client -> server, responses the other way;
# the kind lives in the fixed header so a receiver can route a frame
# before touching (or trusting) the payload.
# ----------------------------------------------------------------------
KIND_QUERY = 1       # request: a batch of ratio-range queries
KIND_UPDATE = 2      # request: one durable update batch (idempotent)
KIND_PING = 3        # request: per-shard heartbeat through the service
KIND_HEALTH = 4      # request: server-process liveness (cheap, local)
KIND_READY = 5       # request: readiness (accepting and service answers)
KIND_STATS = 6       # request: service + server counters
KIND_SNAPSHOT = 7    # request: force a durable snapshot of every shard
KIND_OK = 100        # response: success payload
KIND_ERROR = 101     # response: failure payload {kind, message, id}
KIND_BUSY = 102      # response: connection shed at accept time / draining

KIND_NAMES = {
    KIND_QUERY: "query",
    KIND_UPDATE: "update",
    KIND_PING: "ping",
    KIND_HEALTH: "health",
    KIND_READY: "ready",
    KIND_STATS: "stats",
    KIND_SNAPSHOT: "snapshot",
    KIND_OK: "ok",
    KIND_ERROR: "error",
    KIND_BUSY: "busy",
}

REQUEST_KINDS = frozenset(
    (KIND_QUERY, KIND_UPDATE, KIND_PING, KIND_HEALTH, KIND_READY,
     KIND_STATS, KIND_SNAPSHOT)
)


def encode_frame(kind: int, payload: object) -> bytes:
    """Serialise one ``(kind, payload)`` message into frame bytes."""
    if kind not in KIND_NAMES:
        raise FrameError(f"unknown frame kind {kind!r}", recoverable=False)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = FRAME_HEADER.pack(
        FRAME_MAGIC, PROTOCOL_VERSION, kind, len(blob), crc32(blob)
    )
    return header + blob


def decode_payload(blob: bytes, checksum: int) -> object:
    """Verify and unpickle one payload; raises recoverable :class:`FrameError`."""
    if crc32(blob) != checksum:
        raise FrameError(
            "frame payload failed its CRC-32 check", recoverable=True
        )
    try:
        return pickle.loads(blob)
    except Exception as exc:  # torn pickle inside an intact CRC is near
        # impossible, but a malicious/buggy sender can emit one on purpose.
        raise FrameError(
            f"frame payload does not decode: {exc}", recoverable=True
        ) from exc


class FrameDecoder:
    """Incremental decoder for one direction of a framed byte stream.

    Feed raw socket bytes with :meth:`feed`, then drain decoded frames with
    :meth:`next_frame` (or iterate :meth:`frames`).  Torn frames are
    buffered across ``feed`` calls.  Recoverable damage raises
    :class:`FrameError` with ``recoverable=True`` *after* arranging the
    internal state so the next call continues at the following frame;
    unrecoverable damage (bad magic / unknown version) raises with
    ``recoverable=False`` and the decoder refuses further use.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._skip_remaining = 0
        self._pending_error: Optional[FrameError] = None
        self._dead = False

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently buffered (torn-frame tail included)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the peer."""
        if self._dead:
            raise FrameError(
                "decoder is unusable after an unrecoverable framing error",
                recoverable=False,
            )
        if self._skip_remaining:
            # Mid-skip of an oversized payload: discard without buffering.
            drop = min(self._skip_remaining, len(data))
            self._skip_remaining -= drop
            data = data[drop:]
        if data:
            self._buffer.extend(data)

    def next_frame(self) -> Optional[Tuple[int, object]]:
        """Return the next complete ``(kind, payload)``, or ``None``.

        ``None`` means "need more bytes" — call :meth:`feed` again.  Frame
        damage raises :class:`FrameError` (see the class docstring for the
        recoverable/unrecoverable split).
        """
        if self._pending_error is not None:
            # An oversized frame finished (or is still) being skipped; the
            # error is reported once, at the frame's position in the stream.
            error, self._pending_error = self._pending_error, None
            raise error
        if self._dead:
            raise FrameError(
                "decoder is unusable after an unrecoverable framing error",
                recoverable=False,
            )
        if len(self._buffer) < FRAME_HEADER.size:
            return None
        magic, version, kind, length, checksum = FRAME_HEADER.unpack_from(
            self._buffer
        )
        if magic != FRAME_MAGIC:
            self._dead = True
            raise FrameError(
                f"bad frame magic {bytes(magic)!r}; the stream cannot be "
                "re-synchronised",
                recoverable=False,
            )
        if version != PROTOCOL_VERSION:
            self._dead = True
            raise FrameError(
                f"unsupported protocol version {version} "
                f"(this side speaks {PROTOCOL_VERSION})",
                recoverable=False,
            )
        if length > self.max_frame_bytes:
            # The header is intact, so the length is trusted: skip the
            # payload without buffering it and report the rejection once
            # the skip is set up — subsequent frames decode normally.
            already = len(self._buffer) - FRAME_HEADER.size
            drop = min(already, length)
            del self._buffer[: FRAME_HEADER.size + drop]
            self._skip_remaining = length - drop
            raise FrameError(
                f"frame of {length} payload bytes exceeds the "
                f"{self.max_frame_bytes}-byte limit",
                recoverable=True,
                kind=kind,
            )
        if len(self._buffer) < FRAME_HEADER.size + length:
            return None
        blob = bytes(self._buffer[FRAME_HEADER.size : FRAME_HEADER.size + length])
        del self._buffer[: FRAME_HEADER.size + length]
        if kind not in KIND_NAMES:
            raise FrameError(
                f"unknown frame kind {kind}", recoverable=True, kind=kind
            )
        try:
            payload = decode_payload(blob, checksum)
        except FrameError as exc:
            exc.kind = kind
            raise
        return kind, payload

    def frames(self) -> Iterator[Tuple[int, object]]:
        """Yield every currently complete frame (stops at the first tear)."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame


class RawFrameSplitter:
    """Split a byte stream into *raw frame byte chunks* without validating.

    The chaos proxy uses this: it needs frame boundaries (to drop,
    duplicate, delay or bit-flip whole frames) but must forward the bytes
    untouched — re-encoding would launder away exactly the corruption the
    receiving side's CRC check is being tested against.  Only the magic and
    the length field are interpreted; CRCs and payloads are passed through
    verbatim.  A stream whose magic does not match is handed on as-is in
    one opaque chunk (the receiver will reject it — the proxy never
    "fixes" traffic).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = int(max_frame_bytes)
        self._buffer = bytearray()
        self._opaque = False

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_chunk(self) -> Optional[bytes]:
        """Return the next whole frame's raw bytes, or ``None`` if torn."""
        if not self._buffer:
            return None
        if self._opaque:
            chunk = bytes(self._buffer)
            self._buffer.clear()
            return chunk
        if len(self._buffer) < FRAME_HEADER.size:
            return None
        magic, _version, _kind, length, _crc = FRAME_HEADER.unpack_from(
            self._buffer
        )
        if magic != FRAME_MAGIC or length > self.max_frame_bytes:
            # Unframeable traffic: stop interpreting, forward verbatim.
            self._opaque = True
            chunk = bytes(self._buffer)
            self._buffer.clear()
            return chunk
        total = FRAME_HEADER.size + length
        if len(self._buffer) < total:
            return None
        chunk = bytes(self._buffer[:total])
        del self._buffer[:total]
        return chunk

    def flush_tail(self) -> bytes:
        """Whatever partial frame is buffered (for forwarding on close)."""
        chunk = bytes(self._buffer)
        self._buffer.clear()
        return chunk
