"""Synchronous TCP client for the eclipse network front end.

:class:`EclipseClient` mirrors the :class:`EclipseService` public API
(``query`` / ``query_batch`` / ``apply_updates`` / ``ping`` / ...) over
the framed wire protocol of :mod:`repro.service.framing`, adding the two
things a network hop makes necessary:

* **Reconnect with seeded exponential backoff.**  A dead socket, a torn
  or corrupt response frame, a ``BUSY`` shed, or a response timeout all
  trigger the same path: drop the connection, back off (the same
  ``backoff_base`` / ``backoff_cap`` / ``backoff_jitter`` knobs as
  :class:`ServiceConfig`, seeded for reproducibility), reconnect, resend.
  Only once the retry budget is spent does the failure escape, as
  :class:`ConnectionLostError` (or :class:`ServerBusyError` if the server
  kept shedding).

* **Exactly-once updates.**  Every update batch carries a client
  idempotency key ``(client_id, client_seq)``.  The server stores the key
  in each shard's fsynced write-ahead log *before* acknowledging, and its
  acknowledgement cache survives crash recovery — so a resend after a
  dropped ack (or after the server was SIGKILLed and restarted) is
  recognised and answered with the original acknowledgement instead of
  being applied twice.  Redelivery is a no-op; an acked update is never
  lost and never duplicated.

Server-reported request errors (a deadline miss, an invalid query, a
closed service) are *not* retried — they are re-raised as their original
:class:`ReproError` subclass, exactly as the in-process API would have
raised them.
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import errors as _errors
from repro.errors import (
    ConnectionLostError,
    FrameError,
    ReproError,
    ServerBusyError,
    ServiceError,
)
from repro.service import framing
from repro.service.netserver import DEFAULT_HOST, DEFAULT_PORT
from repro.service.supervisor import ServiceResult, UpdateAck


@dataclass(frozen=True)
class ClientConfig:
    """Knobs of the network client.

    The backoff triple intentionally matches :class:`ServiceConfig` — the
    client retries its network hop the same way the supervisor retries
    its worker hop.
    """

    connect_timeout: float = 5.0
    #: Socket read timeout while waiting for a response frame.  A request
    #: whose response does not arrive in time is treated as lost and
    #: resent (updates are idempotent, so this is always safe).
    response_timeout: float = 60.0
    max_retries: int = 8
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.25
    seed: int = 0
    #: Stable identity for exactly-once updates.  ``None`` generates a
    #: fresh UUID per client object; pass an explicit id to keep the
    #: identity stable across client restarts.
    client_id: Optional[str] = None
    max_frame_bytes: int = framing.MAX_FRAME_BYTES

    def __post_init__(self):
        if self.connect_timeout <= 0 or self.response_timeout <= 0:
            raise ServiceError("client timeouts must be positive")
        if self.max_retries < 0:
            raise ServiceError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ServiceError("backoff knobs must be non-negative")


@dataclass
class ClientStats:
    """Client-side observability counters."""

    requests: int = 0
    resends: int = 0
    reconnects: int = 0
    busy_rejections: int = 0
    frame_errors: int = 0
    timeouts: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class EclipseClient:
    """Blocking TCP client for :class:`~repro.service.netserver.EclipseNetServer`.

    Connects lazily on first use and transparently reconnects after any
    network-level failure.  Safe to use as a context manager.  Not
    thread-safe — use one client per thread (each gets its own idempotency
    stream anyway).
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        config: Optional[ClientConfig] = None,
    ):
        self.host = host
        self.port = int(port)
        self.config = config or ClientConfig()
        self.stats = ClientStats()
        self.client_id = self.config.client_id or f"ec-{uuid.uuid4().hex}"
        self._rng = np.random.default_rng(self.config.seed)
        self._sock: Optional[socket.socket] = None
        self._decoder: Optional[framing.FrameDecoder] = None
        self._next_req_id = 0
        self._next_client_seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Public API (mirrors EclipseService)
    # ------------------------------------------------------------------
    def query(self, ratios, deadline: Optional[float] = None) -> ServiceResult:
        """Run one ratio-range query; returns a :class:`ServiceResult`."""
        return self.query_batch([ratios], deadline=deadline)[0]

    def query_batch(
        self, specs: Sequence, deadline: Optional[float] = None
    ) -> List[ServiceResult]:
        """Run a batch of queries in one round trip (safe to retry)."""
        payload = self._new_request(
            specs=list(specs), deadline=deadline
        )
        response = self._request(framing.KIND_QUERY, payload)
        return [
            ServiceResult(
                gids=r["gids"],
                points=r["points"],
                method=r["method"],
                seq=r["seq"],
                degraded=r["degraded"],
            )
            for r in response["results"]
        ]

    def apply_updates(
        self,
        inserts=None,
        delete_gids=None,
        deadline: Optional[float] = None,
    ) -> UpdateAck:
        """Apply one durable update batch, exactly once.

        The batch is tagged ``(client_id, client_seq)``; any resend caused
        by a lost connection, a lost acknowledgement, or a server restart
        is deduplicated server-side against its fsynced log.
        """
        self._next_client_seq += 1
        payload = self._new_request(
            inserts=None if inserts is None else np.asarray(inserts),
            delete_gids=(
                None if delete_gids is None else np.asarray(delete_gids)
            ),
            client_id=self.client_id,
            client_seq=self._next_client_seq,
            deadline=deadline,
        )
        response = self._request(framing.KIND_UPDATE, payload)
        return UpdateAck(
            seq=response["seq"],
            insert_gids=response["insert_gids"],
            rows_deleted=response["rows_deleted"],
        )

    def ping(self) -> List[dict]:
        """Heartbeat every shard through the service; returns their infos."""
        return self._request(framing.KIND_PING, self._new_request())["shards"]

    def health(self) -> dict:
        """Server-process liveness (answered without touching the service)."""
        return self._request(framing.KIND_HEALTH, self._new_request())

    def ready(self) -> dict:
        """Readiness: accepting connections *and* the service answers."""
        return self._request(framing.KIND_READY, self._new_request())

    def server_stats(self) -> dict:
        """Service + server counters as ``{"service": ..., "server": ...}``."""
        return self._request(framing.KIND_STATS, self._new_request())

    def force_snapshot(self) -> List[dict]:
        """Force a durable snapshot of every shard."""
        return self._request(
            framing.KIND_SNAPSHOT, self._new_request()
        )["shards"]

    def close(self) -> None:
        """Drop the connection.  Idempotent; the client can reconnect later
        unless it is discarded."""
        self._drop_connection()
        self._closed = True

    def __enter__(self) -> "EclipseClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _new_request(self, **fields) -> dict:
        self._next_req_id += 1
        payload = {"id": self._next_req_id}
        payload.update(fields)
        return payload

    def _backoff(self, attempt: int) -> None:
        base = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2.0 ** max(0, attempt - 1)),
        )
        jitter = 1.0 + self.config.backoff_jitter * float(
            self._rng.uniform(-1.0, 1.0)
        )
        delay = max(0.0, base * jitter)
        if delay:
            time.sleep(delay)

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.config.connect_timeout
        )
        sock.settimeout(self.config.response_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - exotic transports
            pass
        self._sock = sock
        self._decoder = framing.FrameDecoder(self.config.max_frame_bytes)

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
        self._sock = None
        self._decoder = None

    def _read_frame(self):
        assert self._sock is not None and self._decoder is not None
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                return frame
            data = self._sock.recv(65536)
            if not data:
                raise ConnectionLostError("the server closed the connection")
            self._decoder.feed(data)

    def _request(self, kind: int, payload: dict, retryable: bool = True) -> dict:
        """One request/response exchange with reconnect-and-resend retries."""
        if self._closed:
            raise ServiceError("client is closed")
        self.stats.requests += 1
        attempts = self.config.max_retries + 1 if retryable else 1
        last: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self.stats.resends += 1
                self._backoff(attempt - 1)
            try:
                if self._sock is None:
                    if attempt > 1:
                        self.stats.reconnects += 1
                    self._ensure_connected()
                self._sock.sendall(framing.encode_frame(kind, payload))
                while True:
                    rkind, rpayload = self._read_frame()
                    if rkind == framing.KIND_BUSY:
                        self.stats.busy_rejections += 1
                        raise ServerBusyError(
                            str(
                                rpayload.get("message", "server busy")
                                if isinstance(rpayload, dict)
                                else rpayload
                            )
                        )
                    if not isinstance(rpayload, dict):
                        raise FrameError(
                            "response payload is not a dict", recoverable=True
                        )
                    if rkind == framing.KIND_ERROR:
                        if rpayload.get("id") is None:
                            # In-band notice that *some* frame the server
                            # read was corrupt — ours may have been eaten.
                            # Resend (idempotent either way).
                            raise ConnectionLostError(
                                f"server rejected a frame: "
                                f"{rpayload.get('message')}"
                            )
                        if rpayload.get("id") != payload["id"]:
                            continue  # stale response to an older attempt
                        raise self._map_error(rpayload)
                    if rkind != framing.KIND_OK:
                        raise FrameError(
                            f"unexpected response kind {rkind}",
                            recoverable=True,
                        )
                    if rpayload.get("id") != payload["id"]:
                        continue  # stale response to an older attempt
                    return rpayload
            except (ServerBusyError, ConnectionLostError, FrameError) as exc:
                if isinstance(exc, FrameError):
                    self.stats.frame_errors += 1
                last = exc
                self._drop_connection()
            except socket.timeout as exc:
                self.stats.timeouts += 1
                last = exc
                self._drop_connection()
            except OSError as exc:
                last = exc
                self._drop_connection()
        if isinstance(last, ServerBusyError):
            raise ServerBusyError(
                f"server still busy after {attempts} attempts: {last}"
            ) from last
        raise ConnectionLostError(
            f"request failed after {attempts} attempts "
            f"(last error: {last!r})"
        ) from last

    @staticmethod
    def _map_error(payload: dict) -> ReproError:
        """Rehydrate a server-side error into its original class."""
        name = payload.get("kind") or "ServiceError"
        message = str(payload.get("message", "server-side error"))
        cls = getattr(_errors, str(name), None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            try:
                return cls(message)
            except TypeError:  # pragma: no cover - exotic signatures
                pass
        return ServiceError(f"{name}: {message}")
