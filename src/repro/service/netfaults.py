"""Network-level fault injection: chaos proxy + end-to-end acceptance harness.

This module extends the PR 6 worker-level fault harness
(:mod:`repro.service.faults`) one layer up, to the *wire*:

* :class:`ChaosProxy` — a deterministic TCP proxy that sits between an
  :class:`EclipseClient` and an :class:`EclipseNetServer` and mangles
  traffic at frame granularity: fixed delays, dropped frames, duplicated
  frames, single-bit payload flips, frames truncated mid-transmission,
  and connections killed outright (RST) on a schedule.  Frame boundaries
  come from :class:`~repro.service.framing.RawFrameSplitter`, which
  forwards bytes *verbatim* — corruption injected here genuinely reaches
  the receiving side's CRC check instead of being laundered away by a
  re-encode.

* :func:`run_net_fault_injection` — replays one seeded mixed
  query/update workload through client → (chaos proxy) → TCP server →
  service, while a single-process reference :class:`DatasetSession`
  answers the same stream.  Every query answer must be byte-identical to
  the reference and every acknowledged update must survive — including
  across the server process being SIGKILLed mid-request and restarted
  with ``--recover``.  The server can run on a thread (in-process, fast,
  supports the worker-level :class:`FaultPlan` injector), as a spawned
  ``repro-eclipse serve`` subprocess (supports whole-process SIGKILL), or
  externally (bring your own server).

Everything is seeded: the workload, the proxy's RNG, the client's
backoff jitter.  A failing run replays exactly.
"""

from __future__ import annotations

import os
import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.session import DatasetSession
from repro.core.weights import RatioVector
from repro.data.generators import generate_dataset
from repro.errors import ServiceError
from repro.service import framing
from repro.service.faults import FaultInjector, FaultPlan
from repro.service.netclient import ClientConfig, EclipseClient
from repro.service.netserver import NetServerConfig, start_in_thread
from repro.service.supervisor import EclipseService, ServiceConfig

_DIRECTIONS = ("c2s", "s2c", "both")


@dataclass(frozen=True)
class NetFaultPlan:
    """What to break on the wire, and how often.

    Every ``*_every`` knob acts on a per-direction frame counter that is
    global across connections (so reconnects do not reset the schedule):
    the ``k``-th, ``2k``-th, ... frame in that direction is affected
    (``0`` = never).

    Attributes
    ----------
    delay, delay_every:
        Hold every ``k``-th frame for ``delay`` seconds before forwarding.
    drop_every:
        Silently discard every ``k``-th frame (a lost request forces a
        client timeout + resend; a lost response forces a resend that the
        server must deduplicate).
    duplicate_every:
        Forward every ``k``-th frame twice (redelivery — updates must be
        applied exactly once, stale responses must be skipped).
    bitflip_every:
        Flip one seeded payload bit of every ``k``-th frame (must be
        caught by the receiver's CRC, answered in-band, and resent).
    truncate_every:
        Forward only the first half of every ``k``-th frame, then kill
        the connection (a torn frame + mid-transfer connection loss).
    kill_conn_every:
        Abruptly reset (RST) the connection on every ``k``-th frame —
        mid-request when it fires client→server, mid-response when it
        fires server→client.
    direction:
        Which direction the plan applies to: ``"c2s"``, ``"s2c"`` or
        ``"both"``.
    seed:
        Seed of the proxy RNG (bit-flip offsets).
    """

    delay: float = 0.0
    delay_every: int = 0
    drop_every: int = 0
    duplicate_every: int = 0
    bitflip_every: int = 0
    truncate_every: int = 0
    kill_conn_every: int = 0
    direction: str = "both"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )
        for name in (
            "delay_every", "drop_every", "duplicate_every",
            "bitflip_every", "truncate_every", "kill_conn_every",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


_NET_PLAN_KEYS = {
    "delay": float,
    "delay_every": int,
    "drop_every": int,
    "duplicate_every": int,
    "bitflip_every": int,
    "truncate_every": int,
    "kill_conn_every": int,
    "direction": str,
    "seed": int,
}


def parse_net_plan(text: str) -> NetFaultPlan:
    """Parse ``"drop_every=17,bitflip_every=23,delay=0.01,delay_every=9"``."""
    values = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key = key.strip()
        if not sep or key not in _NET_PLAN_KEYS:
            raise ValueError(
                f"bad --chaos entry {part!r}; known keys: "
                f"{', '.join(sorted(_NET_PLAN_KEYS))}"
            )
        values[key] = _NET_PLAN_KEYS[key](raw.strip())
    return NetFaultPlan(**values)


class _ProxyConn:
    """One proxied connection pair with an abrupt (RST) kill switch."""

    def __init__(self, client: socket.socket, upstream: socket.socket):
        self.client = client
        self.upstream = upstream
        self._lock = threading.Lock()
        self.dead = False

    def kill(self, abrupt: bool = True) -> None:
        with self._lock:
            if self.dead:
                return
            self.dead = True
        for sock in (self.client, self.upstream):
            if abrupt:
                try:
                    # SO_LINGER with zero timeout turns close() into RST:
                    # the peer sees a hard connection reset, not a FIN.
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:
                pass


class ChaosProxy:
    """Deterministic frame-mangling TCP proxy (see the module docstring).

    Start with :meth:`start` (binds ``host:port``; port 0 picks a free
    one), point an :class:`EclipseClient` at :attr:`port`, and stop with
    :meth:`stop`.  Usable as a context manager.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: Optional[NetFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.plan = plan or NetFaultPlan()
        self.host = host
        self.port = int(port)
        self._rng = np.random.default_rng(self.plan.seed)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: set = set()
        self._lock = threading.Lock()
        self._counters = {"c2s": 0, "s2c": 0}
        self._stopping = False
        self.stats: Dict[str, int] = {
            "connections": 0,
            "upstream_failures": 0,
            "frames_forwarded": 0,
            "delayed": 0,
            "dropped": 0,
            "duplicated": 0,
            "bitflipped": 0,
            "truncated": 0,
            "conns_killed": 0,
        }

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        self.host, self.port = listener.getsockname()[:2]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            conn.kill(abrupt=False)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- data path ------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0
                )
            except OSError:
                with self._lock:
                    self.stats["upstream_failures"] += 1
                try:
                    client.close()
                except OSError:
                    pass
                continue
            for sock in (client, upstream):
                try:
                    sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                except OSError:
                    pass
            conn = _ProxyConn(client, upstream)
            with self._lock:
                self._conns.add(conn)
                self.stats["connections"] += 1
            for direction in ("c2s", "s2c"):
                threading.Thread(
                    target=self._pump,
                    args=(conn, direction),
                    name=f"chaos-proxy-{direction}",
                    daemon=True,
                ).start()

    def _pump(self, conn: _ProxyConn, direction: str) -> None:
        src = conn.client if direction == "c2s" else conn.upstream
        dst = conn.upstream if direction == "c2s" else conn.client
        splitter = framing.RawFrameSplitter()
        try:
            while not self._stopping and not conn.dead:
                data = src.recv(65536)
                if not data:
                    break
                splitter.feed(data)
                while True:
                    chunk = splitter.next_chunk()
                    if chunk is None:
                        break
                    if not self._forward(chunk, dst, direction, conn):
                        return
            tail = splitter.flush_tail()
            if tail and not conn.dead:
                dst.sendall(tail)
        except OSError:
            pass
        finally:
            # One side finished (EOF or error): close both halves.  The
            # client reconnects through its retry loop if it still cares.
            conn.kill(abrupt=False)
            with self._lock:
                self._conns.discard(conn)

    def _forward(
        self, chunk: bytes, dst: socket.socket, direction: str,
        conn: _ProxyConn,
    ) -> bool:
        """Apply the plan to one whole raw frame.  False = connection dead."""
        plan = self.plan
        if plan.direction not in ("both", direction):
            try:
                dst.sendall(chunk)
            except OSError:
                conn.kill(abrupt=False)
                return False
            return True
        with self._lock:
            self._counters[direction] += 1
            count = self._counters[direction]
            self.stats["frames_forwarded"] += 1

        def hits(every: int) -> bool:
            return bool(every) and count % every == 0

        if hits(plan.delay_every) and plan.delay > 0:
            with self._lock:
                self.stats["delayed"] += 1
            time.sleep(plan.delay)
        if hits(plan.kill_conn_every):
            with self._lock:
                self.stats["conns_killed"] += 1
            conn.kill()
            return False
        if hits(plan.truncate_every):
            with self._lock:
                self.stats["truncated"] += 1
            try:
                dst.sendall(chunk[: max(1, len(chunk) // 2)])
            except OSError:
                pass
            conn.kill()
            return False
        if hits(plan.drop_every):
            with self._lock:
                self.stats["dropped"] += 1
            return True
        if hits(plan.bitflip_every) and len(chunk) > framing.FRAME_HEADER.size:
            # Flip one payload bit, past the header: the magic and length
            # stay valid, so the damage must be caught by the CRC check.
            span = len(chunk) - framing.FRAME_HEADER.size
            offset = framing.FRAME_HEADER.size + int(
                self._rng.integers(span)
            )
            mangled = bytearray(chunk)
            mangled[offset] ^= 0x20
            chunk = bytes(mangled)
            with self._lock:
                self.stats["bitflipped"] += 1
        try:
            dst.sendall(chunk)
            if hits(plan.duplicate_every):
                with self._lock:
                    self.stats["duplicated"] += 1
                dst.sendall(chunk)
        except OSError:
            conn.kill(abrupt=False)
            return False
        return True


@dataclass
class NetFaultReport:
    """Outcome of one :func:`run_net_fault_injection` run."""

    steps: int
    queries: int
    update_batches: int
    mismatches: int
    server_restarts: int
    #: ``True``/``False`` when a graceful drain was attempted (thread and
    #: subprocess modes), ``None`` when the server is external.
    drain_clean: Optional[bool]
    client_stats: Dict[str, int]
    proxy_stats: Dict[str, int]
    server_stats: Optional[Dict[str, object]]
    examples: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every answer byte-identical, no acked update lost, clean drain."""
        return self.mismatches == 0 and self.drain_clean is not False


def _src_path() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _inject_spec(plan: FaultPlan) -> str:
    parts = []
    if plan.kill_every:
        parts += [f"kill_every={plan.kill_every}", f"kill_mode={plan.kill_mode}"]
    if plan.drop_response_rate:
        parts.append(f"drop={plan.drop_response_rate}")
    if plan.response_delay:
        parts.append(f"delay={plan.response_delay}")
    if plan.corrupt_snapshot:
        parts += [
            f"corrupt={plan.corrupt_snapshot}",
            f"corrupt_every={plan.corrupt_every}",
        ]
    parts.append(f"seed={plan.seed}")
    return ",".join(parts)


def _free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class _SubprocessServer:
    """Spawn/kill/restart ``repro-eclipse serve`` as a real OS process."""

    def __init__(
        self,
        dataset: str,
        n: int,
        dimensions: int,
        seed: int,
        config: ServiceConfig,
        snapshot_dir: str,
        plan: Optional[FaultPlan],
        port: int,
    ):
        self.dataset = dataset
        self.n = n
        self.dimensions = dimensions
        self.seed = seed
        self.config = config
        self.snapshot_dir = snapshot_dir
        self.plan = plan
        self.port = port
        self.host = "127.0.0.1"
        self.log_path = os.path.join(snapshot_dir, "netserver.log")
        self.proc: Optional[subprocess.Popen] = None

    def _command(self, recover: bool) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro.cli", "serve",
            "--listen", self.host, "--port", str(self.port),
            "--dataset", self.dataset, "--n", str(self.n),
            "--dimensions", str(self.dimensions), "--seed", str(self.seed),
            "--shards", str(self.config.num_shards),
            "--deadline", str(self.config.deadline),
            "--retries", str(self.config.max_retries),
            "--snapshot-every", str(self.config.snapshot_every),
            "--method", self.config.method,
            "--snapshot-dir", self.snapshot_dir,
        ]
        if recover:
            cmd.append("--recover")
        if self.plan is not None:
            cmd += ["--inject", _inject_spec(self.plan)]
        return cmd

    def start(self, recover: bool = False) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (_src_path(), env.get("PYTHONPATH")) if p
        )
        with open(self.log_path, "ab") as log:
            self.proc = subprocess.Popen(
                self._command(recover),
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )

    def sigkill(self) -> None:
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait(timeout=30.0)

    def terminate(self) -> Optional[int]:
        """SIGTERM (graceful drain) and return the exit code."""
        if self.proc is None:
            return None
        if self.proc.poll() is None:
            self.proc.terminate()
        try:
            return self.proc.wait(timeout=120.0)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30.0)
            return self.proc.returncode


def _wait_ready(host: str, port: int, timeout: float = 120.0) -> None:
    """Poll the server's readiness endpoint until it answers ready."""
    probe = EclipseClient(
        host, port,
        ClientConfig(connect_timeout=1.0, response_timeout=15.0, max_retries=0),
    )
    deadline = time.monotonic() + timeout
    try:
        while time.monotonic() < deadline:
            try:
                if probe.ready().get("ready"):
                    return
            except (ServiceError, OSError):
                pass
            time.sleep(0.2)
    finally:
        probe.close()
    raise ServiceError(
        f"server at {host}:{port} did not become ready within {timeout:g}s"
    )


def run_net_fault_injection(
    dataset: str = "ANTI",
    n: int = 1500,
    dimensions: int = 3,
    steps: int = 30,
    update_fraction: float = 0.3,
    batch: int = 4,
    update_size: int = 16,
    net_plan: Optional[NetFaultPlan] = None,
    plan: Optional[FaultPlan] = None,
    config: Optional[ServiceConfig] = None,
    client_config: Optional[ClientConfig] = None,
    kill_server_every: int = 0,
    seed: int = 0,
    verify: bool = True,
    server: str = "thread",
    host: Optional[str] = None,
    port: Optional[int] = None,
    snapshot_dir: Optional[str] = None,
    data: Optional[np.ndarray] = None,
) -> NetFaultReport:
    """Replay a seeded workload through the full network stack and verify it.

    The same mixed query/update stream as
    :func:`repro.service.faults.run_fault_injection`, but driven through
    ``EclipseClient → (ChaosProxy) → EclipseNetServer → EclipseService``.
    When ``verify`` is on, a single-process :class:`DatasetSession` over
    the same data answers every query too, and the harness asserts global
    row ids and coordinate *bytes* match exactly; acknowledged updates
    feed the position→gid map, so a lost acked update shows up as a
    mismatch on the next query.

    ``server`` selects where the service lives:

    * ``"thread"`` — in-process :func:`start_in_thread` server.  Supports
      the worker-level ``plan`` injector directly; ``kill_server_every``
      is not available (there is no separate process to SIGKILL).
    * ``"subprocess"`` — a spawned ``repro-eclipse serve`` process.
      ``kill_server_every`` SIGKILLs it *while a request is in flight* on
      every ``k``-th step, then restarts it with ``--recover`` on the
      same snapshot directory; the client is expected to ride through via
      reconnect + idempotent resend.  Requires ``snapshot_dir``.
    * ``"external"`` — connect to an already-running server at
      ``host:port``; no lifecycle management, ``drain_clean`` is ``None``.
      With ``verify`` the external server must be serving exactly the
      dataset this harness generates.
    """
    if server not in ("thread", "subprocess", "external"):
        raise ValueError(f"unknown server mode {server!r}")
    if kill_server_every and server != "subprocess":
        raise ServiceError(
            "kill_server_every needs server='subprocess' (there must be a "
            "separate OS process to SIGKILL)"
        )
    if kill_server_every and not snapshot_dir:
        raise ServiceError(
            "kill_server_every needs a snapshot_dir: recovery after a "
            "SIGKILL replays the write-ahead logs stored there"
        )
    config = config or ServiceConfig()
    if data is None:
        data = generate_dataset(dataset.upper(), n, dimensions, seed=seed)
    else:
        if server == "subprocess":
            raise ServiceError(
                "server='subprocess' regenerates the dataset from "
                "(dataset, n, dimensions, seed); pass those instead of data"
            )
        data = np.asarray(data, dtype=float)
        n, dimensions = int(data.shape[0]), int(data.shape[1])
    lows = data.min(axis=0)
    highs = data.max(axis=0)
    workload = np.random.default_rng(seed + 1)
    kill_rng = np.random.default_rng(seed + 2)
    reference = DatasetSession(data) if verify else None
    ref_gids = np.arange(n, dtype=np.intp)
    queries = update_batches = mismatches = restarts = 0
    examples: List[str] = []
    drain_clean: Optional[bool] = None
    server_stats: Optional[Dict[str, object]] = None

    # -- bring up the server -------------------------------------------
    service = None
    handle = None
    sub: Optional[_SubprocessServer] = None
    if server == "thread":
        injector = FaultInjector(plan) if plan is not None else None
        service = EclipseService(
            data, config=config, snapshot_dir=snapshot_dir, injector=injector
        )
        handle = start_in_thread(service, NetServerConfig(port=0))
        server_host, server_port = handle.host, handle.port
    elif server == "subprocess":
        if snapshot_dir is None:
            raise ServiceError("server='subprocess' needs a snapshot_dir")
        os.makedirs(snapshot_dir, exist_ok=True)
        sub = _SubprocessServer(
            dataset=dataset.upper(), n=n, dimensions=dimensions, seed=seed,
            config=config, snapshot_dir=snapshot_dir, plan=plan,
            port=_free_port(),
        )
        sub.start(recover=False)
        server_host, server_port = sub.host, sub.port
    else:
        if host is None or port is None:
            raise ServiceError("server='external' needs host and port")
        server_host, server_port = host, int(port)

    proxy: Optional[ChaosProxy] = None
    client: Optional[EclipseClient] = None
    try:
        if server == "subprocess":
            _wait_ready(server_host, server_port)
        if net_plan is not None:
            proxy = ChaosProxy(server_host, server_port, plan=net_plan)
            proxy.start()
            connect_host, connect_port = proxy.host, proxy.port
        else:
            connect_host, connect_port = server_host, server_port
        client = EclipseClient(
            connect_host, connect_port,
            client_config or ClientConfig(
                connect_timeout=2.0,
                response_timeout=max(5.0, config.deadline),
                max_retries=30,
                backoff_base=0.05,
                backoff_cap=0.5,
                seed=seed,
            ),
        )

        def run_step(step_op):
            """Run one step, optionally SIGKILLing the server mid-flight."""
            nonlocal restarts
            box: Dict[str, object] = {}

            def target():
                try:
                    box["result"] = step_op()
                except BaseException as exc:  # rejoined below
                    box["error"] = exc

            thread = threading.Thread(target=target)
            thread.start()
            # Let the request reach the wire, then yank the process out
            # from under it.
            time.sleep(float(kill_rng.uniform(0.02, 0.12)))
            assert sub is not None
            sub.sigkill()
            restarts += 1
            sub.start(recover=True)
            _wait_ready(server_host, server_port)
            thread.join(timeout=300.0)
            if thread.is_alive():
                raise ServiceError("a client request hung across the restart")
            if "error" in box:
                raise box["error"]  # type: ignore[misc]
            return box["result"]

        for step in range(steps):
            kill_now = bool(
                kill_server_every and (step + 1) % kill_server_every == 0
            )
            if workload.uniform() < update_fraction:
                half = max(1, update_size // 2)
                inserts = lows + workload.uniform(
                    size=(half, dimensions)
                ) * (highs - lows)
                current = int(ref_gids.size)
                num_deletes = min(half, max(0, current - 1))
                positions = (
                    np.sort(
                        workload.choice(
                            current, size=num_deletes, replace=False
                        )
                    )
                    if num_deletes
                    else np.empty(0, dtype=np.intp)
                )
                delete_gids = ref_gids[positions]

                def op():
                    return client.apply_updates(
                        inserts=inserts, delete_gids=delete_gids
                    )

                ack = run_step(op) if kill_now else op()
                if reference is not None:
                    reference.apply_updates(
                        inserts=inserts,
                        deletes=positions if positions.size else None,
                    )
                ref_gids = np.concatenate(
                    [np.delete(ref_gids, positions), ack.insert_gids]
                )
                update_batches += 1
            else:
                specs = []
                for _ in range(batch):
                    low = float(workload.uniform(0.1, 1.0))
                    specs.append(
                        RatioVector.uniform(
                            low, low + float(workload.uniform(0.2, 2.5)),
                            dimensions,
                        )
                    )

                def op():
                    return client.query_batch(specs)

                results = run_step(op) if kill_now else op()
                queries += len(specs)
                if reference is not None:
                    for spec, got in zip(specs, results):
                        want = reference.run(ratios=spec)
                        same_rows = np.array_equal(
                            ref_gids[want.indices], got.gids
                        )
                        same_bytes = (
                            want.points.shape == got.points.shape
                            and want.points.tobytes() == got.points.tobytes()
                        )
                        if not (same_rows and same_bytes):
                            mismatches += 1
                            if len(examples) < 5:
                                examples.append(
                                    f"step {step}: reference "
                                    f"{ref_gids[want.indices].tolist()} != "
                                    f"service {got.gids.tolist()}"
                                )
        try:
            server_stats = client.server_stats()
        except ServiceError:
            server_stats = None
        client_stats = client.stats.as_dict()
    finally:
        if client is not None:
            client.close()
        if proxy is not None:
            proxy.stop()
        # -- graceful drain ---------------------------------------------
        if server == "thread":
            assert handle is not None and service is not None
            try:
                handle.shutdown()
                drain_clean = True
            except ServiceError:
                drain_clean = False
            finally:
                service.close()
        elif server == "subprocess":
            assert sub is not None
            drain_clean = sub.terminate() == 0

    return NetFaultReport(
        steps=steps,
        queries=queries,
        update_batches=update_batches,
        mismatches=mismatches,
        server_restarts=restarts,
        drain_clean=drain_clean,
        client_stats=client_stats,
        proxy_stats=dict(proxy.stats) if proxy is not None else {},
        server_stats=server_stats,
        examples=examples,
    )
