"""Asyncio TCP front end over :class:`EclipseService`.

One :class:`EclipseNetServer` owns a listening socket and serves the
framed wire protocol of :mod:`repro.service.framing`.  The design goals,
in order:

* **Backpressure end to end.**  Each connection has a *bounded* request
  queue: the reader stops pulling bytes off the socket while the queue is
  full (TCP flow control then pushes back on the client), and responses
  are written with ``await writer.drain()`` so a slow-reading client
  throttles its own connection instead of ballooning server memory.

* **Admission control.**  At most ``max_connections`` connections are
  served; beyond that, new connections are shed *at accept time* with a
  ``BUSY`` frame and an immediate close — a connection flood degrades
  into fast rejections, never into unbounded buffering.

* **Deadline propagation.**  A request's ``deadline`` field rides through
  :meth:`EclipseService.query_batch`/:meth:`~EclipseService.apply_updates`
  into the supervisor's per-request deadline machinery, overriding
  :attr:`ServiceConfig.deadline` for exactly that request.

* **Fault isolation.**  A malformed frame with a trustable header (CRC
  mismatch, oversized payload, undecodable pickle) is answered with an
  in-band ``ERROR`` frame and the connection keeps serving; only a
  desynchronised stream (bad magic / unknown version) closes that one
  connection.  Nothing a single connection does can take down the accept
  loop.

* **Graceful drain.**  :meth:`EclipseNetServer.drain` stops accepting,
  stops *reading* (in-flight requests already queued are finished and
  their responses flushed), snapshots every shard (the write-ahead logs
  are already fsynced per acknowledged batch, so the snapshot only
  shortens the next restart's replay tail), and returns.  The CLI wires
  SIGTERM/SIGINT to it; a drained exit is exit code 0.

The blocking :class:`EclipseService` calls run on a small thread pool via
``run_in_executor`` — the service's own dispatcher serialises them, the
pool just keeps the event loop free.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.errors import FrameError, ReproError, ServiceError
from repro.service import framing
from repro.service.supervisor import EclipseService

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7431

_LISTEN_ENV = "REPRO_SERVICE_LISTEN"


def _parse_listen(text: str) -> Optional[Tuple[Optional[str], Optional[int]]]:
    """Parse ``"host"``, ``":port"`` or ``"host:port"``; ``None`` if bad."""
    text = text.strip()
    if not text:
        return None
    host: Optional[str] = None
    port: Optional[int] = None
    if ":" in text:
        head, _, tail = text.rpartition(":")
        host = head.strip() or None
        try:
            port = int(tail)
        except ValueError:
            return None
        if not 0 <= port <= 65535:
            return None
    else:
        host = text
    return host, port


def resolve_listen(
    host: Optional[str] = None, port: Optional[int] = None
) -> Tuple[str, int]:
    """Resolve the bind address: explicit args > env > built-in default.

    The ``REPRO_SERVICE_LISTEN`` environment variable supplies the default
    as ``"host"``, ``":port"`` or ``"host:port"``.  An unparseable value
    raises a :class:`RuntimeWarning` and falls back to the built-in
    default — misconfiguration is surfaced, never silently fatal (the
    same convention as ``REPRO_KERNEL_THREADS``).
    """
    env_host: Optional[str] = None
    env_port: Optional[int] = None
    env = os.environ.get(_LISTEN_ENV)
    if env is not None:
        parsed = _parse_listen(env)
        if parsed is None:
            warnings.warn(
                f"ignoring unparseable {_LISTEN_ENV}={env!r} "
                f"(expected 'host', ':port' or 'host:port'); using the "
                f"default {DEFAULT_HOST}:{DEFAULT_PORT}",
                RuntimeWarning,
                stacklevel=2,
            )
        else:
            env_host, env_port = parsed
    if host is None:
        host = env_host if env_host is not None else DEFAULT_HOST
    if port is None:
        port = env_port if env_port is not None else DEFAULT_PORT
    return host, int(port)


@dataclass(frozen=True)
class NetServerConfig:
    """Knobs of the TCP front end.

    Attributes
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port (the bound port
        is available as :attr:`EclipseNetServer.port` after ``start``).
    max_connections:
        Served-connection cap; further connections are shed at accept
        time with a ``BUSY`` frame.
    queue_depth:
        Bounded per-connection request queue.  While it is full the
        reader stops consuming the socket, so TCP flow control pushes the
        backpressure to the client.
    max_frame_bytes:
        Per-frame payload ceiling; larger frames are rejected in-band.
    drain_timeout:
        Seconds :meth:`EclipseNetServer.drain` waits for in-flight
        requests to finish before cancelling the stragglers.
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    max_connections: int = 64
    queue_depth: int = 32
    max_frame_bytes: int = framing.MAX_FRAME_BYTES
    drain_timeout: float = 30.0


@dataclass
class NetServerStats:
    """Server-level observability counters."""

    connections_accepted: int = 0
    connections_shed: int = 0
    connections_closed: int = 0
    requests_served: int = 0
    queries_served: int = 0
    updates_served: int = 0
    frames_rejected: int = 0
    connection_aborts: int = 0
    drained_requests: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


_EOF = ("eof", None)


class _Connection:
    """Per-connection state: bounded queue + reader/worker task pair."""

    def __init__(self, reader, writer, depth: int, max_frame_bytes: int):
        self.reader = reader
        self.writer = writer
        self.depth = int(depth)
        self.decoder = framing.FrameDecoder(max_frame_bytes)
        # The queue itself is unbounded so the EOF sentinel can always be
        # enqueued without blocking; bounded-ness is enforced in enqueue().
        self.queue: "asyncio.Queue" = asyncio.Queue()
        self.space = asyncio.Event()
        self.space.set()
        self.reader_task: Optional[asyncio.Task] = None
        self.worker_task: Optional[asyncio.Task] = None

    async def enqueue(self, item) -> None:
        """Backpressured put: waits while the queue is at ``depth``."""
        while self.queue.qsize() >= self.depth:
            self.space.clear()
            await self.space.wait()
        self.queue.put_nowait(item)

    def mark_space(self) -> None:
        if self.queue.qsize() < self.depth:
            self.space.set()


class EclipseNetServer:
    """Serve a :class:`EclipseService` over framed TCP (see module docs)."""

    def __init__(
        self,
        service: EclipseService,
        config: Optional[NetServerConfig] = None,
    ):
        self.service = service
        self.config = config or NetServerConfig()
        self.stats = NetServerStats()
        self.host = self.config.host
        self.port = self.config.port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._conns: Set[_Connection] = set()
        self._draining = False
        self._drained = False
        self._started_at = time.monotonic()
        self._shutdown_event: Optional[asyncio.Event] = None
        self._executor = ThreadPoolExecutor(
            max_workers=min(32, self.config.max_connections + 4),
            thread_name_prefix="eclipse-net",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting.  Raises ``OSError`` on a bad bind."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        self._started_at = time.monotonic()

    async def serve_until_shutdown(self, on_started=None) -> None:
        """``start`` + block until :meth:`request_shutdown`, then drain."""
        await self.start()
        self._shutdown_event = asyncio.Event()
        if on_started is not None:
            on_started()
        await self._shutdown_event.wait()
        await self.drain()

    def request_shutdown(self) -> None:
        """Thread-safe: make :meth:`serve_until_shutdown` begin draining."""
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None:
            raise ServiceError("the server has not started serving yet")
        loop.call_soon_threadsafe(event.set)

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, fsync state.

        In-flight means *already queued on a connection*: readers are
        stopped first, workers finish what the bounded queues hold and
        flush the responses, then every shard is snapshotted (the WAL
        already holds every acknowledged batch fsynced — the snapshot
        pins a zero-replay warm restart).  Idempotent.
        """
        if self._drained:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        conns = list(self._conns)
        for conn in conns:
            if conn.reader_task is not None:
                conn.reader_task.cancel()
        workers = [c.worker_task for c in conns if c.worker_task is not None]
        if workers:
            done, pending = await asyncio.wait(
                workers, timeout=self.config.drain_timeout
            )
            self.stats.drained_requests += len(done)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        self._executor.shutdown(wait=True)
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self.service.force_snapshot)
        except ServiceError:
            # A shard that cannot snapshot does not block the drain: its
            # acked state is already durable in the fsynced WAL.
            pass
        self._drained = True

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        if self._draining or len(self._conns) >= self.config.max_connections:
            self.stats.connections_shed += 1
            try:
                writer.write(framing.encode_frame(framing.KIND_BUSY, {
                    "message": (
                        "draining" if self._draining
                        else f"at the {self.config.max_connections}-connection cap"
                    ),
                    "draining": self._draining,
                }))
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
            return
        self.stats.connections_accepted += 1
        conn = _Connection(
            reader, writer, self.config.queue_depth, self.config.max_frame_bytes
        )
        self._conns.add(conn)
        conn.reader_task = asyncio.ensure_future(self._read_loop(conn))
        conn.worker_task = asyncio.ensure_future(self._work_loop(conn))
        try:
            await asyncio.wait({conn.reader_task, conn.worker_task})
        finally:
            self._conns.discard(conn)
            self.stats.connections_closed += 1
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already gone
                pass

    async def _read_loop(self, conn: _Connection) -> None:
        try:
            while True:
                data = await conn.reader.read(65536)
                if not data:
                    break
                conn.decoder.feed(data)
                while True:
                    try:
                        frame = conn.decoder.next_frame()
                    except FrameError as exc:
                        self.stats.frames_rejected += 1
                        await conn.enqueue(("frame_error", exc))
                        if not exc.recoverable:
                            return
                        continue
                    if frame is None:
                        break
                    await conn.enqueue(("request", frame))
        except (ConnectionError, OSError):
            self.stats.connection_aborts += 1
        except asyncio.CancelledError:
            pass
        finally:
            conn.queue.put_nowait(_EOF)

    async def _work_loop(self, conn: _Connection) -> None:
        try:
            while True:
                tag, value = await conn.queue.get()
                conn.mark_space()
                if tag == "eof":
                    return
                if tag == "frame_error":
                    exc: FrameError = value
                    await self._send(conn, framing.KIND_ERROR, {
                        "id": None,
                        "kind": "FrameError",
                        "message": str(exc),
                        "recoverable": exc.recoverable,
                    })
                    if not exc.recoverable:
                        return
                    continue
                kind, payload = value
                response_kind, response = await self._dispatch(kind, payload)
                await self._send(conn, response_kind, response)
        except (ConnectionError, OSError):
            self.stats.connection_aborts += 1
        except asyncio.CancelledError:
            pass

    async def _send(self, conn: _Connection, kind: int, payload: object) -> None:
        conn.writer.write(framing.encode_frame(kind, payload))
        await conn.writer.drain()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, kind: int, payload: object) -> Tuple[int, dict]:
        if not isinstance(payload, dict):
            return framing.KIND_ERROR, {
                "id": None,
                "kind": "FrameError",
                "message": f"request payload must be a dict, got "
                           f"{type(payload).__name__}",
            }
        req_id = payload.get("id")
        loop = asyncio.get_running_loop()
        try:
            if kind == framing.KIND_HEALTH:
                # Liveness is answered on the event loop itself — it must
                # stay cheap and honest even while the service is busy.
                self.stats.requests_served += 1
                return framing.KIND_OK, {"id": req_id, **self._health()}
            if kind == framing.KIND_READY:
                self.stats.requests_served += 1
                return framing.KIND_OK, {
                    "id": req_id, **(await self._readiness(loop))
                }
            if kind == framing.KIND_QUERY:
                result = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.query_batch(
                        payload["specs"], deadline=payload.get("deadline")
                    ),
                )
                self.stats.requests_served += 1
                self.stats.queries_served += len(result)
                return framing.KIND_OK, {
                    "id": req_id,
                    "results": [
                        {
                            "gids": r.gids,
                            "points": r.points,
                            "method": r.method,
                            "seq": r.seq,
                            "degraded": r.degraded,
                        }
                        for r in result
                    ],
                }
            if kind == framing.KIND_UPDATE:
                client_id = payload.get("client_id")
                client_key = (
                    (client_id, int(payload["client_seq"]))
                    if client_id is not None
                    else None
                )
                ack = await loop.run_in_executor(
                    self._executor,
                    lambda: self.service.apply_updates(
                        inserts=payload.get("inserts"),
                        delete_gids=payload.get("delete_gids"),
                        client_key=client_key,
                        deadline=payload.get("deadline"),
                    ),
                )
                self.stats.requests_served += 1
                self.stats.updates_served += 1
                return framing.KIND_OK, {
                    "id": req_id,
                    "seq": ack.seq,
                    "insert_gids": ack.insert_gids,
                    "rows_deleted": ack.rows_deleted,
                }
            if kind == framing.KIND_PING:
                payloads = await loop.run_in_executor(
                    self._executor, self.service.ping
                )
                self.stats.requests_served += 1
                return framing.KIND_OK, {"id": req_id, "shards": payloads}
            if kind == framing.KIND_SNAPSHOT:
                payloads = await loop.run_in_executor(
                    self._executor, self.service.force_snapshot
                )
                self.stats.requests_served += 1
                return framing.KIND_OK, {"id": req_id, "shards": payloads}
            if kind == framing.KIND_STATS:
                self.stats.requests_served += 1
                return framing.KIND_OK, {
                    "id": req_id,
                    "service": self.service.stats.as_dict(),
                    "server": self.stats.as_dict(),
                }
            return framing.KIND_ERROR, {
                "id": req_id,
                "kind": "FrameError",
                "message": f"unsupported request kind {kind}",
            }
        except ReproError as exc:
            return framing.KIND_ERROR, {
                "id": req_id,
                "kind": type(exc).__name__,
                "message": str(exc),
            }
        except Exception as exc:  # defensive: a bug must not kill the loop
            return framing.KIND_ERROR, {
                "id": req_id,
                "kind": "ServiceError",
                "message": f"internal error: {exc}",
            }

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "draining": self._draining,
            "connections": len(self._conns),
            "uptime": time.monotonic() - self._started_at,
            "acked_seq": self.service.acked_seq,
        }

    async def _readiness(self, loop) -> dict:
        if self._draining:
            return {"ready": False, "reason": "draining"}
        try:
            shards = await loop.run_in_executor(
                self._executor, self.service.ping
            )
        except ReproError as exc:
            return {"ready": False, "reason": str(exc)}
        return {"ready": True, "shards": len(shards)}


class NetServerHandle:
    """A server running on a background thread (for tests and harnesses)."""

    def __init__(self, server: EclipseNetServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def shutdown(self, timeout: float = 60.0) -> None:
        """Drain gracefully and join the serving thread (idempotent)."""
        if self.thread.is_alive():
            try:
                self.server.request_shutdown()
            except ServiceError:
                pass
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():  # pragma: no cover - drain is bounded
            raise ServiceError("the server thread did not drain in time")


def start_in_thread(
    service: EclipseService, config: Optional[NetServerConfig] = None
) -> NetServerHandle:
    """Run an :class:`EclipseNetServer` on a daemon thread; returns a handle.

    Blocks until the server is accepting (or raises its bind error).  The
    handle's :meth:`~NetServerHandle.shutdown` performs a graceful drain.
    """
    server = EclipseNetServer(service, config)
    started = threading.Event()
    failures = []

    def run() -> None:
        try:
            asyncio.run(server.serve_until_shutdown(on_started=started.set))
        except BaseException as exc:  # surfaced to the starting thread
            failures.append(exc)
        finally:
            started.set()

    thread = threading.Thread(
        target=run, name="eclipse-net-server", daemon=True
    )
    thread.start()
    started.wait(timeout=30.0)
    if failures:
        raise failures[0]
    if not started.is_set():  # pragma: no cover - startup is local and fast
        raise ServiceError("the server did not start within 30s")
    return NetServerHandle(server, thread)
