"""Checksummed snapshot container: the on-disk format of session state.

A snapshot file is one pickled payload behind a fixed-size header::

    offset  size  field
    0       8     magic  b"RPROSNAP"
    8       4     format version  (little-endian uint32)
    12      8     payload length  (little-endian uint64)
    20      32    SHA-256 digest of the payload bytes
    52      ...   payload (pickle protocol >= 2)

The header exists so a *damaged* file is always distinguishable from a
*valid* one: a truncated write fails the length check, a bit flip fails the
digest check, an old/foreign file fails the magic/version check.  Every
failure mode raises :class:`~repro.errors.SnapshotError` with a message
naming what was wrong; loaders never fall through to unpickling suspect
bytes (an attacker-shaped concern, but here simply a crash-consistency one:
``pickle`` on garbage can raise nearly anything or, worse, succeed).

Writes are atomic: the payload goes to a ``.tmp`` sibling which is fsynced
and ``os.replace``d over the target, so a crash mid-write leaves the
previous snapshot intact rather than a half-written file.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from typing import Any

from repro.errors import SnapshotError

#: File magic; changing the layout below requires bumping :data:`VERSION`.
MAGIC = b"RPROSNAP"

#: On-disk format version.  Readers reject snapshots from any other version
#: (there is no cross-version migration — a mismatch means "rebuild cold").
VERSION = 1

_HEADER = struct.Struct("<8sIQ32s")


def write_payload(path: str, payload: Any) -> int:
    """Atomically write ``payload`` (pickled) to ``path``; return file size.

    The bytes are written to ``path + ".tmp"``, flushed and fsynced, then
    renamed over ``path`` — readers only ever observe the previous complete
    snapshot or the new complete snapshot.
    """
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(blob).digest()
    header = _HEADER.pack(MAGIC, VERSION, len(blob), digest)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return len(header) + len(blob)


def read_payload(path: str) -> Any:
    """Read and verify one snapshot file; return the unpickled payload.

    Raises
    ------
    SnapshotError
        If the file is missing, truncated, carries the wrong magic or
        format version, fails the checksum, or cannot be unpickled.  The
        message says which check failed — recovery paths log it and fall
        back to a cold rebuild.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise SnapshotError(f"snapshot {path!r} is unreadable: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise SnapshotError(
            f"snapshot {path!r} is truncated: {len(raw)} bytes is shorter "
            f"than the {_HEADER.size}-byte header"
        )
    magic, version, length, digest = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise SnapshotError(
            f"snapshot {path!r} has wrong magic {magic!r}; not a snapshot file"
        )
    if version != VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {version}, "
            f"this build reads version {VERSION}"
        )
    blob = raw[_HEADER.size :]
    if len(blob) != length:
        raise SnapshotError(
            f"snapshot {path!r} is truncated: header promises {length} "
            f"payload bytes, file holds {len(blob)}"
        )
    if hashlib.sha256(blob).digest() != digest:
        raise SnapshotError(f"snapshot {path!r} failed its checksum")
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise SnapshotError(
            f"snapshot {path!r} passed its checksum but cannot be decoded: "
            f"{exc}"
        ) from exc
