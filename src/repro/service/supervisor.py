"""The service supervisor: sharding, admission batching, fault tolerance.

:class:`EclipseService` serves eclipse queries and dataset updates from a
pool of shard worker processes (:mod:`repro.service.worker`), each holding
a long-lived :class:`~repro.core.session.DatasetSession` over one shard of
the data.  Rows are addressed by **global ids** assigned once and never
reused; a row with global id ``g`` lives on shard ``g % num_shards``, so
routing is stateless and a recovered worker reconstructs exactly the same
assignment.

**Admission batching.**  All client calls enqueue work on one FIFO queue
drained by a single dispatcher thread.  The dispatcher coalesces every
consecutively queued query into one *window* and answers the whole window
with one ``run_batch`` round-trip per shard — concurrently arriving queries
share one skyline / corner GEMM / index probe per shard, which is exactly
the amortisation :meth:`DatasetSession.run_batch` provides (the batch
break-even is single-digit).  Updates act as barriers: every query admitted
before an update batch is answered against the pre-update view, pinned by
the acknowledged sequence number (workers refuse to answer a query at any
other sequence number, so a torn or stale view is never served).

**Exact sharded answers.**  Each shard returns its *shard-local* eclipse
(global ids + points).  Eclipse dominance in corner-score space is
transitive, so the union of per-shard eclipses is a superset of the global
eclipse that contains every global maximal element; one final exact filter
over the merged candidates (the transformation, with the baseline fallback
when the ratio range makes it inapplicable) reproduces the single-process
answer byte for byte.

**Fault tolerance.**  Every worker round-trip carries a deadline; a missed
deadline, broken pipe, dead process, or stale view is retried with bounded
exponential backoff plus jitter after the worker is respawned from its
latest snapshot and write-ahead-log tail.  Updates are WAL-first and keyed
by sequence number, so a retried batch is never double-applied.  Under
overload (window longer than ``overload_threshold``) or repeated
index-path failure the window is shed to the transform path — degraded
throughput, identical answers — and the degradation is surfaced in
:class:`ServiceStats`.
"""

from __future__ import annotations

import itertools
import logging
import multiprocessing
import os
import queue
import shutil
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.baseline import eclipse_baseline_indices
from repro.core.dominance import as_dataset
from repro.core.transform import eclipse_transform_indices
from repro.core.weights import RatioVector, make_ratio_vector
from repro.errors import (
    DeadlineExceededError,
    DimensionMismatchError,
    InvalidWeightRangeError,
    ServiceError,
    WorkerCrashError,
)
from repro.service.worker import worker_main

logger = logging.getLogger(__name__)

# Workers are forked where possible: the shard base data is inherited
# copy-on-write instead of being re-pickled through a spawn, which keeps
# respawn — the hot path of crash recovery — cheap.
if "fork" in multiprocessing.get_all_start_methods():
    _MP = multiprocessing.get_context("fork")
else:  # pragma: no cover - non-POSIX fallback
    _MP = multiprocessing.get_context()


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the concurrent query service.

    Attributes
    ----------
    num_shards:
        Worker processes the dataset is partitioned across.
    deadline:
        Per-request round-trip budget in seconds.  A worker that does not
        answer within it is presumed hung, killed, and respawned.
    max_retries:
        Retries per request after the first attempt; each retry respawns
        the worker (when it died) and backs off exponentially.
    backoff_base, backoff_cap, backoff_jitter:
        Retry sleep = ``min(cap, base * 2**(attempt-1))`` scaled by a
        uniform ``1 ± jitter`` factor (seeded, so runs are reproducible).
    snapshot_every:
        Update batches a worker absorbs between automatic snapshots.  The
        WAL keeps the full history, so any retained snapshot (or none at
        all) suffices for recovery; this knob only tunes the warm-restart
        replay tail.
    overload_threshold:
        Admission-window length above which the window is shed to the
        transform path (identical answers, no index dependency).  ``0``
        disables shedding.
    method:
        Default query method handed to each shard's ``run_batch``.
    seed:
        Seed of the jitter RNG.
    threads:
        Kernel-executor worker threads *inside each shard worker*
        (:class:`~repro.core.session.DatasetSession`'s ``threads`` knob).
        ``None`` defers to the worker's ``REPRO_KERNEL_THREADS``
        environment.  Note the multiplication: ``num_shards`` processes
        each run up to ``threads`` kernel threads.
    dtype:
        Kernel compute dtype for each shard (``"float64"`` exact, or the
        ``"float32"`` fast path with exact fallback — byte-identical
        answers either way).
    kernel_backend:
        Kernel dispatch backend inside each shard worker (``"thread"``,
        ``"process"``, or ``"serial"``; ``None`` defers to the worker's
        ``REPRO_KERNEL_BACKEND`` environment).  Shard workers are
        themselves pool processes, so a ``"process"`` shard resolves
        nested kernel dispatch to the exact serial path rather than
        forking grandchildren — the knob is harmless there and useful
        when ``num_shards=1`` concentrates the kernels in one worker.
    index_budget_bytes:
        Resident byte budget of each shard session's index cache (the
        :class:`~repro.perf.advisor.IndexAdvisor` knob).  ``None`` defers
        to the worker's ``REPRO_INDEX_BUDGET_MB`` environment (unset =
        unbounded).  Re-applied after every snapshot load, so the
        service's configuration wins over the snapshot-era value.
    """

    num_shards: int = 2
    deadline: float = 30.0
    max_retries: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.25
    snapshot_every: int = 8
    overload_threshold: int = 0
    method: str = "auto"
    seed: int = 0
    threads: Optional[int] = None
    dtype: Optional[str] = None
    kernel_backend: Optional[str] = None
    index_budget_bytes: Optional[int] = None


@dataclass
class ServiceStats:
    """Service-level observability counters (the ``SessionStats`` analogue).

    The fault-tolerance contract rides on these: ``retries`` /
    ``worker_respawns`` / ``deadline_timeouts`` / ``dropped_responses``
    count the failures absorbed without surfacing to callers,
    ``warm_restarts`` vs ``cold_rebuilds`` split recoveries by whether the
    snapshot was usable (``snapshot_failures`` counts the corrupt /
    truncated / version-mismatched ones that demoted a recovery to cold),
    and ``degraded_windows`` / ``overload_sheds`` surface every window
    answered on the transform path instead of the configured method.
    """

    queries: int = 0
    query_windows: int = 0
    coalesced_queries: int = 0
    max_window: int = 0
    update_batches: int = 0
    rows_inserted: int = 0
    rows_deleted: int = 0
    retries: int = 0
    deadline_timeouts: int = 0
    dropped_responses: int = 0
    injected_kills: int = 0
    worker_respawns: int = 0
    fresh_starts: int = 0
    warm_restarts: int = 0
    cold_rebuilds: int = 0
    snapshot_failures: int = 0
    wal_records_replayed: int = 0
    snapshots_taken: int = 0
    degraded_windows: int = 0
    degraded_queries: int = 0
    overload_sheds: int = 0
    client_ack_replays: int = 0
    repair_redeliveries: int = 0
    supervisor_recoveries: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (stable keys; handy for JSON reports)."""
        return asdict(self)


@dataclass(frozen=True)
class ServiceResult:
    """Answer of one service query.

    ``gids`` are stable global row ids (ascending); ``points`` are the
    matching coordinate rows, byte-identical to what a single-process
    session answers for the same logical dataset state.  ``seq`` is the
    acknowledged update sequence number the answer is pinned to.
    """

    gids: np.ndarray
    points: np.ndarray
    method: str
    seq: int
    degraded: bool = False

    def __len__(self) -> int:
        return int(self.gids.size)


@dataclass(frozen=True)
class UpdateAck:
    """Acknowledgement of one durable update batch."""

    seq: int
    insert_gids: np.ndarray
    rows_deleted: int


class _NullInjector:
    """No-fault default injector (see :mod:`repro.service.faults`)."""

    def on_update(self, seq: int, num_shards: int):
        return None, None

    def drop_response(self, shard: int) -> bool:
        return False

    def response_delay(self) -> float:
        return 0.0

    def before_respawn(self, shard: int, snapshot_path: str) -> None:
        return None


class _DroppedResponseError(WorkerCrashError):
    """Internal: an injected response drop (worker itself is healthy)."""


class _IndexPathError(ServiceError):
    """Internal: a shard answered with an execution error response."""


@dataclass
class _QueryWork:
    spec: RatioVector
    deadline: Optional[float] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[ServiceResult] = None
    error: Optional[BaseException] = None


@dataclass
class _UpdateWork:
    insert_points: np.ndarray
    delete_gids: np.ndarray
    client_key: Optional[Tuple[str, int]] = None
    deadline: Optional[float] = None
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[UpdateAck] = None
    error: Optional[BaseException] = None


@dataclass
class _ControlWork:
    kind: str  # "snapshot" | "ping"
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[List[dict]] = None
    error: Optional[BaseException] = None


_STOP = object()


class _WorkerHandle:
    """Supervisor-side record of one live shard worker."""

    def __init__(self, shard: int, process, conn):
        self.shard = shard
        self.process = process
        self.conn = conn

    def kill(self) -> None:
        try:
            if self.process.is_alive():
                self.process.kill()
            self.process.join(timeout=5.0)
        finally:
            try:
                self.conn.close()
            except OSError:
                pass


class EclipseService:
    """Fault-tolerant sharded query/update service (see module docstring).

    Parameters
    ----------
    points:
        Initial dataset of shape ``(n, d)``; row ``i`` receives global id
        ``i`` (so the initial ids coincide with single-process positions).
    config:
        :class:`ServiceConfig`; defaults are test-friendly.
    snapshot_dir:
        Directory for per-shard snapshots and write-ahead logs.  ``None``
        creates (and owns, and removes on close) a temporary directory.
    injector:
        A :class:`~repro.service.faults.FaultInjector` for deterministic
        fault injection; ``None`` injects nothing.
    index_kwargs:
        Forwarded to each shard's :class:`DatasetSession`.
    recover:
        Resume a previous service incarnation from ``snapshot_dir``: after
        the workers warm-restart from their snapshots and write-ahead
        logs, the supervisor rebuilds its *own* state from the same logs —
        the acknowledged sequence number, the next free global id, and the
        client idempotency table — and redelivers any update batch that
        reached some shards' logs but not others before the previous
        process died (a SIGKILL can tear a batch across shards; the
        repair converges every shard to the highest logged sequence).
        ``points`` must be the same base dataset the original service was
        created with (the logs hold only the deltas for cold rebuilds).
    """

    # Class-level defaults keep ``close()`` a safe no-op on an instance
    # whose ``__init__`` never ran (or died before these were assigned).
    _closed = True
    _queue = None
    _dispatcher = None
    _owns_dir = False
    _dir: Optional[str] = None
    _handles: List[Optional[_WorkerHandle]] = []

    def __init__(
        self,
        points,
        config: Optional[ServiceConfig] = None,
        snapshot_dir: Optional[str] = None,
        injector=None,
        index_kwargs: Optional[Dict[str, object]] = None,
        recover: bool = False,
    ):
        self.config = config or ServiceConfig()
        if self.config.num_shards < 1:
            raise ServiceError(
                f"num_shards must be >= 1, got {self.config.num_shards}"
            )
        if recover and snapshot_dir is None:
            raise ServiceError(
                "recover=True needs the snapshot_dir of the previous "
                "incarnation (a fresh temporary directory has no state)"
            )
        data = as_dataset(points)
        self._dims = int(data.shape[1])
        self._injector = injector if injector is not None else _NullInjector()
        self._rng = np.random.default_rng(self.config.seed)
        self._owns_dir = snapshot_dir is None
        self._dir = (
            tempfile.mkdtemp(prefix="repro-service-")
            if snapshot_dir is None
            else str(snapshot_dir)
        )
        os.makedirs(self._dir, exist_ok=True)
        self._index_kwargs = dict(index_kwargs or {})
        self._session_kwargs = {
            "threads": self.config.threads,
            "dtype": self.config.dtype,
            "backend": self.config.kernel_backend,
            "index_budget_bytes": self.config.index_budget_bytes,
        }
        num_shards = self.config.num_shards
        n = int(data.shape[0])
        # Shard s holds global ids s, s + S, s + 2S, ... in ascending order;
        # the base arrays stay resident for the service's lifetime so a
        # worker whose snapshot is unusable can always be rebuilt cold.
        self._base_data = [
            np.ascontiguousarray(data[s::num_shards]) for s in range(num_shards)
        ]
        self._base_gids = [
            np.arange(s, n, num_shards, dtype=np.intp) for s in range(num_shards)
        ]
        self._next_gid = n
        self._seq = 0
        self._req_ids = itertools.count(1)
        self.stats = ServiceStats()
        self._client_acks: Dict[Tuple[str, int], UpdateAck] = {}
        self._ready_info: List[dict] = [{} for _ in range(num_shards)]
        self._handles = [None] * num_shards
        self._closed = False
        try:
            for shard in range(num_shards):
                self._handles[shard] = self._spawn(shard)
            if recover:
                self._recover_supervisor(n)
        except BaseException:
            # A failed spawn/recovery must not leak earlier workers (or
            # the owned scratch directory).
            self.close()
            raise
        self._queue = queue.Queue()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="eclipse-service-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # Public API (thread-safe: every call enqueues onto the dispatcher)
    # ------------------------------------------------------------------
    def __enter__(self) -> "EclipseService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    @property
    def acked_seq(self) -> int:
        """Sequence number of the last fully acknowledged update batch."""
        return self._seq

    def query(self, ratios, deadline: Optional[float] = None) -> ServiceResult:
        """Answer one eclipse query (blocking; coalesced with concurrent ones).

        ``deadline`` overrides :attr:`ServiceConfig.deadline` for this
        request only (the network front end propagates per-request client
        deadlines through it).
        """
        return self.query_batch([ratios], deadline=deadline)[0]

    def query_batch(
        self, ratio_specs: Sequence, deadline: Optional[float] = None
    ) -> List[ServiceResult]:
        """Submit many queries at once; they coalesce into one window."""
        deadline = self._resolve_deadline(deadline)
        works = [
            _QueryWork(spec=self._resolve_spec(spec), deadline=deadline)
            for spec in ratio_specs
        ]
        for work in works:
            self._submit(work)
        return [self._await(work) for work in works]

    def apply_updates(
        self,
        inserts=None,
        delete_gids=None,
        client_key: Optional[Tuple[str, int]] = None,
        deadline: Optional[float] = None,
    ) -> UpdateAck:
        """Durably apply one update batch; returns once every shard acked.

        ``inserts`` is a ``(b, d)`` array (global ids are assigned in order
        and returned in the ack); ``delete_gids`` names rows by global id.
        Validation is strict — non-finite coordinates and dimension
        mismatches raise before anything is enqueued.

        ``client_key`` is an optional ``(client_id, client_seq)`` pair that
        makes the batch **exactly-once across redelivery and restarts**: a
        batch whose key was already acknowledged is answered with the
        recorded acknowledgement instead of being reapplied.  The key rides
        inside every shard's fsynced write-ahead-log record, so the
        idempotency table survives a crash of this process and is rebuilt
        by ``recover=True`` (a resend after a dropped acknowledgement is a
        no-op even against the restarted service).  ``deadline`` overrides
        the configured per-request deadline for this batch.
        """
        if inserts is None:
            insert_points = np.empty((0, self._dims), dtype=float)
        else:
            insert_points = as_dataset(inserts)
            if insert_points.shape[0] and insert_points.shape[1] != self._dims:
                raise DimensionMismatchError(
                    f"inserted points have d={insert_points.shape[1]}, "
                    f"service datasets have d={self._dims}"
                )
        deletes = np.asarray(
            [] if delete_gids is None else delete_gids, dtype=np.intp
        )
        if deletes.ndim != 1:
            raise ServiceError("delete_gids must be a 1-D sequence of ids")
        if client_key is not None:
            client_key = (str(client_key[0]), int(client_key[1]))
        work = _UpdateWork(
            insert_points=insert_points,
            delete_gids=deletes,
            client_key=client_key,
            deadline=self._resolve_deadline(deadline),
        )
        self._submit(work)
        return self._await(work)

    def force_snapshot(self) -> List[dict]:
        """Snapshot every shard now (serialized with in-flight updates)."""
        work = _ControlWork(kind="snapshot")
        self._submit(work)
        return self._await(work)

    def ping(self) -> List[dict]:
        """Heartbeat every shard; returns per-shard health payloads."""
        work = _ControlWork(kind="ping")
        self._submit(work)
        return self._await(work)

    def close(self) -> None:
        """Stop the dispatcher and every worker; remove owned scratch dirs.

        Idempotent and defensive by contract: a second call is a no-op, and
        a close on a half-dead service — dispatcher crashed, workers killed
        externally, pipes already broken, ``__init__`` aborted partway —
        still tears down whatever exists without raising.
        """
        if self._closed:
            return
        self._closed = True
        if self._queue is not None:
            self._queue.put(_STOP)
        if self._dispatcher is not None:
            try:
                self._dispatcher.join(timeout=30.0)
            except RuntimeError:  # never-started thread
                pass
        for handle in self._handles:
            if handle is None:
                continue
            try:
                handle.conn.send(("stop", 0))
                if handle.conn.poll(1.0):
                    handle.conn.recv()
            except Exception:
                # A dead worker / closed pipe is exactly what close() must
                # absorb; the kill below is the authoritative teardown.
                pass
            try:
                handle.kill()
            except Exception:  # pragma: no cover - kill itself is defensive
                logger.warning(
                    "shard %d worker did not tear down cleanly", handle.shard,
                    exc_info=True,
                )
        self._handles = [None] * len(self._handles)
        if self._owns_dir and self._dir:
            shutil.rmtree(self._dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _submit(self, work) -> None:
        if self._closed:
            raise ServiceError("the service is closed")
        self._queue.put(work)

    def _await(self, work):
        work.done.wait()
        if work.error is not None:
            raise work.error
        return work.result

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if isinstance(item, _QueryWork):
                window = [item]
                stashed = None
                while True:
                    try:
                        nxt = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(nxt, _QueryWork):
                        window.append(nxt)
                        continue
                    stashed = nxt
                    break
                self._run_safely(self._do_query_window, window)
                if stashed is _STOP:
                    return
                if stashed is not None:
                    self._run_safely(self._do_barrier, stashed)
            else:
                self._run_safely(self._do_barrier, item)

    def _run_safely(self, fn, item) -> None:
        try:
            fn(item)
        except BaseException as exc:  # surfaced to the waiting caller(s)
            works = item if isinstance(item, list) else [item]
            for work in works:
                if not work.done.is_set():
                    work.error = exc
                    work.done.set()

    def _do_barrier(self, item) -> None:
        if isinstance(item, _UpdateWork):
            self._do_update(item)
        elif isinstance(item, _ControlWork):
            self._do_control(item)
        else:  # pragma: no cover - queue only ever holds the three kinds
            raise ServiceError(f"unknown work item {item!r}")

    # ------------------------------------------------------------------
    # Query windows
    # ------------------------------------------------------------------
    def _do_query_window(self, window: List[_QueryWork]) -> None:
        self.stats.query_windows += 1
        self.stats.max_window = max(self.stats.max_window, len(window))
        if len(window) > 1:
            self.stats.coalesced_queries += len(window)
        specs = [work.spec for work in window]
        # A coalesced window answers every member in one shard round-trip,
        # so the tightest member deadline bounds the whole round.
        deadlines = [w.deadline for w in window if w.deadline is not None]
        deadline = min(deadlines) if deadlines else None
        method = self.config.method
        degraded = False
        if (
            self.config.overload_threshold
            and len(window) > self.config.overload_threshold
        ):
            # Overload shedding: the transform path needs no index build
            # and degrades gracefully (identical answers, bounded memory).
            method = "transform"
            degraded = True
            self.stats.overload_sheds += 1
        expected = self._seq
        try:
            payloads = self._query_all_shards(specs, method, expected, deadline)
        except _IndexPathError as exc:
            if method == "transform":
                raise ServiceError(
                    f"query failed even on the transform path: {exc}"
                ) from exc
            # Index-path failure (e.g. a degenerate build the shard cannot
            # plan around for a pinned method): degrade the window.
            logger.warning(
                "query window degraded to the transform path: %s", exc
            )
            method = "transform"
            degraded = True
            self.stats.degraded_windows += 1
            payloads = self._query_all_shards(specs, method, expected, deadline)
        if degraded:
            self.stats.degraded_queries += len(window)
        for position, work in enumerate(window):
            gid_parts = [p["results"][position][0] for p in payloads]
            point_parts = [p["results"][position][1] for p in payloads]
            gids, points = self._merge_candidates(
                gid_parts, point_parts, work.spec
            )
            self.stats.queries += 1
            work.result = ServiceResult(
                gids=gids,
                points=points,
                method=method,
                seq=expected,
                degraded=degraded,
            )
            work.done.set()

    def _query_all_shards(
        self,
        specs: List[RatioVector],
        method: str,
        expected: int,
        deadline: Optional[float] = None,
    ) -> List[dict]:
        """One fan-out round plus per-shard retries; returns per-shard payloads."""
        num_shards = self.config.num_shards
        payloads: List[Optional[dict]] = [None] * num_shards
        pending: List[Tuple[int, int]] = []  # (shard, req_id)
        failed: List[int] = []
        # Optimistic parallel round: send to every shard first so the
        # workers compute concurrently, then collect.
        for shard in range(num_shards):
            req_id = next(self._req_ids)
            try:
                self._handles[shard].conn.send(
                    ("query", req_id, specs, method, expected)
                )
                pending.append((shard, req_id))
            except (OSError, BrokenPipeError):
                failed.append(shard)
        for shard, req_id in pending:
            try:
                payloads[shard] = self._collect(shard, req_id, "query", deadline)
            except (WorkerCrashError, DeadlineExceededError):
                failed.append(shard)
        # Sequential recovery round for whatever failed.
        for shard in failed:
            payloads[shard] = self._request_with_retries(
                shard,
                lambda req_id: ("query", req_id, specs, method, expected),
                kind="query",
                already_failed=True,
                deadline=deadline,
            )
        return payloads  # type: ignore[return-value]

    def _merge_candidates(
        self,
        gid_parts: List[np.ndarray],
        point_parts: List[np.ndarray],
        spec: RatioVector,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact merge of per-shard eclipse candidates (see module docstring)."""
        gids = np.concatenate(
            [np.asarray(g, dtype=np.intp) for g in gid_parts]
        )
        if gids.size == 0:
            return gids, np.empty((0, self._dims), dtype=float)
        points = np.vstack([np.asarray(p, dtype=float) for p in point_parts])
        order = np.argsort(gids)  # global ids are unique across shards
        gids = gids[order]
        points = points[order]
        if gids.size > 1:
            try:
                local = eclipse_transform_indices(points, spec)
            except InvalidWeightRangeError:
                local = eclipse_baseline_indices(points, spec)
            local = np.sort(np.asarray(local, dtype=np.intp))
            gids = gids[local]
            points = points[local]
        return gids, points

    # ------------------------------------------------------------------
    # Updates (barriers)
    # ------------------------------------------------------------------
    def _do_update(self, work: _UpdateWork) -> None:
        num_shards = self.config.num_shards
        if work.client_key is not None and work.client_key in self._client_acks:
            # Exactly-once redelivery: the batch was already acknowledged
            # (this incarnation or, via recover=True, a previous one) —
            # replay the recorded ack instead of reapplying.
            self.stats.client_ack_replays += 1
            work.result = self._client_acks[work.client_key]
            work.done.set()
            return
        seq = self._seq + 1
        inserts = work.insert_points
        count = int(inserts.shape[0])
        insert_gids = np.arange(
            self._next_gid, self._next_gid + count, dtype=np.intp
        )
        kill_shard, die_mode = self._injector.on_update(seq, num_shards)
        rows_deleted = 0
        for shard in range(num_shards):
            mask = (insert_gids % num_shards) == shard
            record = {
                "seq": seq,
                "insert_points": inserts[mask],
                "insert_gids": insert_gids[mask],
                "delete_gids": work.delete_gids,
                # The full (unmasked) batch plus the client key ride in
                # every shard's fsynced WAL record: recover=True rebuilds
                # the idempotency table from them and can re-mask the
                # batch for a shard whose own log never received it.
                "all_insert_points": inserts,
                "all_insert_gids": insert_gids,
                "client": work.client_key,
            }
            die = die_mode if (shard == kill_shard and die_mode != "kill") else None
            kill_after_send = shard == kill_shard and die_mode == "kill"
            payload = self._update_one_shard(
                shard, record, die, kill_after_send, work.deadline
            )
            if payload.get("applied"):
                rows_deleted += int(payload.get("num_deleted", 0))
        # Commit only after every shard acknowledged.
        self._seq = seq
        self._next_gid += count
        self.stats.update_batches += 1
        self.stats.rows_inserted += count
        self.stats.rows_deleted += rows_deleted
        work.result = UpdateAck(
            seq=seq, insert_gids=insert_gids, rows_deleted=rows_deleted
        )
        if work.client_key is not None:
            self._client_acks[work.client_key] = work.result
        work.done.set()

    def _update_one_shard(
        self,
        shard: int,
        record: dict,
        die: Optional[str],
        kill_after_send: bool,
        deadline: Optional[float] = None,
    ) -> dict:
        """Deliver one update record to one shard, retrying until acked.

        The first attempt carries the injected fault (worker-side ``die``
        mode, or a supervisor-side SIGKILL right after the send — the
        "kill a worker mid-batch" case); retries are clean.  Idempotency
        is the worker's: a redelivered sequence number is acked without
        being reapplied.
        """
        req_id = next(self._req_ids)
        first_error: Optional[BaseException] = None
        try:
            self._handles[shard].conn.send(("update", req_id, record, die))
            if kill_after_send:
                self.stats.injected_kills += 1
                self._handles[shard].process.kill()
            response = self._collect(shard, req_id, "update", deadline)
            return response
        except (WorkerCrashError, DeadlineExceededError) as exc:
            first_error = exc
        return self._request_with_retries(
            shard,
            lambda rid: ("update", rid, record, None),
            kind="update",
            already_failed=True,
            cause=first_error,
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Control barriers
    # ------------------------------------------------------------------
    def _do_control(self, work: _ControlWork) -> None:
        kind = work.kind
        results = []
        for shard in range(self.config.num_shards):
            payload = self._request_with_retries(
                shard, lambda rid: (kind, rid), kind=kind
            )
            results.append(payload)
        if kind == "snapshot":
            self.stats.snapshots_taken += len(results)
        work.result = results
        work.done.set()

    # ------------------------------------------------------------------
    # Transport, deadlines, retries, respawn
    # ------------------------------------------------------------------
    def _resolve_deadline(self, deadline: Optional[float]) -> Optional[float]:
        """Validate a per-request deadline override (``None`` = configured)."""
        if deadline is None:
            return None
        deadline = float(deadline)
        if not deadline > 0:
            raise ServiceError(
                f"a per-request deadline must be positive, got {deadline!r}"
            )
        return deadline

    def _collect(
        self, shard: int, req_id: int, kind: str,
        deadline: Optional[float] = None,
    ) -> dict:
        """Receive (with deadline) and validate one response for ``req_id``."""
        handle = self._handles[shard]
        budget = self.config.deadline if deadline is None else deadline
        deadline_at = time.monotonic() + budget
        while True:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                self.stats.deadline_timeouts += 1
                raise DeadlineExceededError(
                    f"shard {shard} missed its {budget:.3f}s "
                    f"deadline on a {kind} request"
                )
            try:
                if not handle.conn.poll(remaining):
                    continue
                response = handle.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise WorkerCrashError(
                    f"shard {shard} died mid-{kind}: {exc}"
                ) from exc
            delay = self._injector.response_delay()
            if delay:
                time.sleep(delay)
            if self._injector.drop_response(shard):
                self.stats.dropped_responses += 1
                raise _DroppedResponseError(
                    f"injected drop of shard {shard}'s {kind} response"
                )
            status, got_id = response[0], response[1]
            if got_id != req_id:
                # A response to an older request (e.g. answered after we
                # timed out in a previous life of this pipe) — skip it.
                continue
            if status == "ok":
                return response[2]
            if status == "stale":
                raise WorkerCrashError(
                    f"shard {shard} answered at seq "
                    f"{response[2].get('last_seq')} instead of the pinned view"
                )
            raise _IndexPathError(
                f"shard {shard} {kind} failed: "
                f"{response[2].get('kind')}: {response[2].get('message')}"
            )

    def _request_with_retries(
        self,
        shard: int,
        build_message,
        kind: str,
        already_failed: bool = False,
        cause: Optional[BaseException] = None,
        deadline: Optional[float] = None,
    ) -> dict:
        """Send/receive with crash recovery: respawn + backoff + bounded retries."""
        attempt = 0
        last_error: Optional[BaseException] = cause
        while attempt <= self.config.max_retries:
            if already_failed or attempt > 0:
                self.stats.retries += 1
                self._backoff(max(1, attempt))
                self._respawn(shard, drop_only=isinstance(
                    last_error, _DroppedResponseError
                ))
            attempt += 1
            req_id = next(self._req_ids)
            try:
                self._handles[shard].conn.send(build_message(req_id))
                return self._collect(shard, req_id, kind, deadline)
            except (WorkerCrashError, DeadlineExceededError) as exc:
                last_error = exc
        raise ServiceError(
            f"shard {shard} {kind} failed after "
            f"{self.config.max_retries + 1} attempts: {last_error}"
        ) from last_error

    def _backoff(self, attempt: int) -> None:
        base = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2.0 ** (attempt - 1)),
        )
        jitter = 1.0 + self.config.backoff_jitter * float(
            self._rng.uniform(-1.0, 1.0)
        )
        time.sleep(max(0.0, base * jitter))

    def _spawn(self, shard: int) -> _WorkerHandle:
        """Start (or restart) one shard worker and wait for its ready message."""
        parent_conn, child_conn = _MP.Pipe(duplex=True)
        process = _MP.Process(
            target=worker_main,
            args=(
                shard,
                child_conn,
                self._base_data[shard],
                self._base_gids[shard],
                self._snapshot_path(shard),
                self._wal_path(shard),
                self.config.snapshot_every,
                self._index_kwargs,
                self._session_kwargs,
            ),
            daemon=True,
            name=f"eclipse-shard-{shard}",
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(shard, process, parent_conn)
        if not parent_conn.poll(self.config.deadline):
            handle.kill()
            raise ServiceError(
                f"shard {shard} worker did not become ready within "
                f"{self.config.deadline:.3f}s"
            )
        try:
            status, info = parent_conn.recv()
        except (EOFError, OSError) as exc:
            handle.kill()
            raise WorkerCrashError(
                f"shard {shard} worker died during recovery: {exc}"
            ) from exc
        if status != "ready":  # pragma: no cover - workers always lead with it
            handle.kill()
            raise ServiceError(
                f"shard {shard} worker sent {status!r} instead of ready"
            )
        mode = info.get("mode")
        if mode == "warm":
            self.stats.warm_restarts += 1
        elif mode == "cold":
            self.stats.cold_rebuilds += 1
        else:
            self.stats.fresh_starts += 1
        self.stats.wal_records_replayed += int(info.get("replayed", 0))
        if info.get("snapshot_error"):
            self.stats.snapshot_failures += 1
            logger.warning(
                "shard %d recovered cold: %s", shard, info["snapshot_error"]
            )
        self._ready_info[shard] = dict(info)
        return handle

    # ------------------------------------------------------------------
    # Supervisor-state recovery (recover=True)
    # ------------------------------------------------------------------
    def _recover_supervisor(self, base_n: int) -> None:
        """Rebuild supervisor state from the shard write-ahead logs.

        Called after every worker has finished its own recovery.  Three
        jobs, in order:

        1. **Repair torn batches.**  A crash of the previous process can
           leave a batch logged (and hence replayed) on some shards but
           not others.  Every batch is delivered to *every* shard, so the
           shard with the highest applied sequence number holds the full
           record history; batches missing from a lagging shard are
           re-masked from those records and redelivered (workers treat a
           known sequence number as an idempotent no-op).
        2. **Restore the commit state**: the acknowledged sequence number
           and the next free global id.
        3. **Rebuild the client idempotency table** from the ``client``
           keys the records carry, so a client resend after the crash is
           answered with the recorded acknowledgement, not reapplied.
        """
        from repro.service.wal import WriteAheadLog

        num_shards = self.config.num_shards
        last_seqs = [
            int(self._ready_info[shard].get("last_seq", 0))
            for shard in range(num_shards)
        ]
        target = max(last_seqs)
        self.stats.supervisor_recoveries += 1
        if target == 0:
            return
        lead = int(np.argmax(last_seqs))
        records_by_seq: Dict[int, dict] = {}
        for record in WriteAheadLog(self._wal_path(lead)).replay():
            records_by_seq.setdefault(int(record["seq"]), record)
        next_gid = base_n
        for record in records_by_seq.values():
            gids = np.asarray(
                record.get("all_insert_gids", record["insert_gids"]),
                dtype=np.intp,
            )
            if gids.size:
                next_gid = max(next_gid, int(gids.max()) + 1)
        # Repair: bring every lagging shard up to the lead's sequence.
        for shard in range(num_shards):
            for seq in range(last_seqs[shard] + 1, target + 1):
                record = records_by_seq.get(seq)
                if record is None or "all_insert_gids" not in record:
                    raise ServiceError(
                        f"cannot repair shard {shard} to seq {seq}: the "
                        f"lead shard's log is missing the full record "
                        "(written by a pre-network service version?)"
                    )
                all_gids = np.asarray(record["all_insert_gids"], dtype=np.intp)
                all_points = np.asarray(
                    record["all_insert_points"], dtype=float
                )
                mask = (all_gids % num_shards) == shard
                shard_record = dict(record)
                shard_record["insert_gids"] = all_gids[mask]
                shard_record["insert_points"] = all_points[mask]
                self._update_one_shard(shard, shard_record, None, False)
                self.stats.repair_redeliveries += 1
        self._seq = target
        self._next_gid = next_gid
        for record in records_by_seq.values():
            client = record.get("client")
            if client is None:
                continue
            gids = np.asarray(record["all_insert_gids"], dtype=np.intp)
            # rows_deleted is not reconstructible from the logs (it was
            # counted against the pre-batch liveness); replayed acks
            # carry 0 there — metadata only, the state itself is exact.
            self._client_acks[(str(client[0]), int(client[1]))] = UpdateAck(
                seq=int(record["seq"]), insert_gids=gids, rows_deleted=0
            )

    def _respawn(self, shard: int, drop_only: bool = False) -> None:
        """Kill and restart one worker from its snapshot + WAL tail.

        ``drop_only`` marks an injected response drop: the worker is
        healthy and in sync, so it is left alone (retrying against it is
        exactly the duplicate-delivery case the protocol must absorb).
        """
        handle = self._handles[shard]
        if drop_only and handle is not None and handle.process.is_alive():
            return
        if handle is not None:
            handle.kill()
        self._injector.before_respawn(shard, self._snapshot_path(shard))
        self.stats.worker_respawns += 1
        self._handles[shard] = self._spawn(shard)

    def _snapshot_path(self, shard: int) -> str:
        return os.path.join(self._dir, f"shard-{shard}.snapshot")

    def _wal_path(self, shard: int) -> str:
        return os.path.join(self._dir, f"shard-{shard}.wal")

    def _resolve_spec(self, ratios) -> RatioVector:
        if isinstance(ratios, RatioVector):
            spec = ratios
        else:
            spec = make_ratio_vector(ratios, self._dims)
        if self._dims and spec.dimensions != self._dims:
            raise DimensionMismatchError(
                f"ratio vector is for d={spec.dimensions}, "
                f"service datasets have d={self._dims}"
            )
        return spec
