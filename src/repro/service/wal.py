"""Append-only write-ahead log of acknowledged update batches.

The durability contract of the service is *WAL before acknowledgement*: a
worker appends an update batch here (flushed and fsynced) before applying
it to its session and before the supervisor acknowledges it to the client.
Whatever the worker is doing when it dies, every acknowledged batch is on
disk, so recovery — snapshot plus replay of the log tail — can always
reconstruct the exact acknowledged state.

Record layout::

    offset  size  field
    0       4     magic  b"WALR"
    4       8     payload length  (little-endian uint64)
    12      4     CRC-32 of the payload bytes
    16      ...   payload (pickled dict)

Replay reads records in order and **stops at the first damaged record**
(bad magic, short read, CRC mismatch), logging a warning: a torn tail is
the expected signature of a crash mid-append, and nothing after a damaged
record can be ordered reliably.  A torn *acknowledged* record cannot occur
— acknowledgement happens only after the fsync returns.

Records carry a monotonic sequence number; replay is idempotent because
recovery skips every record whose sequence number the restored snapshot has
already applied, and a live worker likewise ignores redelivered batches
with ``seq <= last_seq`` (retries after a lost acknowledgement).
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
from typing import Any, Dict, Iterator, List

logger = logging.getLogger(__name__)

_RECORD_MAGIC = b"WALR"
_RECORD_HEADER = struct.Struct("<4sQI")

try:  # zlib is in every CPython build this repo targets; guard anyway.
    from zlib import crc32
except ImportError:  # pragma: no cover - zlib is effectively always present
    def crc32(blob: bytes) -> int:
        return sum(blob) & 0xFFFFFFFF


class WriteAheadLog:
    """One append-only log file with CRC-framed pickled records."""

    def __init__(self, path: str):
        self._path = str(path)
        self._handle = None

    @property
    def path(self) -> str:
        """Location of the log file."""
        return self._path

    def _open(self):
        if self._handle is None:
            self._handle = open(self._path, "ab")
        return self._handle

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (returns only after the fsync)."""
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        header = _RECORD_HEADER.pack(_RECORD_MAGIC, len(blob), crc32(blob))
        handle = self._open()
        handle.write(header)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())

    def replay(self) -> Iterator[Dict[str, Any]]:
        """Yield every intact record in append order.

        Stops (with a logged warning) at the first torn or corrupt record;
        a missing file replays as empty.
        """
        self.close()
        try:
            handle = open(self._path, "rb")
        except FileNotFoundError:
            return
        with handle:
            offset = 0
            while True:
                header = handle.read(_RECORD_HEADER.size)
                if not header:
                    return
                if len(header) < _RECORD_HEADER.size:
                    logger.warning(
                        "WAL %s: torn record header at offset %d; "
                        "discarding the tail", self._path, offset
                    )
                    return
                magic, length, checksum = _RECORD_HEADER.unpack(header)
                if magic != _RECORD_MAGIC:
                    logger.warning(
                        "WAL %s: bad record magic at offset %d; "
                        "discarding the tail", self._path, offset
                    )
                    return
                blob = handle.read(length)
                if len(blob) < length or crc32(blob) != checksum:
                    logger.warning(
                        "WAL %s: torn or corrupt record at offset %d; "
                        "discarding the tail", self._path, offset
                    )
                    return
                offset += _RECORD_HEADER.size + length
                yield pickle.loads(blob)

    def records(self) -> List[Dict[str, Any]]:
        """Every intact record, as a list (convenience over :meth:`replay`)."""
        return list(self.replay())

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next append)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
