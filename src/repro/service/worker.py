"""The shard worker: one long-lived process, one :class:`DatasetSession`.

A worker owns one shard of the service's dataset.  Rows are addressed by
**global ids** — stable identifiers assigned by the supervisor that never
shift or get reused — and the worker keeps the ``local position → global
id`` map alongside its session, so query responses speak global ids and
delete requests can name rows without knowing shard-local positions.

Startup is recovery: load the latest snapshot (session + global-id map +
last applied sequence number) and replay the write-ahead-log tail.  A
missing or damaged snapshot demotes to a **cold rebuild** from the shard's
base data plus a full WAL replay — logged, never a crash, and never silent
wrong state (the snapshot checksum decides).  The first message a worker
sends is ``("ready", …)`` describing which path it took.

The request loop then serves, strictly in order:

``query``
    Answer a window of ratio-range specifications with one
    ``run_batch`` call (the supervisor has already coalesced concurrent
    queries into the window); returns per-spec ``(global ids, points)`` of
    the *shard-local* eclipse — the supervisor merges shards exactly.
    Queries carry the supervisor's expected sequence number; answering at
    any other sequence number would silently serve a stale or torn view,
    so the worker refuses with ``("stale", …)`` instead (the supervisor
    retries after recovery converges).

``update``
    Idempotent, WAL-first: a batch with ``seq <= last_seq`` is
    acknowledged without reapplying (duplicate delivery after a lost
    acknowledgement); otherwise the record is fsynced to the WAL *before*
    it touches the session, so an acknowledged batch survives a crash at
    any instant.  ``die`` is the fault-injection hook — the worker
    ``os._exit``s at the named point to simulate crashes before the WAL
    write, between WAL and apply, and between apply and acknowledgement.

``snapshot`` / ``ping`` / ``stop``
    Force a snapshot to disk, answer a heartbeat, or exit cleanly.
"""

from __future__ import annotations

import logging
import os
from typing import Dict, Optional

import numpy as np

from repro.core.session import DatasetSession
from repro.errors import ReproError, SnapshotError
from repro.service.wal import WriteAheadLog

logger = logging.getLogger(__name__)


class ShardState:
    """Mutable worker-side state: the session plus global-id bookkeeping."""

    def __init__(
        self, session: DatasetSession, gids: np.ndarray, last_seq: int
    ):
        self.session = session
        self.gids = np.asarray(gids, dtype=np.intp)
        self.last_seq = int(last_seq)

    def apply_record(self, record: Dict[str, object]) -> int:
        """Apply one WAL/update record; returns the rows actually deleted.

        ``delete_gids`` may name rows on other shards — only the
        intersection with this shard's map is deleted, which is what lets
        the supervisor broadcast one delete set to every shard.
        """
        delete_gids = np.asarray(record["delete_gids"], dtype=np.intp)
        insert_points = np.asarray(record["insert_points"], dtype=float)
        insert_gids = np.asarray(record["insert_gids"], dtype=np.intp)
        local = None
        if delete_gids.size:
            positions = np.flatnonzero(np.isin(self.gids, delete_gids))
            local = positions if positions.size else None
        self.session.apply_updates(
            inserts=insert_points if insert_points.size else None,
            deletes=local,
        )
        kept = (
            np.delete(self.gids, local) if local is not None else self.gids
        )
        self.gids = (
            np.concatenate([kept, insert_gids]) if insert_gids.size else kept
        )
        self.last_seq = int(record["seq"])
        return 0 if local is None else int(local.size)

    def extra_state(self) -> Dict[str, object]:
        """The service-side payload stored inside session snapshots."""
        return {"gids": self.gids.copy(), "last_seq": self.last_seq}


def recover_shard(
    base_data: np.ndarray,
    base_gids: np.ndarray,
    snapshot_path: str,
    wal: WriteAheadLog,
    index_kwargs: Optional[Dict[str, object]] = None,
    session_kwargs: Optional[Dict[str, object]] = None,
) -> tuple:
    """Rebuild a shard's state from disk; returns ``(state, ready_info)``.

    Warm path: snapshot (arenas + cached indexes, zero rebuild) + WAL tail.
    Cold path: base data + full WAL replay — taken when the snapshot is
    missing, truncated, corrupt, or version-mismatched; the reason is
    logged and reported, never raised.

    ``session_kwargs`` carries the kernel-executor and advisor knobs
    (``threads``/``dtype``/``backend``/``index_budget_bytes``); a
    warm-loaded session is reconfigured with them so the *service's*
    configuration wins over whatever the snapshot was taken with.
    """
    session_kwargs = dict(session_kwargs or {})
    state: Optional[ShardState] = None
    snapshot_error: Optional[str] = None
    loaded_warm = False
    if os.path.exists(snapshot_path):
        try:
            session, extra = DatasetSession.load_snapshot(snapshot_path)
            session.configure_kernels(**session_kwargs)
            state = ShardState(
                session, extra["gids"], extra["last_seq"]
            )
            loaded_warm = True
        except SnapshotError as exc:
            snapshot_error = str(exc)
            logger.warning(
                "shard snapshot %s is unusable (%s); falling back to a "
                "cold rebuild from base data + full WAL replay",
                snapshot_path,
                exc,
            )
    if state is None:
        state = ShardState(
            DatasetSession(base_data, index_kwargs=index_kwargs, **session_kwargs),
            np.asarray(base_gids, dtype=np.intp).copy(),
            last_seq=0,
        )
    replayed = skipped = 0
    for record in wal.replay():
        if int(record["seq"]) <= state.last_seq:
            skipped += 1
            continue
        state.apply_record(record)
        replayed += 1
    if loaded_warm:
        mode = "warm"
    elif replayed or skipped or snapshot_error is not None:
        mode = "cold"
    else:
        mode = "fresh"
    ready_info = {
        "mode": mode,
        "last_seq": state.last_seq,
        "replayed": replayed,
        "snapshot_error": snapshot_error,
        "num_points": state.session.num_points,
    }
    return state, ready_info


def worker_main(
    shard_id: int,
    conn,
    base_data: np.ndarray,
    base_gids: np.ndarray,
    snapshot_path: str,
    wal_path: str,
    snapshot_every: int = 8,
    index_kwargs: Optional[Dict[str, object]] = None,
    session_kwargs: Optional[Dict[str, object]] = None,
) -> None:
    """Process entry point of one shard worker (see the module docstring)."""
    wal = WriteAheadLog(wal_path)
    state, ready_info = recover_shard(
        base_data, base_gids, snapshot_path, wal, index_kwargs, session_kwargs
    )
    conn.send(("ready", ready_info))
    applied_since_snapshot = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind, req_id = message[0], message[1]
        try:
            if kind == "query":
                _specs, method, expected_seq = message[2], message[3], message[4]
                if expected_seq is not None and expected_seq != state.last_seq:
                    conn.send(("stale", req_id, {"last_seq": state.last_seq}))
                    continue
                results = state.session.run_batch(_specs, method=method)
                payload = {
                    "results": [
                        (state.gids[r.indices], r.points) for r in results
                    ],
                    "methods": [r.method for r in results],
                    "last_seq": state.last_seq,
                }
                conn.send(("ok", req_id, payload))
            elif kind == "update":
                record, die = message[2], message[3]
                seq = int(record["seq"])
                if seq <= state.last_seq:
                    # Duplicate delivery (retry after a lost ack): idempotent.
                    conn.send(
                        ("ok", req_id, {"applied": False, "last_seq": state.last_seq})
                    )
                    continue
                if die == "before_wal":
                    os._exit(2)
                wal.append(record)
                if die == "after_wal":
                    os._exit(2)
                num_deleted = state.apply_record(record)
                if die == "after_apply":
                    os._exit(2)
                applied_since_snapshot += 1
                if snapshot_every and applied_since_snapshot >= snapshot_every:
                    state.session.save_snapshot(
                        snapshot_path, extra=state.extra_state()
                    )
                    applied_since_snapshot = 0
                conn.send(
                    (
                        "ok",
                        req_id,
                        {
                            "applied": True,
                            "num_deleted": num_deleted,
                            "last_seq": state.last_seq,
                        },
                    )
                )
            elif kind == "snapshot":
                size = state.session.save_snapshot(
                    snapshot_path, extra=state.extra_state()
                )
                applied_since_snapshot = 0
                conn.send(("ok", req_id, {"bytes": size, "path": snapshot_path}))
            elif kind == "ping":
                conn.send(
                    (
                        "ok",
                        req_id,
                        {
                            "shard": shard_id,
                            "last_seq": state.last_seq,
                            "num_points": state.session.num_points,
                            "generation": state.session.generation,
                        },
                    )
                )
            elif kind == "stop":
                conn.send(("ok", req_id, {}))
                return
            else:
                conn.send(
                    ("error", req_id, {"message": f"unknown request {kind!r}"})
                )
        except ReproError as exc:
            # Per-request failure (bad ratios, degenerate index, ...): the
            # worker stays up; the supervisor decides whether to degrade.
            conn.send(
                ("error", req_id, {"message": str(exc), "kind": type(exc).__name__})
            )
        except (EOFError, OSError, BrokenPipeError):
            return
