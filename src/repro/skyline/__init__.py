"""Skyline substrate: dominance helpers and four skyline algorithms.

The eclipse transformation algorithm (Section III of the paper) reduces the
eclipse query to an ordinary skyline computation on mapped points, so a solid
skyline substrate is part of the reproduction.  Four algorithms with
different trade-offs are provided, all computing the *minimisation* skyline
(smaller attribute values are better):

* :func:`skyline_bnl` — block-nested-loop (Börzsönyi et al.), the classic
  ``O(n^2)`` worst-case baseline.
* :func:`skyline_sfs` — sort-filter-skyline: pre-sorting by the attribute sum
  guarantees no point is ever removed from the window.
* :func:`skyline_sweep_2d` — the ``O(n log n)`` two-dimensional sweep used by
  Algorithm 2 of the paper.
* :func:`skyline_divide_conquer` — Bentley's multidimensional
  divide-and-conquer (the "ECDF algorithm" cited as [3]), the
  ``O(n log^{d-1} n)`` routine used by Algorithm 3.

:func:`skyline` dispatches among them.
"""

from repro.skyline.dominance import (
    dominates,
    dominates_or_equal,
    dominance_count,
    is_skyline_point,
)
from repro.skyline.kernels import (
    block_sfs_indices,
    dominated_mask,
    dominates_matrix,
    monotone_sort_order,
)
from repro.skyline.bnl import skyline_bnl
from repro.skyline.sfs import skyline_sfs
from repro.skyline.sweep2d import skyline_sweep_2d
from repro.skyline.divide_conquer import skyline_divide_conquer
from repro.skyline.api import skyline, skyline_indices

__all__ = [
    "dominates",
    "dominates_or_equal",
    "dominance_count",
    "is_skyline_point",
    "dominated_mask",
    "dominates_matrix",
    "block_sfs_indices",
    "monotone_sort_order",
    "skyline_bnl",
    "skyline_sfs",
    "skyline_sweep_2d",
    "skyline_divide_conquer",
    "skyline",
    "skyline_indices",
]
