"""Skyline substrate: dominance helpers and four skyline algorithms.

The eclipse transformation algorithm (Section III of the paper) reduces the
eclipse query to an ordinary skyline computation on mapped points, so a solid
skyline substrate is part of the reproduction.  Four algorithms with
different trade-offs are provided, all computing the *minimisation* skyline
(smaller attribute values are better):

* :func:`skyline_bnl` — block-nested-loop (Börzsönyi et al.), the classic
  ``O(n^2)`` worst-case baseline.
* :func:`skyline_sfs` — sort-filter-skyline: pre-sorting by the attribute sum
  guarantees no point is ever removed from the window.
* :func:`skyline_sweep_2d` — the ``O(n log n)`` two-dimensional sweep used by
  Algorithm 2 of the paper.
* :func:`skyline_divide_conquer` — Bentley's multidimensional
  divide-and-conquer (the "ECDF algorithm" cited as [3]), the
  ``O(n log^{d-1} n)`` routine used by Algorithm 3.

:func:`skyline` dispatches among them.  The top-level package re-exports it
as :func:`repro.skyline_query` so that the name ``repro.skyline`` stays this
subpackage (``import repro.skyline.api`` works); calling the subpackage
itself (``repro.skyline(points)`` — the historical spelling, when the
function used to shadow the module) still works through a deprecation shim.
"""

import sys as _sys
import types as _types
import warnings as _warnings

from repro.skyline.dominance import (
    dominates,
    dominates_or_equal,
    dominance_count,
    is_skyline_point,
)
from repro.skyline.kernels import (
    block_sfs_indices,
    dominated_mask,
    dominates_matrix,
    monotone_sort_order,
)
from repro.skyline.incremental import (
    SkylineDelta,
    delete_update,
    insert_update,
    remap_after_delete,
)
from repro.skyline.bnl import skyline_bnl
from repro.skyline.sfs import skyline_sfs
from repro.skyline.sweep2d import skyline_sweep_2d
from repro.skyline.divide_conquer import skyline_divide_conquer
from repro.skyline.api import skyline, skyline_indices

#: Shadow-free alias: ``repro.skyline`` stays the subpackage, the function
#: travels to the top level under this name.
skyline_query = skyline


class _CallableSkylineModule(_types.ModuleType):
    """Back-compat shim for the pre-refactor ``repro.skyline`` *function*.

    Until the API redesign, ``from repro import skyline`` yielded the
    skyline function, which shadowed this subpackage and broke
    ``import repro.skyline.x as y``.  The module is now callable so the old
    spelling keeps working (with a deprecation warning) while the name
    resolves to the subpackage.
    """

    def __call__(self, *args, **kwargs):
        _warnings.warn(
            "calling `repro.skyline` as a function is deprecated; use "
            "`repro.skyline_query` (or `repro.skyline.skyline`) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return skyline(*args, **kwargs)


_sys.modules[__name__].__class__ = _CallableSkylineModule

__all__ = [
    "skyline_query",
    "dominates",
    "dominates_or_equal",
    "dominance_count",
    "is_skyline_point",
    "dominated_mask",
    "dominates_matrix",
    "block_sfs_indices",
    "monotone_sort_order",
    "SkylineDelta",
    "delete_update",
    "insert_update",
    "remap_after_delete",
    "skyline_bnl",
    "skyline_sfs",
    "skyline_sweep_2d",
    "skyline_divide_conquer",
    "skyline",
    "skyline_indices",
]
