"""Skyline dispatcher choosing among the available algorithms.

The dispatcher mirrors how the paper's algorithms use the skyline substrate:
the two-dimensional sweep for ``d = 2`` (Algorithm 2) and the
divide-and-conquer / ECDF algorithm for ``d > 2`` (Algorithm 3).  Explicit
method names are accepted so that experiments can compare the substrates.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.core.plan import choose_skyline_method
from repro.errors import AlgorithmNotSupportedError
from repro.skyline.bnl import skyline_bnl_indices
from repro.skyline.divide_conquer import skyline_divide_conquer_indices
from repro.skyline.sfs import skyline_sfs_indices
from repro.skyline.sweep2d import skyline_sweep_2d_indices

_METHODS: Dict[str, Callable[[ArrayLike2D], IndexArray]] = {
    "bnl": skyline_bnl_indices,
    "sfs": skyline_sfs_indices,
    "sweep2d": skyline_sweep_2d_indices,
    "divide_conquer": skyline_divide_conquer_indices,
}


def skyline_indices(
    points: ArrayLike2D,
    method: str = "auto",
    collapse_duplicates: bool = False,
) -> IndexArray:
    """Return skyline indices of ``points`` using the requested method.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` (minimisation semantics).
    method:
        One of ``"auto"`` (default), ``"bnl"``, ``"sfs"``, ``"sweep2d"``,
        ``"divide_conquer"``.  ``"auto"`` delegates to the n-and-d-aware
        cost model (:func:`repro.core.plan.choose_skyline_method`): the
        two-dimensional sweep for ``d = 2``, divide-and-conquer for
        ``3 <= d <= 4`` on large inputs — the pairing Algorithms 2 and 3 of
        the paper prescribe — block sort-filter-skyline both for small
        mid-dimensional inputs (where the divide-and-conquer recursion never
        recoups its bookkeeping) and for ``d >= 5``, where the hyperplane
        splits lose their pruning power and the broadcast kernels of
        block-SFS are measurably faster (this is the regime of every
        corner-mapped eclipse space with ``d >= 4``, whose ``2^{d-1}``
        strongly correlated columns are block-SFS's best case).  All methods
        return identical indices, so the heuristic is purely a matter of
        speed.
    collapse_duplicates:
        Opt-in fast path for duplicate-heavy data: run the skyline over the
        unique rows only, then re-expand to the original indices.  Exact
        duplicates never dominate each other and share the same dominators,
        so the result is identical to the direct computation — every copy of
        a skyline row is retained.
    """
    data = as_dataset(points)
    if method != "auto" and method not in _METHODS:
        raise AlgorithmNotSupportedError(
            f"unknown skyline method {method!r}; choose from "
            f"{sorted(_METHODS)} or 'auto'"
        )
    if data.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    if collapse_duplicates:
        unique_rows, inverse = np.unique(data, axis=0, return_inverse=True)
        if unique_rows.shape[0] < data.shape[0]:
            unique_sky = skyline_indices(unique_rows, method=method)
            in_skyline = np.zeros(unique_rows.shape[0], dtype=bool)
            in_skyline[unique_sky] = True
            return np.flatnonzero(in_skyline[np.ravel(inverse)]).astype(np.intp)
    if method == "auto":
        method = choose_skyline_method(data.shape[0], data.shape[1])
    return _METHODS[method](data)


def skyline(
    points: ArrayLike2D,
    method: str = "auto",
    collapse_duplicates: bool = False,
) -> np.ndarray:
    """Return the skyline points (rows) of ``points``."""
    data = as_dataset(points)
    return data[
        skyline_indices(data, method=method, collapse_duplicates=collapse_duplicates)
    ]
