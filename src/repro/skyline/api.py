"""Skyline dispatcher choosing among the available algorithms.

The dispatcher mirrors how the paper's algorithms use the skyline substrate:
the two-dimensional sweep for ``d = 2`` (Algorithm 2) and the
divide-and-conquer / ECDF algorithm for ``d > 2`` (Algorithm 3).  Explicit
method names are accepted so that experiments can compare the substrates.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.errors import AlgorithmNotSupportedError
from repro.skyline.bnl import skyline_bnl_indices
from repro.skyline.divide_conquer import skyline_divide_conquer_indices
from repro.skyline.sfs import skyline_sfs_indices
from repro.skyline.sweep2d import skyline_sweep_2d_indices

_METHODS: Dict[str, Callable[[ArrayLike2D], IndexArray]] = {
    "bnl": skyline_bnl_indices,
    "sfs": skyline_sfs_indices,
    "sweep2d": skyline_sweep_2d_indices,
    "divide_conquer": skyline_divide_conquer_indices,
}


def skyline_indices(points: ArrayLike2D, method: str = "auto") -> IndexArray:
    """Return skyline indices of ``points`` using the requested method.

    Parameters
    ----------
    points:
        Dataset of shape ``(n, d)`` (minimisation semantics).
    method:
        One of ``"auto"`` (default), ``"bnl"``, ``"sfs"``, ``"sweep2d"``,
        ``"divide_conquer"``.  ``"auto"`` selects the two-dimensional sweep
        for ``d = 2`` and divide-and-conquer otherwise, which is the pairing
        Algorithms 2 and 3 of the paper prescribe.
    """
    data = as_dataset(points)
    if method == "auto":
        if data.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        method = "sweep2d" if data.shape[1] == 2 else "divide_conquer"
    try:
        fn = _METHODS[method]
    except KeyError:
        raise AlgorithmNotSupportedError(
            f"unknown skyline method {method!r}; choose from "
            f"{sorted(_METHODS)} or 'auto'"
        ) from None
    return fn(data)


def skyline(points: ArrayLike2D, method: str = "auto") -> np.ndarray:
    """Return the skyline points (rows) of ``points``."""
    data = as_dataset(points)
    return data[skyline_indices(data, method=method)]
