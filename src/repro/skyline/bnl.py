"""Block-nested-loop (BNL) skyline algorithm.

The original skyline algorithm of Börzsönyi, Kossmann and Stocker (ICDE
2001, reference [4] of the paper): maintain a window of candidate skyline
points and compare every incoming point against the window.  Worst-case
``O(n^2)`` comparisons, but simple and often competitive on correlated data
where the window stays tiny.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset


def skyline_bnl_indices(points: ArrayLike2D) -> IndexArray:
    """Return the indices of the skyline points of ``points``.

    Minimisation semantics.  Duplicate points are all retained (none of them
    strictly dominates the others), matching the other skyline algorithms in
    this package.

    The returned indices are sorted in ascending order so that all skyline
    implementations produce byte-identical outputs.
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)

    window: List[int] = []
    for i in range(n):
        candidate = data[i]
        dominated = False
        surviving: List[int] = []
        for j in window:
            other = data[j]
            if np.all(other <= candidate) and np.any(other < candidate):
                dominated = True
                surviving = window  # candidate discarded; window unchanged
                break
            if np.all(candidate <= other) and np.any(candidate < other):
                continue  # drop the dominated window member
            surviving.append(j)
        if dominated:
            continue
        surviving.append(i)
        window = surviving
    return np.array(sorted(window), dtype=np.intp)


def skyline_bnl(points: ArrayLike2D) -> np.ndarray:
    """Return the skyline points (rows) of ``points`` via block-nested-loop."""
    data = as_dataset(points)
    return data[skyline_bnl_indices(data)]
