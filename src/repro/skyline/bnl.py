"""Block-nested-loop (BNL) skyline algorithm, vectorised.

The original skyline algorithm of Börzsönyi, Kossmann and Stocker (ICDE
2001, reference [4] of the paper): maintain a window of candidate skyline
points and compare incoming points against the window.  Worst-case
``O(n^2)`` comparisons, but simple and often competitive on correlated data
where the window stays tiny.

True to its name, this implementation is *block*-oriented: the window is a
contiguous ``(m, d)`` array (:class:`repro.perf.blocking.GrowableBuffer`)
and incoming points are processed in blocks — one broadcast kernel call
screens the whole block against the window, a pairwise kernel call resolves
dominance inside the block, and a third evicts window members dominated by
the block's survivors.  The surviving window is the skyline, so the output
is identical to the classic per-point formulation.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.perf.blocking import DEFAULT_BLOCK_SIZE, GrowableBuffer, iter_blocks
from repro.skyline.kernels import dominated_mask


def skyline_bnl_indices(
    points: ArrayLike2D, block_size: int = DEFAULT_BLOCK_SIZE
) -> IndexArray:
    """Return the indices of the skyline points of ``points``.

    Minimisation semantics.  Duplicate points are all retained (none of them
    strictly dominates the others), matching the other skyline algorithms in
    this package.

    The returned indices are sorted in ascending order so that all skyline
    implementations produce byte-identical outputs.
    """
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)

    sums = data.sum(axis=1)
    window = GrowableBuffer(
        data.shape[1], capacity=min(1024, max(64, n // 8)), track_sums=True
    )
    for start, stop in iter_blocks(n, block_size):
        block = data[start:stop]
        block_sums = sums[start:stop]
        # 1. Screen the block against the current window.
        screened = dominated_mask(
            block, window.rows, cand_sums=block_sums, dom_sums=window.sums
        )
        keep = ~screened
        survivors = block[keep]
        survivor_idx = np.arange(start, stop, dtype=np.intp)[keep]
        survivor_sums = block_sums[keep]
        if survivors.shape[0] > 1:
            # 2. Resolve dominance inside the block.  Transitivity makes it
            #    safe for a dominated survivor to act as a dominator here.
            intra = dominated_mask(
                survivors, survivors, cand_sums=survivor_sums, dom_sums=survivor_sums
            )
            keep = ~intra
            survivors = survivors[keep]
            survivor_idx = survivor_idx[keep]
            survivor_sums = survivor_sums[keep]
        if survivors.shape[0] == 0:
            continue
        # 3. Evict window members dominated by the new survivors.
        if len(window):
            evicted = dominated_mask(
                window.rows, survivors, cand_sums=window.sums, dom_sums=survivor_sums
            )
            if evicted.any():
                window.keep(~evicted)
        window.append_batch(survivors, survivor_idx, sums=survivor_sums)
    return np.sort(window.indices)


def skyline_bnl(points: ArrayLike2D) -> np.ndarray:
    """Return the skyline points (rows) of ``points`` via block-nested-loop."""
    data = as_dataset(points)
    return data[skyline_bnl_indices(data)]
