"""Divide-and-conquer skyline (Bentley's multidimensional D&C / ECDF style).

Algorithm 3 of the paper invokes "the ``O(n log^{d-1} n)`` ECDF algorithm
[3]" (Bentley, *Multidimensional divide-and-conquer*) to compute the skyline
of the mapped points.  This module implements the divide-and-conquer
structure of that algorithm:

1. split the dataset by the median value of the last attribute into a "low"
   half ``A`` and a "high" half ``B``;
2. recursively compute the skylines of both halves;
3. points of ``skyline(A)`` are final (no point of ``B`` can dominate them
   because their last attribute is strictly larger);
4. points of ``skyline(B)`` survive only when not dominated by a point of
   ``skyline(A)``.

Step 4 is the ECDF merge.  Bentley performs it with another level of
divide-and-conquer over a lower-dimensional subproblem; this implementation
performs it as a vectorised dominance check against ``skyline(A)``, which
preserves the divide structure (and therefore the practical speed-up over
BNL on large inputs) while keeping the code straightforward.  Degenerate
splits — all points sharing the same last attribute value — fall back to
sort-filter-skyline for that subproblem.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, IndexArray
from repro.core.dominance import as_dataset
from repro.skyline.kernels import dominated_mask
from repro.skyline.sfs import skyline_sfs_indices
from repro.skyline.sweep2d import skyline_sweep_2d_indices

#: Below this size the overhead of recursion outweighs its benefit.
_SMALL_INPUT_CUTOFF = 64


def _skyline_recursive(data: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Return (a subset of) ``indices`` that are skyline points of ``data[indices]``."""
    n = indices.size
    if n <= 1:
        return indices
    if n <= _SMALL_INPUT_CUTOFF:
        local = skyline_sfs_indices(data[indices])
        return indices[local]
    if data.shape[1] == 2:
        local = skyline_sweep_2d_indices(data[indices])
        return indices[local]

    last = data[indices, -1]
    median = np.median(last)
    low_mask = last <= median
    if low_mask.all() or not low_mask.any():
        # Degenerate split (e.g. the last attribute is constant on this
        # subset): divide-and-conquer cannot make progress, fall back.
        local = skyline_sfs_indices(data[indices])
        return indices[local]

    low_idx = indices[low_mask]
    high_idx = indices[~low_mask]
    sky_low = _skyline_recursive(data, low_idx)
    sky_high = _skyline_recursive(data, high_idx)

    # Points in the low half can never be dominated by the high half (their
    # last attribute is strictly smaller), so sky_low is final.  Points in
    # the high half must additionally survive against sky_low.
    dominated = dominated_mask(data[sky_high], data[sky_low])
    survivors = sky_high[~dominated]
    return np.concatenate([sky_low, survivors])


def skyline_divide_conquer_indices(points: ArrayLike2D) -> IndexArray:
    """Return the indices of the skyline points via divide-and-conquer."""
    data = as_dataset(points)
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.intp)
    result = _skyline_recursive(data, np.arange(n, dtype=np.intp))
    return np.sort(result)


def skyline_divide_conquer(points: ArrayLike2D) -> np.ndarray:
    """Return the skyline points (rows) via divide-and-conquer."""
    data = as_dataset(points)
    return data[skyline_divide_conquer_indices(data)]
