"""Pareto-dominance helpers shared by the skyline algorithms.

All helpers use minimisation semantics: ``p`` dominates ``q`` when ``p`` is
no larger than ``q`` on every attribute and strictly smaller on at least one.
"""

from __future__ import annotations

import numpy as np

from repro._types import ArrayLike2D, PointLike
from repro.core.dominance import as_dataset, as_point
from repro.errors import DimensionMismatchError


def dominates(p: PointLike, q: PointLike) -> bool:
    """Return ``True`` when ``p`` Pareto-dominates ``q`` (strictly better
    somewhere, never worse)."""
    pa, qa = as_point(p), as_point(q)
    if pa.size != qa.size:
        raise DimensionMismatchError("points must share the same dimensionality")
    return bool(np.all(pa <= qa) and np.any(pa < qa))


def dominates_or_equal(p: PointLike, q: PointLike) -> bool:
    """Return ``True`` when ``p`` is no worse than ``q`` on every attribute.

    Unlike :func:`dominates` this is reflexive; it is the "weak dominance"
    used when deduplicating identical points.
    """
    pa, qa = as_point(p), as_point(q)
    if pa.size != qa.size:
        raise DimensionMismatchError("points must share the same dimensionality")
    return bool(np.all(pa <= qa))


def dominance_count(points: ArrayLike2D, q: PointLike) -> int:
    """Number of points in ``points`` that dominate ``q``."""
    data = as_dataset(points)
    qa = as_point(q)
    if data.shape[0] == 0:
        return 0
    if data.shape[1] != qa.size:
        raise DimensionMismatchError("dataset and point dimensionality differ")
    le = np.all(data <= qa, axis=1)
    lt = np.any(data < qa, axis=1)
    return int(np.count_nonzero(le & lt))


def is_skyline_point(points: ArrayLike2D, q: PointLike) -> bool:
    """Return ``True`` when ``q`` is not dominated by any point in ``points``.

    ``q`` itself may or may not belong to ``points``; exact duplicates of
    ``q`` inside ``points`` do not count as dominators.
    """
    return dominance_count(points, q) == 0
